//! A parallel-subtask (PSP) scenario: distributed sensor fusion.
//!
//! A fusion center periodically queries `m` sensor nodes *in parallel*;
//! the fused estimate is useful only if **all** responses arrive before
//! the fusion deadline — exactly the paper's §5 problem, where one tardy
//! branch makes the whole task tardy and the miss probability grows with
//! the fan-out.
//!
//! The example sweeps the fan-out and compares UD, DIV-1, DIV-2 and GF.
//!
//! ```sh
//! cargo run --release --example sensor_fusion
//! ```

use sda::core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda::system::{run_once, RunConfig, SystemConfig};
use sda::workload::GlobalShape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run_cfg = RunConfig {
        warmup: 1_000.0,
        duration: 40_000.0,
        seed: 99,
        order_fuzz: 0,
    };
    let strategies: Vec<(&str, ParallelStrategy)> = vec![
        ("UD   ", ParallelStrategy::UltimateDeadline),
        ("DIV-1", ParallelStrategy::div(1.0)?),
        ("DIV-2", ParallelStrategy::div(2.0)?),
        ("GF   ", ParallelStrategy::GlobalsFirst),
    ];

    println!("Sensor fusion: m parallel sensor queries, 8 nodes, load 0.65");
    println!("(miss = at least one sensor response after the fusion deadline)\n");
    for m in [2usize, 4, 6, 8] {
        println!("fan-out m = {m}:");
        for (name, parallel) in &strategies {
            let mut cfg = SystemConfig::psp_baseline(SdaStrategy::new(
                SerialStrategy::UltimateDeadline,
                *parallel,
            ));
            cfg.workload.nodes = 8;
            cfg.workload.load = 0.65;
            cfg.workload.shape = GlobalShape::Parallel { m };
            let result = run_once(&cfg, &run_cfg)?;
            println!(
                "  {name}: missed fusions = {:>5.1}%   missed locals = {:>5.1}%",
                result.metrics.global.miss_percent(),
                result.metrics.local.miss_percent(),
            );
        }
        println!();
    }
    println!("UD's fusion misses should grow steeply with the fan-out while");
    println!("DIV-x adapts (its deadline division scales with m) and GF caps it.");
    Ok(())
}
