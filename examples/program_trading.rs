//! The paper's motivating application (§1): stock-market analysis and
//! program trading.
//!
//! Market data is gathered from multiple sources *in parallel*, piped
//! through a serial refinement filter, analyzed by an expert system that
//! consults a database and a rule engine in parallel, and finally a
//! buy/sell action is issued — all within an end-to-end deadline
//! ("a buy-sell action should be implemented within two minutes from the
//! time when the information is gathered").
//!
//! This example builds that pipeline as a serial-parallel `TaskSpec`,
//! shows the virtual deadlines each strategy assigns, and simulates a
//! trading system under mixed load.
//!
//! ```sh
//! cargo run --release --example program_trading
//! ```

use sda::core::{NodeId, SdaStrategy, TaskRun, TaskSpec};
use sda::system::{run_once, RunConfig, SystemConfig};
use sda::workload::GlobalShape;

/// Builds one trading task: gather ∥ (3 feeds) → filter → [db ∥ rules] →
/// trade. Node ids: 0-2 feed handlers, 3 filter, 4 database, 5 expert
/// system; the trade action runs back on node 3.
fn trading_task() -> TaskSpec {
    TaskSpec::serial(vec![
        TaskSpec::parallel(vec![
            TaskSpec::simple(NodeId::new(0), 0.8, 0.8), // NYSE feed
            TaskSpec::simple(NodeId::new(1), 1.0, 1.0), // NASDAQ feed
            TaskSpec::simple(NodeId::new(2), 0.6, 0.6), // futures feed
        ]),
        TaskSpec::simple(NodeId::new(3), 1.2, 1.2), // refinement filter
        TaskSpec::parallel(vec![
            TaskSpec::simple(NodeId::new(4), 2.0, 2.0), // database search
            TaskSpec::simple(NodeId::new(5), 1.5, 1.5), // rule processing
        ]),
        TaskSpec::simple(NodeId::new(3), 0.5, 0.5), // buy/sell action
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = trading_task();
    spec.validate()?;
    println!(
        "Trading pipeline: {} subtasks, critical path {:.1} time units",
        spec.simple_count(),
        spec.critical_path_ex()
    );

    // The end-to-end deadline: critical path 4.7 plus ~70% slack.
    let deadline = 8.0;
    println!("End-to-end deadline: {deadline}\n");

    // Walk the pipeline under each combined strategy, assuming every
    // subtask finishes exactly on its predicted time, and print the
    // virtual deadlines assigned along the way.
    for strategy in [SdaStrategy::ud_ud(), SdaStrategy::eqf_div1()] {
        println!("Virtual deadlines under {}:", strategy.short_name());
        let mut run = TaskRun::new(&spec, 0.0, deadline)?;
        let mut pending = run.start(&strategy, 0.0);
        let mut now: f64 = 0.0;
        while !pending.is_empty() {
            // Complete the earliest-finishing submission first.
            pending.sort_by(|a, b| (now + a.ex).total_cmp(&(now + b.ex)));
            for sub in &pending {
                println!(
                    "  t={now:>4.1}  submit {}  ex={:.1}  dl={:>5.2}",
                    sub.node, sub.ex, sub.deadline
                );
            }
            let sub = pending.remove(0);
            let finish = now + sub.ex;
            match run.complete(sub.subtask, &strategy, finish) {
                sda::core::Completion::Submitted(next) => {
                    now = finish;
                    pending.extend(next);
                }
                sda::core::Completion::Finished => {
                    now = finish;
                    break;
                }
            }
        }
        println!("  finished at t={now:.1} (deadline {deadline})\n");
    }

    // Finally: a trading *system* under load. Global tasks are pipelines
    // of parallel stages (the workload generalization of the structure
    // above), competing with per-node housekeeping (local tasks).
    println!("Simulating a trading system at load 0.7 (40% local housekeeping):");
    let run_cfg = RunConfig {
        warmup: 1_000.0,
        duration: 50_000.0,
        seed: 7,
        order_fuzz: 0,
    };
    for (name, strategy) in [
        ("UD-UD   ", SdaStrategy::ud_ud()),
        ("EQF-UD  ", SdaStrategy::eqf_ud()),
        ("UD-DIV1 ", SdaStrategy::ud_div1()),
        ("EQF-DIV1", SdaStrategy::eqf_div1()),
    ] {
        let mut cfg = SystemConfig::combined_baseline(strategy);
        cfg.workload.load = 0.7;
        cfg.workload.frac_local = 0.4;
        cfg.workload.shape = GlobalShape::SerialParallel {
            stages: 3,
            branches: 2,
        };
        let result = run_once(&cfg, &run_cfg)?;
        println!(
            "  {name}: missed trades = {:>5.1}%   missed housekeeping = {:>5.1}%",
            result.metrics.global.miss_percent(),
            result.metrics.local.miss_percent(),
        );
    }
    println!("\nThe combined EQF-DIV1 strategy should keep missed trades closest");
    println!("to the local miss rate — the paper's §6 'additive benefits' result.");
    Ok(())
}
