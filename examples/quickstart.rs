//! Quickstart: assign subtask deadlines to a distributed task, then run
//! a small end-to-end simulation comparing UD against EQF.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sda::core::SdaStrategy;
use sda::core::{SerialStrategy, SspInput};
use sda::system::{run_once, RunConfig, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Part 1 — the deadline-assignment formulas on one concrete task.
    //
    // A global task arrives at t = 0 with an end-to-end deadline of 20.
    // It has four serial stages with predicted execution times
    // 2, 4, 1 and 3 (total work 10, total slack 10).
    // ------------------------------------------------------------------
    let pex = [2.0, 4.0, 1.0, 3.0];
    println!("Virtual deadline of stage 1 (submitted at t=0, dl(T)=20):");
    for strategy in SerialStrategy::ALL {
        let dl = strategy.deadline(&SspInput {
            submit_time: 0.0,
            global_deadline: 20.0,
            pex_current: pex[0],
            pex_remaining_after: &pex[1..],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        });
        println!("  {:<4} -> dl(T1) = {dl:>6.2}", strategy.short_name());
    }

    println!("\nFull static plan under EQF (each stage finishing on time):");
    let plan = SerialStrategy::EqualFlexibility.plan(0.0, 20.0, &pex);
    for (i, dl) in plan.iter().enumerate() {
        println!("  stage {} -> dl = {dl:>6.2}", i + 1);
    }

    // ------------------------------------------------------------------
    // Part 2 — does it matter? Simulate the paper's baseline system
    // (6 nodes, EDF schedulers, 75% local load) at load 0.5 and compare
    // the missed-deadline percentages.
    // ------------------------------------------------------------------
    let run = RunConfig {
        warmup: 1_000.0,
        duration: 50_000.0,
        seed: 42,
        order_fuzz: 0,
    };
    println!("\nSimulating the Table-1 baseline at load 0.5 ...");
    for (name, strategy) in [
        ("UD ", SdaStrategy::ud_ud()),
        ("EQF", SdaStrategy::eqf_ud()),
    ] {
        let cfg = SystemConfig::ssp_baseline(strategy);
        let result = run_once(&cfg, &run)?;
        println!(
            "  {name}: MD_local = {:>5.1}%   MD_global = {:>5.1}%   ({} locals, {} globals)",
            result.metrics.local.miss_percent(),
            result.metrics.global.miss_percent(),
            result.metrics.local.completed(),
            result.metrics.global.completed(),
        );
    }
    println!("\nEQF should show markedly fewer global misses at similar local cost.");
    Ok(())
}
