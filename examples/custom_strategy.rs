//! Implementing a deadline-assignment policy *beyond* the paper, via the
//! [`DeadlineAssigner`] extension trait.
//!
//! The policy here is "front-loaded flexibility": early stages get a
//! boosted share of the slack (they face the most queueing uncertainty
//! downstream decisions can still absorb), decaying geometrically along
//! the chain. It is compared against EQF on the same tasks.
//!
//! ```sh
//! cargo run --release --example custom_strategy
//! ```

use sda::core::{
    Completion, DeadlineAssigner, NodeId, PspInput, SdaStrategy, SspInput, TaskRun, TaskSpec,
};

/// Gives the current stage a slack share proportional to
/// `pex_i · boost^(remaining-1)`, so earlier stages (more stages still
/// remaining) receive geometrically boosted shares when `boost > 1`.
struct FrontLoaded {
    boost: f64,
}

impl DeadlineAssigner for FrontLoaded {
    fn serial_deadline(&self, input: &SspInput<'_>) -> f64 {
        let r = input.remaining_count();
        // Weight of the current stage among the remaining ones: stage j
        // (0-based among remaining) weighs pex_j · boost^(r-1-j).
        let mut weights = Vec::with_capacity(r);
        weights.push(input.pex_current * self.boost.powi(r as i32 - 1));
        for (j, &p) in input.pex_remaining_after.iter().enumerate() {
            weights.push(p * self.boost.powi(r as i32 - 2 - j as i32));
        }
        let total: f64 = weights.iter().sum();
        let share = if total > 0.0 {
            weights[0] / total
        } else {
            1.0 / r as f64
        };
        input.submit_time + input.pex_current + input.remaining_slack() * share
    }

    fn parallel_deadline(&self, input: &PspInput) -> f64 {
        // DIV-1 at parallel levels.
        input.arrival_time + input.window() / input.branch_count as f64
    }
}

fn chain() -> TaskSpec {
    TaskSpec::serial(
        (0..4)
            .map(|i| TaskSpec::simple(NodeId::new(i), 2.0, 2.0))
            .collect(),
    )
}

fn walk(label: &str, strategy: &dyn DeadlineAssigner) {
    let mut run = TaskRun::new(&chain(), 0.0, 16.0).expect("valid spec");
    println!("{label}: virtual deadlines as stages finish on time");
    let mut pending = run.start(strategy, 0.0);
    let mut now = 0.0;
    while let Some(sub) = pending.pop() {
        println!(
            "  t={now:>4.1}  stage at {}  dl = {:>6.2}",
            sub.node, sub.deadline
        );
        now += sub.ex;
        match run.complete(sub.subtask, strategy, now) {
            Completion::Submitted(next) => pending.extend(next),
            Completion::Finished => break,
        }
    }
    println!("  done at t={now:.1}\n");
}

fn main() {
    // 4 equal stages, total work 8, deadline 16 → slack 8.
    walk("EQF (paper)", &SdaStrategy::eqf_div1());
    walk("FrontLoaded ×1.5", &FrontLoaded { boost: 1.5 });
    walk("FrontLoaded ×3.0", &FrontLoaded { boost: 3.0 });
    println!("With boost > 1 the first stage's deadline moves later (more");
    println!("slack up front) while later stages inherit whatever is left —");
    println!("the trait lets you explore the whole design space the paper");
    println!("opened; EQF-AS (see `ext_eqf_as`) is the opposite bet.");
}
