//! An offline planning tool built on the strategy formulas: given a
//! serial task's predicted stage times and an end-to-end deadline, print
//! the virtual-deadline plan of every strategy side by side, and show
//! how the *dynamic* rule re-plans when a stage finishes early or late.
//!
//! ```sh
//! cargo run --release --example deadline_planner -- 20 2 4 1 3
//! # (deadline, then per-stage predicted execution times)
//! ```

use sda::core::{SerialStrategy, SspInput};

#[allow(clippy::disallowed_methods)] // example CLI: argv parsing happens before any simulation
fn parse_args() -> (f64, Vec<f64>) {
    let nums: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("arguments must be numbers; got {a:?}");
                std::process::exit(2);
            })
        })
        .collect();
    if nums.len() >= 2 {
        (nums[0], nums[1..].to_vec())
    } else {
        // Default: the running example from the docs.
        (20.0, vec![2.0, 4.0, 1.0, 3.0])
    }
}

fn main() {
    let (deadline, pex) = parse_args();
    let total: f64 = pex.iter().sum();
    println!(
        "Task: {} stages, total predicted work {total:.2}, deadline {deadline:.2}, slack {:.2}\n",
        pex.len(),
        deadline - total
    );

    // Static plans.
    println!("{:<8}  ", "stage");
    print!("{:<8}", "");
    for s in SerialStrategy::ALL {
        print!("{:>10}", s.short_name());
    }
    println!();
    let plans: Vec<Vec<f64>> = SerialStrategy::ALL
        .iter()
        .map(|s| s.plan(0.0, deadline, &pex))
        .collect();
    for i in 0..pex.len() {
        print!("{:<8}", format!("{} (={})", i + 1, pex[i]));
        for plan in &plans {
            print!("{:>10.2}", plan[i]);
        }
        println!();
    }

    // Dynamic re-planning: what happens to stage 2's deadline if stage 1
    // finishes early (50% of pex) or late (150% of pex)?
    println!("\nDynamic re-planning of stage 2 (EQF), depending on stage 1's finish:");
    for (label, factor) in [
        ("early (0.5×)", 0.5),
        ("on time (1.0×)", 1.0),
        ("late (1.5×)", 1.5),
    ] {
        let finish1 = pex[0] * factor;
        let dl2 = SerialStrategy::EqualFlexibility.deadline(&SspInput {
            submit_time: finish1,
            global_deadline: deadline,
            pex_current: pex[1],
            pex_remaining_after: &pex[2..],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        });
        println!("  stage 1 finishes {label:>14} at t={finish1:>5.2} → dl(T2) = {dl2:.2}");
    }
    println!("\nLeftover slack is inherited; overruns shrink what follows —");
    println!("\"the rich get richer while the poor get poorer\" (paper §4.2.2).");
}
