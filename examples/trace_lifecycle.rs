//! Watching the process manager work: traces the first few global tasks
//! through the system and prints their lifecycles — submissions with
//! assigned virtual deadlines, completions, and end-to-end outcomes —
//! under UD and then EQF, on the *same* workload sample.
//!
//! ```sh
//! cargo run --release --example trace_lifecycle
//! ```

use sda::core::SdaStrategy;
use sda::sim::rng::RngFactory;
use sda::sim::{Engine, SimTime};
use sda::system::{Event, SystemConfig, SystemModel, TraceEvent};

fn run_traced(strategy: SdaStrategy, label: &str) {
    let mut cfg = SystemConfig::ssp_baseline(strategy);
    cfg.workload.load = 0.6; // some queueing, so deadlines matter
    let model = SystemModel::new(cfg, &RngFactory::new(2718)).expect("valid config");
    let mut engine = Engine::new(model);
    engine.model_mut().set_trace_tasks(3);
    engine
        .context_mut()
        .schedule_at(SimTime::ZERO, Event::Init { warmup_end: 0.0 });
    engine.run_until(SimTime::from(500.0));

    println!("── {label} ──");
    for ev in engine.model().trace() {
        match *ev {
            TraceEvent::Arrival {
                task,
                time,
                deadline,
            } => println!("t={time:>7.2}  {task} arrives           dl(T) = {deadline:.2}"),
            TraceEvent::Submitted {
                task,
                time,
                node,
                deadline,
            } => println!("t={time:>7.2}  {task} -> {node}        dl = {deadline:.2}"),
            TraceEvent::SubtaskDone {
                task,
                time,
                node,
                virtual_miss,
            } => println!(
                "t={time:>7.2}  {task} done @ {node}    {}",
                if virtual_miss {
                    "(virtual miss)"
                } else {
                    "(on time)"
                }
            ),
            TraceEvent::Finished { task, time, missed } => println!(
                "t={time:>7.2}  {task} FINISHED         {}",
                if missed { "MISSED" } else { "met deadline" }
            ),
            TraceEvent::Aborted { task, time } => {
                println!("t={time:>7.2}  {task} ABORTED");
            }
        }
    }
    println!();
}

fn main() {
    // Same seed → identical arrivals and service demands; only the
    // virtual deadlines (and hence queueing order) differ.
    run_traced(SdaStrategy::ud_ud(), "Ultimate Deadline (UD)");
    run_traced(SdaStrategy::eqf_ud(), "Equal Flexibility (EQF)");
    println!("Note how UD hands every stage the end-to-end deadline, while");
    println!("EQF spreads it; with queueing at load 0.6 that changes which");
    println!("jobs the EDF schedulers favor, and ultimately who misses.");
}
