//! Within-run output analysis: one long run cut into batches.
//!
//! The paper's two 10⁶-unit runs per point are classic single-long-run
//! methodology; this module provides the matching batch-means analysis
//! as an alternative to independent replications
//! ([`run_replications`](crate::run_replications)): the measured window
//! is cut into `B` contiguous batches, each batch's miss percentage is
//! one (approximately independent) observation, and a Student-t interval
//! is formed over the batch values.

use serde::{Deserialize, Serialize};

use sda_sim::rng::RngFactory;
use sda_sim::stats::{ConfidenceInterval, Tally};
use sda_sim::{Engine, SimTime};
use sda_workload::ConfigError;

use crate::config::SystemConfig;
use crate::model::{Event, SystemModel};
use crate::runner::RunConfig;

/// Batch-means estimates from one long run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchedResult {
    /// Per-batch `MD_local` percentages.
    pub local_batches: Vec<f64>,
    /// Per-batch `MD_global` percentages.
    pub global_batches: Vec<f64>,
    /// 95% CI over the local batch means (`None` with < 2 usable
    /// batches).
    pub local_ci: Option<ConfidenceInterval>,
    /// 95% CI over the global batch means.
    pub global_ci: Option<ConfidenceInterval>,
}

fn ci_over(batches: &[f64]) -> Option<ConfidenceInterval> {
    if batches.len() < 2 {
        return None;
    }
    let t: Tally = batches.iter().copied().collect();
    Some(ConfidenceInterval::from_moments(
        t.mean(),
        t.std_dev(),
        t.count(),
    ))
}

/// Runs one long simulation of `run.duration` (after warm-up) and
/// analyses it as `num_batches` contiguous batches.
///
/// Batches in which a class completed no tasks contribute no observation
/// for that class (relevant only at extreme `frac_local` values).
///
/// # Errors
///
/// Returns [`ConfigError`] for invalid workload parameters.
///
/// # Panics
///
/// Panics if `num_batches == 0`.
pub fn run_batch_means(
    config: &SystemConfig,
    run: &RunConfig,
    num_batches: usize,
) -> Result<BatchedResult, ConfigError> {
    assert!(num_batches > 0, "need at least one batch");
    let rng = RngFactory::new(run.seed);
    let model = SystemModel::new(config.clone(), &rng)?;
    let mut engine = Engine::new(model);
    engine.context_mut().schedule_at(
        SimTime::ZERO,
        Event::Init {
            warmup_end: run.warmup,
        },
    );
    engine.run_until(SimTime::from(run.warmup));

    let mut local_batches = Vec::with_capacity(num_batches);
    let mut global_batches = Vec::with_capacity(num_batches);
    let (mut l_hits, mut l_total) = (0u64, 0u64);
    let (mut g_hits, mut g_total) = (0u64, 0u64);
    let batch_len = run.duration / num_batches as f64;
    for b in 0..num_batches {
        let horizon = SimTime::from(run.warmup + batch_len * (b + 1) as f64);
        engine.run_until(horizon);
        let m = engine.model().metrics();
        let (lh, lt) = (m.local.missed(), m.local.completed());
        let (gh, gt) = (m.global.missed(), m.global.completed());
        if lt > l_total {
            local_batches.push(100.0 * (lh - l_hits) as f64 / (lt - l_total) as f64);
        }
        if gt > g_total {
            global_batches.push(100.0 * (gh - g_hits) as f64 / (gt - g_total) as f64);
        }
        (l_hits, l_total, g_hits, g_total) = (lh, lt, gh, gt);
    }

    Ok(BatchedResult {
        local_ci: ci_over(&local_batches),
        global_ci: ci_over(&global_batches),
        local_batches,
        global_batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_replications, RunConfig};
    use sda_core::SdaStrategy;

    #[test]
    fn batches_partition_the_run() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let run = RunConfig {
            warmup: 500.0,
            duration: 20_000.0,
            seed: 5,
            order_fuzz: 0,
        };
        let res = run_batch_means(&cfg, &run, 10).unwrap();
        assert_eq!(res.local_batches.len(), 10);
        assert_eq!(res.global_batches.len(), 10);
        assert!(res.local_ci.is_some());
        for &b in res.local_batches.iter().chain(&res.global_batches) {
            assert!((0.0..=100.0).contains(&b));
        }
    }

    #[test]
    fn batch_means_agree_with_replications() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        let run = RunConfig {
            warmup: 1_000.0,
            duration: 40_000.0,
            seed: 6,
            order_fuzz: 0,
        };
        let bm = run_batch_means(&cfg, &run, 16).unwrap();
        let reps = run_replications(&cfg, &run, 3).unwrap();
        let bm_mean = bm.global_ci.unwrap().mean;
        let rep_mean = reps.md_global();
        assert!(
            (bm_mean - rep_mean).abs() < 5.0,
            "batch-means {bm_mean:.1}% vs replications {rep_mean:.1}%"
        );
    }

    #[test]
    fn single_class_workload_yields_one_empty_series() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        cfg.workload.frac_local = 1.0;
        let run = RunConfig {
            warmup: 200.0,
            duration: 5_000.0,
            seed: 7,
            order_fuzz: 0,
        };
        let res = run_batch_means(&cfg, &run, 5).unwrap();
        assert!(res.global_batches.is_empty());
        assert!(res.global_ci.is_none());
        assert_eq!(res.local_batches.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_panics() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        let _ = run_batch_means(&cfg, &RunConfig::quick(1), 0);
    }
}
