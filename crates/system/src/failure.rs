//! Fault injection: per-node failure/repair processes.
//!
//! The paper assumes a fixed, always-healthy node set. [`FailureModel`]
//! lifts that assumption: each node alternates between *up* and *down*
//! according to either a stochastic exponential MTTF/MTTR process or a
//! deterministic scripted trace (the latter exists so failure scenarios
//! can be golden-pinned bit-exactly).
//!
//! [`FailureTimeline`] is the runtime view: a per-node scalar state
//! machine producing the sequence of `[down, up)` outage intervals. The
//! exponential variant draws every node's gaps from a dedicated named
//! RNG stream (`system.failure.{i}`), so two independently constructed
//! timelines over the same factory produce **identical** outages no
//! matter how their queries interleave — this is what lets the serial
//! engine, the sharded workers, and the sharded manager each hold their
//! own copy and still agree bit-exactly on when every node is down.

use serde::{Deserialize, Serialize};

use sda_sim::dist::Exponential;
use sda_sim::rng::{RngFactory, Stream};
use sda_workload::ConfigError;

/// One scripted outage: node `node` is down over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownInterval {
    /// Index of the failing node (must be `< nodes`).
    pub node: usize,
    /// Failure instant (finite, ≥ 0).
    pub from: f64,
    /// Repair instant (finite, > `from`). The node is back up *at*
    /// `until` — the interval is half-open.
    pub until: f64,
}

/// Per-node failure/repair process (default: no failures).
///
/// Failures are *crash* failures: a node going down loses its queue and
/// whatever it was serving, and in-flight hand-offs addressed to it are
/// lost (see the model layer's `NodeDown` handling). Repair brings the
/// node back with empty queues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum FailureModel {
    /// No failures — every prior configuration is bit-identical under
    /// this default.
    #[default]
    None,
    /// Every node independently alternates up/down with exponentially
    /// distributed time-to-failure and time-to-repair.
    Exponential {
        /// Mean time to failure (finite, > 0), measured from the moment
        /// the node (re)joins.
        mttf: f64,
        /// Mean time to repair (finite, > 0).
        mttr: f64,
    },
    /// A deterministic trace of outages, for golden pinning and
    /// regression scenarios.
    Scripted {
        /// The outage intervals; per node they must be non-overlapping
        /// (any order is accepted, the runtime timeline sorts per node).
        downs: Vec<DownInterval>,
    },
}

impl FailureModel {
    /// Whether this is the failure-free default.
    pub fn is_none(&self) -> bool {
        matches!(self, FailureModel::None)
    }

    /// Checks the model's parameters against the node count.
    ///
    /// # Errors
    ///
    /// Returns an indexed [`ConfigError::InvalidEntry`] for non-positive
    /// or non-finite MTTF/MTTR (index 0 = MTTF, 1 = MTTR), a scripted
    /// node index out of range, a malformed interval, or two overlapping
    /// intervals on the same node (reported at the later entry's index).
    pub fn validate(&self, nodes: usize) -> Result<(), ConfigError> {
        let entry = |what, index, constraint, value| {
            Err(ConfigError::InvalidEntry {
                what,
                index,
                constraint,
                value,
            })
        };
        match self {
            FailureModel::None => Ok(()),
            FailureModel::Exponential { mttf, mttr } => {
                if !(mttf.is_finite() && *mttf > 0.0) {
                    return entry("failure model", 0, "MTTF finite and > 0", *mttf);
                }
                if !(mttr.is_finite() && *mttr > 0.0) {
                    return entry("failure model", 1, "MTTR finite and > 0", *mttr);
                }
                Ok(())
            }
            FailureModel::Scripted { downs } => {
                for (i, d) in downs.iter().enumerate() {
                    if d.node >= nodes {
                        return entry("failure trace", i, "node index < node count", d.node as f64);
                    }
                    if !(d.from.is_finite() && d.from >= 0.0 && d.until.is_finite()) {
                        return entry("failure trace", i, "finite interval with from ≥ 0", d.from);
                    }
                    if d.from >= d.until {
                        return entry("failure trace", i, "from < until", d.until - d.from);
                    }
                    for e in &downs[..i] {
                        if e.node == d.node && d.from < e.until && e.from < d.until {
                            return entry(
                                "failure trace",
                                i,
                                "non-overlapping intervals per node",
                                d.from,
                            );
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// Per-node churn state: the source of the node's outage sequence.
#[derive(Debug, Clone)]
enum NodeChurn {
    /// This node never fails.
    Healthy,
    /// Exponential alternation. `seen` holds every outage generated so
    /// far (sorted, disjoint); `next` is the [`FailureTimeline::next_outage`]
    /// cursor into it. Outages are drawn lazily — two per-outage draws
    /// (gap, then repair) from the node's dedicated stream — so the
    /// sequence is independent of when queries force generation.
    Exponential {
        seen: Vec<(f64, f64)>,
        next: usize,
        fail: Exponential,
        repair: Exponential,
        rng: Stream,
    },
    /// Scripted outages, sorted by `from`; `cursor` is the
    /// [`FailureTimeline::next_outage`] position.
    Scripted {
        intervals: Vec<(f64, f64)>,
        cursor: usize,
    },
}

impl NodeChurn {
    /// Extends an exponential node's generated outages until the last
    /// one *starts* after `t` (so containment at `t` is decidable).
    /// No-op for healthy and scripted nodes.
    fn generate_past(&mut self, t: f64) {
        if let NodeChurn::Exponential {
            seen,
            fail,
            repair,
            rng,
            ..
        } = self
        {
            while seen.last().is_none_or(|&(down, _)| down <= t) {
                let prev_up = seen.last().map_or(0.0, |&(_, up)| up);
                let down = prev_up + fail.sample_with(rng);
                let up = down + repair.sample_with(rng);
                seen.push((down, up));
            }
        }
    }
}

/// Whether `t` falls inside one of the sorted, disjoint, half-open
/// `[down, up)` intervals.
fn contains(intervals: &[(f64, f64)], t: f64) -> bool {
    let i = intervals.partition_point(|&(down, _)| down <= t);
    i > 0 && t < intervals[i - 1].1
}

/// The runtime outage sequence of every node, derived from a
/// [`FailureModel`] and an [`RngFactory`].
///
/// Two access patterns:
///
/// * [`FailureTimeline::next_outage`] — consume the outage intervals in
///   order (the engines use this to schedule `NodeDown`/`NodeUp`
///   events);
/// * [`FailureTimeline::is_down`] — point queries at **arbitrary**
///   times, in any order. The sharded manager needs this: it filters
///   calendared hand-offs at forward delivery times while draining a
///   window, then picks live re-dispatch targets at (earlier) loss
///   times while merging the same window, against the same copy.
///
/// One copy serves both patterns — generated outages are retained, not
/// consumed, so a point query never perturbs the sequence. Independent
/// copies built from the same model and factory agree bit-exactly.
/// Memory grows with the number of outages elapsed (two `f64`s each),
/// which is negligible for any finite horizon.
#[derive(Debug, Clone)]
pub struct FailureTimeline {
    nodes: Vec<NodeChurn>,
}

impl FailureTimeline {
    /// Builds the timeline for `nodes` nodes. The exponential variant
    /// immediately draws each node's first outage from its dedicated
    /// stream; the scripted variant sorts each node's intervals once.
    ///
    /// The model must already be validated (see
    /// [`FailureModel::validate`]).
    pub fn new(model: &FailureModel, nodes: usize, rng: &RngFactory) -> FailureTimeline {
        let churn = match model {
            FailureModel::None => vec![NodeChurn::Healthy; nodes],
            FailureModel::Exponential { mttf, mttr } => {
                let fail = Exponential::with_mean(*mttf).expect("validated MTTF");
                let repair = Exponential::with_mean(*mttr).expect("validated MTTR");
                (0..nodes)
                    .map(|i| NodeChurn::Exponential {
                        seen: Vec::new(),
                        next: 0,
                        fail,
                        repair,
                        rng: rng.stream_indexed("system.failure", i),
                    })
                    .collect()
            }
            FailureModel::Scripted { downs } => {
                let mut per_node: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nodes];
                for d in downs {
                    per_node[d.node].push((d.from, d.until));
                }
                per_node
                    .into_iter()
                    .map(|mut intervals| {
                        if intervals.is_empty() {
                            NodeChurn::Healthy
                        } else {
                            intervals.sort_by(|a, b| {
                                a.0.partial_cmp(&b.0).expect("validated finite interval")
                            });
                            NodeChurn::Scripted {
                                intervals,
                                cursor: 0,
                            }
                        }
                    })
                    .collect()
            }
        };
        FailureTimeline { nodes: churn }
    }

    /// Number of nodes covered.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the timeline covers zero nodes.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Consumes and returns node `node`'s next outage `[down, up)`, or
    /// `None` when the node never fails again. Exponential nodes always
    /// have a next outage; scripted nodes run out.
    pub fn next_outage(&mut self, node: usize) -> Option<(f64, f64)> {
        match &mut self.nodes[node] {
            NodeChurn::Healthy => None,
            NodeChurn::Exponential {
                seen,
                next,
                fail,
                repair,
                rng,
            } => {
                if *next == seen.len() {
                    let prev_up = seen.last().map_or(0.0, |&(_, up)| up);
                    let down = prev_up + fail.sample_with(rng);
                    let up = down + repair.sample_with(rng);
                    seen.push((down, up));
                }
                let out = seen[*next];
                *next += 1;
                Some(out)
            }
            NodeChurn::Scripted { intervals, cursor } => {
                let out = intervals.get(*cursor).copied();
                if out.is_some() {
                    *cursor += 1;
                }
                out
            }
        }
    }

    /// Whether node `node` is down at time `t` — a pure point query:
    /// any node, any time, any order. Generated outages are retained,
    /// so querying backwards (the sharded manager does, between the
    /// calendar-drain and window-merge phases) is exact, and point
    /// queries never perturb [`FailureTimeline::next_outage`].
    pub fn is_down(&mut self, node: usize, t: f64) -> bool {
        self.nodes[node].generate_past(t);
        match &self.nodes[node] {
            NodeChurn::Healthy => false,
            NodeChurn::Exponential { seen, .. } => contains(seen, t),
            NodeChurn::Scripted { intervals, .. } => contains(intervals, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down(node: usize, from: f64, until: f64) -> DownInterval {
        DownInterval { node, from, until }
    }

    #[test]
    fn none_is_default_and_always_valid() {
        assert!(FailureModel::default().is_none());
        assert!(FailureModel::None.validate(0).is_ok());
        let mut tl = FailureTimeline::new(&FailureModel::None, 3, &RngFactory::new(1));
        assert_eq!(tl.len(), 3);
        assert!(!tl.is_empty());
        for i in 0..3 {
            assert_eq!(tl.next_outage(i), None);
            assert!(!tl.is_down(i, 1e9));
        }
    }

    #[test]
    fn exponential_parameters_are_validated() {
        assert!(FailureModel::Exponential {
            mttf: 100.0,
            mttr: 5.0
        }
        .validate(6)
        .is_ok());
        for (mttf, mttr, index) in [
            (0.0, 5.0, 0),
            (-1.0, 5.0, 0),
            (f64::NAN, 5.0, 0),
            (f64::INFINITY, 5.0, 0),
            (100.0, 0.0, 1),
            (100.0, -2.0, 1),
            (100.0, f64::NAN, 1),
        ] {
            match (FailureModel::Exponential { mttf, mttr }).validate(6) {
                Err(ConfigError::InvalidEntry { index: i, .. }) => assert_eq!(i, index),
                other => panic!("expected InvalidEntry at {index}, got {other:?}"),
            }
        }
    }

    #[test]
    fn scripted_traces_are_validated() {
        assert!(FailureModel::Scripted {
            downs: vec![down(0, 1.0, 2.0), down(1, 1.5, 2.5), down(0, 2.0, 3.0)]
        }
        .validate(2)
        .is_ok());
        // Out-of-range node index.
        match (FailureModel::Scripted {
            downs: vec![down(0, 1.0, 2.0), down(2, 1.0, 2.0)],
        })
        .validate(2)
        {
            Err(ConfigError::InvalidEntry { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected InvalidEntry, got {other:?}"),
        }
        // Degenerate and reversed intervals.
        assert!(FailureModel::Scripted {
            downs: vec![down(0, 2.0, 2.0)]
        }
        .validate(2)
        .is_err());
        assert!(FailureModel::Scripted {
            downs: vec![down(0, 3.0, 2.0)]
        }
        .validate(2)
        .is_err());
        assert!(FailureModel::Scripted {
            downs: vec![down(0, -1.0, 2.0)]
        }
        .validate(2)
        .is_err());
        assert!(FailureModel::Scripted {
            downs: vec![down(0, f64::NAN, 2.0)]
        }
        .validate(2)
        .is_err());
        // Overlap on the same node is rejected at the later entry...
        match (FailureModel::Scripted {
            downs: vec![down(0, 1.0, 3.0), down(1, 1.0, 9.0), down(0, 2.5, 4.0)],
        })
        .validate(2)
        {
            Err(ConfigError::InvalidEntry { index, .. }) => assert_eq!(index, 2),
            other => panic!("expected InvalidEntry, got {other:?}"),
        }
        // ...but back-to-back intervals (shared endpoint) are fine.
        assert!(FailureModel::Scripted {
            downs: vec![down(0, 1.0, 2.0), down(0, 2.0, 3.0)]
        }
        .validate(1)
        .is_ok());
    }

    #[test]
    fn scripted_timeline_replays_the_trace_in_order() {
        let model = FailureModel::Scripted {
            downs: vec![down(1, 5.0, 6.0), down(1, 1.0, 2.0), down(0, 3.0, 4.0)],
        };
        let mut tl = FailureTimeline::new(&model, 3, &RngFactory::new(9));
        // Node 1's intervals come back sorted regardless of trace order.
        assert_eq!(tl.next_outage(1), Some((1.0, 2.0)));
        assert_eq!(tl.next_outage(1), Some((5.0, 6.0)));
        assert_eq!(tl.next_outage(1), None);
        assert_eq!(tl.next_outage(0), Some((3.0, 4.0)));
        assert_eq!(tl.next_outage(2), None, "untouched node never fails");
    }

    #[test]
    fn is_down_matches_the_intervals_half_open() {
        let model = FailureModel::Scripted {
            downs: vec![down(0, 1.0, 2.0), down(0, 4.0, 5.0)],
        };
        let mut tl = FailureTimeline::new(&model, 1, &RngFactory::new(9));
        assert!(!tl.is_down(0, 0.5));
        assert!(tl.is_down(0, 1.0), "down at the failure instant");
        assert!(tl.is_down(0, 1.999));
        assert!(!tl.is_down(0, 2.0), "up again at the repair instant");
        assert!(!tl.is_down(0, 3.0));
        assert!(tl.is_down(0, 4.5));
        assert!(!tl.is_down(0, 100.0));
    }

    #[test]
    fn is_down_answers_point_queries_in_any_order() {
        // The sharded manager queries backwards: hand-off filtering at
        // forward delivery times while draining a window, then live-node
        // scans at earlier loss times while merging it. Ordered and
        // scrambled query sequences must agree on one copy.
        let model = FailureModel::Exponential {
            mttf: 30.0,
            mttr: 6.0,
        };
        let factory = RngFactory::new(0xFA12);
        let mut ordered = FailureTimeline::new(&model, 2, &factory);
        let mut scrambled = FailureTimeline::new(&model, 2, &factory);
        let times: Vec<f64> = (0..400).map(|i| i as f64 * 0.7).collect();
        let forward: Vec<bool> = times.iter().map(|&t| ordered.is_down(0, t)).collect();
        let mut shuffled: Vec<usize> = (0..times.len()).collect();
        // Deterministic scramble: stride through the indices.
        shuffled.sort_by_key(|i| (i * 173) % times.len());
        for &i in &shuffled {
            assert_eq!(
                scrambled.is_down(0, times[i]),
                forward[i],
                "query order changed the answer at t={}",
                times[i]
            );
        }
        // Point queries must not perturb the outage sequence either.
        let mut fresh = FailureTimeline::new(&model, 2, &factory);
        for _ in 0..20 {
            let expect = fresh.next_outage(0).unwrap();
            let got = ordered.next_outage(0).unwrap();
            assert_eq!(expect.0.to_bits(), got.0.to_bits());
            assert_eq!(expect.1.to_bits(), got.1.to_bits());
        }
    }

    #[test]
    fn independent_copies_agree_bit_exactly() {
        let model = FailureModel::Exponential {
            mttf: 50.0,
            mttr: 4.0,
        };
        let factory = RngFactory::new(0xFA11);
        let mut a = FailureTimeline::new(&model, 4, &factory);
        let mut b = FailureTimeline::new(&model, 4, &factory);
        // Query `a` in node order, `b` in a scrambled per-node pattern:
        // the per-node streams make the draws interleaving-independent.
        let mut outages_a = Vec::new();
        for node in 0..4 {
            for _ in 0..8 {
                outages_a.push((node, a.next_outage(node).unwrap()));
            }
        }
        let mut outages_b = vec![Vec::new(); 4];
        for round in 0..8 {
            for node in (0..4).rev() {
                let _ = round;
                outages_b[node].push(b.next_outage(node).unwrap());
            }
        }
        for (node, (d, u)) in outages_a {
            let (bd, bu) = outages_b[node].remove(0);
            assert_eq!(d.to_bits(), bd.to_bits());
            assert_eq!(u.to_bits(), bu.to_bits());
        }
    }

    #[test]
    fn exponential_outages_are_ordered_and_positive() {
        let model = FailureModel::Exponential {
            mttf: 100.0,
            mttr: 10.0,
        };
        let mut tl = FailureTimeline::new(&model, 2, &RngFactory::new(7));
        let mut prev_up = 0.0;
        for _ in 0..100 {
            let (d, u) = tl.next_outage(0).unwrap();
            assert!(d >= prev_up, "outages must not overlap");
            assert!(u > d, "repair strictly after failure");
            prev_up = u;
        }
    }
}
