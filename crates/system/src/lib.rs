//! # sda-system — the distributed soft real-time system model
//!
//! The executable model of the paper's §3.2 architecture:
//!
//! * `k` **nodes**, each a non-preemptive single server with
//!   its own [`ReadyQueue`](sda_sched::ReadyQueue) — schedulers are
//!   independent and never coordinate. Homogeneous by default;
//!   `WorkloadConfig::node_speeds` gives each node a speed factor
//!   (service time `ex / speed`) for heterogeneous-hardware studies;
//! * a **process manager** that receives global tasks, assigns virtual
//!   deadlines via an [`SdaStrategy`](sda_core::SdaStrategy), submits
//!   simple subtasks to their nodes and enforces precedence
//!   (via [`TaskRun`](sda_core::TaskRun));
//! * a **network model** ([`NetworkModel`], default
//!   [`Zero`](NetworkModel::Zero) = the paper's free communication):
//!   under a non-zero model every subtask hand-off — initial fan-out,
//!   serial forwarding, fan-in, result return — becomes a delayed
//!   in-flight event, and deadline-assignment strategies reserve slack
//!   for the expected transit;
//! * per-node **local task** streams competing with global subtasks —
//!   stationary Poisson by default, or bursty/phased under a
//!   time-varying `WorkloadConfig::arrivals` process;
//! * an optional **failure model** ([`FailureModel`], default
//!   [`None`](FailureModel::None) = the paper's immortal fleet):
//!   exponential MTTF/MTTR churn or scripted outage traces crash nodes
//!   — queued and in-flight work is lost, the manager re-dispatches
//!   lost subtasks to survivors and re-decomposes the remaining
//!   deadline budget mid-task through the unchanged strategy layer;
//! * a **feedback loop** for `ADAPT(base)` strategies: a windowed
//!   miss-ratio EWMA ([`Feedback`], O(1) per completion) is stamped
//!   into every stage activation as a slack-share multiplier, so
//!   deadline assignment tightens itself under observed overload;
//! * **metrics**: per-class missed-deadline ratios (the paper's primary
//!   measure), response times, tardiness, subtask-level virtual-deadline
//!   misses, hand-off transit times and node utilizations, with warm-up
//!   deletion.
//!
//! The model runs on the deterministic [`sda_sim`] engine;
//! [`run_replications`] executes independent replications and reports
//! 95% confidence intervals, like the paper's two-run experiments.
//!
//! ## Example: UD vs EQF at the baseline
//!
//! ```
//! use sda_core::SdaStrategy;
//! use sda_system::{RunConfig, SystemConfig};
//!
//! let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
//! let run = RunConfig { warmup: 100.0, duration: 2_000.0, seed: 1, order_fuzz: 0 };
//! let result = sda_system::run_once(&cfg, &run)?;
//! assert!(result.metrics.global.completed() > 0);
//!
//! cfg.strategy = SdaStrategy::ud_ud();
//! let ud = sda_system::run_once(&cfg, &run)?;
//! // Same workload (same seed & streams), different strategy.
//! assert!(ud.metrics.local.completed() > 0);
//! # Ok::<(), sda_workload::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod config;
mod failure;
mod metrics;
mod model;
mod node;
mod runner;
mod shard;

pub use batch::{run_batch_means, BatchedResult};
pub use config::{NetworkModel, OverloadPolicy, SystemConfig};
pub use failure::{DownInterval, FailureModel};
pub use metrics::{ClassMetrics, Feedback, Metrics};
pub use model::{Event, SystemModel, TraceEvent};
pub use node::Node;
pub use runner::{
    run_once, run_once_sharded, run_replications, run_replications_sharded,
    run_replications_sharded_with_capacity, run_replications_with_threads, ReplicatedResult,
    RunConfig, RunError, RunResult,
};
