//! A processing node: one single-job server plus its ready queue.
//! Non-preemptive by default (the paper's model); the preemption hooks
//! ([`Node::should_preempt`], [`Node::preempt`]) support the preemptive
//! ablation study.
//!
//! Completion events are validated, not cancelled: every service start
//! bumps the node's *service epoch*, and the `ServiceComplete` event
//! scheduled for that start carries the epoch it belongs to. A completion
//! arriving with a stale epoch (its job was preempted) is simply ignored
//! by the model — preemption never reaches back into the future-event
//! list, which keeps the whole simulation on the handle-free fast path.

use sda_core::NodeId;
use sda_sched::{Job, Policy, ReadyQueue};
use sda_sim::stats::TimeWeighted;
use sda_sim::SimTime;

/// The in-service job stays resident in the ready queue's job slab; the
/// node only tracks which slot it occupies and when it started.
#[derive(Debug)]
struct InService {
    slot: u32,
    started: SimTime,
}

/// One node of the distributed system: an independent server with its own
/// scheduler (paper §3.2). The simulation model drives it; the node only
/// owns local state (queue, busy server, utilization accounting).
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    queue: ReadyQueue,
    in_service: Option<InService>,
    /// Monotone count of service starts; see [`Node::service_epoch`].
    service_epoch: u64,
    /// Whether the node has crashed (see [`Node::fail`]). A down node
    /// accepts no jobs; hand-offs addressed to it are lost.
    down: bool,
    utilization: TimeWeighted,
    queue_length: TimeWeighted,
    served: u64,
    preemptions: u64,
}

impl Node {
    /// A new idle node with an empty queue under `policy`.
    pub fn new(id: NodeId, policy: Policy) -> Node {
        Node {
            id,
            queue: ReadyQueue::new(policy),
            in_service: None,
            service_epoch: 0,
            down: false,
            utilization: TimeWeighted::new(SimTime::ZERO, 0.0),
            queue_length: TimeWeighted::new(SimTime::ZERO, 0.0),
            served: 0,
            preemptions: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the server is currently serving a job.
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Whether the node has crashed and not yet been repaired.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Crashes the node at `now`: the in-service job (if any) and every
    /// queued job are moved into `lost` in service order and their slab
    /// slots vacated (the freed slots are recycled verbatim on rejoin —
    /// no slab growth, no leaked slots). The service epoch is bumped so
    /// the completion event already scheduled for the in-service job can
    /// never resurrect it, even across a later repair.
    ///
    /// # Panics
    ///
    /// Panics if the node is already down.
    pub fn fail(&mut self, now: SimTime, lost: &mut Vec<Job>) {
        assert!(!self.down, "fail on a node that is already down");
        self.down = true;
        if let Some(cur) = self.in_service.take() {
            self.utilization.update(now, 0.0);
            lost.push(self.queue.release(cur.slot));
        }
        // Stale-completion safety net: the epoch moves even though the
        // `in_service.is_some()` half of `completion_is_current` already
        // rejects the orphaned completion.
        self.service_epoch += 1;
        self.queue.purge_into(lost);
        self.queue_length.update(now, 0.0);
    }

    /// Repairs the node at `now`: it rejoins with an empty queue and an
    /// idle server (crash semantics — nothing survives the outage).
    ///
    /// # Panics
    ///
    /// Panics if the node is not down.
    pub fn recover(&mut self, now: SimTime) {
        assert!(self.down, "recover on a node that is up");
        debug_assert!(self.in_service.is_none() && self.queue.is_empty());
        self.down = false;
        // Both time-weighted stats are already integrating zero; touch
        // them anyway so the repair instant appears as a sample point.
        self.utilization.update(now, 0.0);
        self.queue_length.update(now, 0.0);
    }

    /// The job in service, if any.
    pub fn current(&self) -> Option<&Job> {
        self.in_service.as_ref().map(|s| self.queue.job(s.slot))
    }

    /// Times a job was preempted at this node since the last reset.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The current service epoch: incremented every time a job starts
    /// service. A `ServiceComplete` event stamped with epoch `e` is valid
    /// iff the server is busy and `service_epoch() == e` — each epoch
    /// names exactly one service start, and exactly one completion event
    /// is scheduled per start.
    pub fn service_epoch(&self) -> u64 {
        self.service_epoch
    }

    /// Whether a completion event stamped with `epoch` refers to the job
    /// currently in service (as opposed to one preempted since).
    pub fn completion_is_current(&self, epoch: u64) -> bool {
        self.in_service.is_some() && self.service_epoch == epoch
    }

    /// Whether the queue head would be served strictly before the job in
    /// service under the node's discipline — i.e. whether a preemptive
    /// server would switch now.
    pub fn should_preempt(&self) -> bool {
        match (self.in_service.as_ref(), self.queue.peek()) {
            (Some(cur), Some(head)) => self.queue.policy().beats(head, self.queue.job(cur.slot)),
            _ => false,
        }
    }

    /// Stops the in-service job at `now`, reducing its remaining service
    /// (and prediction) by the time already received, and returns it for
    /// the caller to re-enqueue. The completion event already scheduled
    /// for this job is *not* cancelled — it carries the now-stale epoch
    /// and will be ignored when it fires.
    ///
    /// Prefer [`Node::preempt_requeue`] on the hot path: it puts the job
    /// straight back into the ready queue without moving the payload.
    ///
    /// # Panics
    ///
    /// Panics if the server is idle.
    pub fn preempt(&mut self, now: SimTime) -> Job {
        let cur = self.in_service.take().expect("preempt on an idle server");
        let elapsed = now - cur.started;
        let job = self.queue.job_mut(cur.slot);
        job.service = (job.service - elapsed).max(0.0);
        job.pex = (job.pex - elapsed).max(0.0);
        self.utilization.update(now, 0.0);
        self.preemptions += 1;
        self.queue.release(cur.slot)
    }

    /// Preempts the in-service job at `now` and re-enqueues it in place:
    /// remaining service and prediction are burned down inside the job
    /// slab, and only the slot index re-enters the heap (with a fresh
    /// FIFO sequence, exactly as a pop-adjust-push round trip would get).
    /// Equivalent to `let j = preempt(now); enqueue(now, j);` without
    /// moving the payload.
    ///
    /// # Panics
    ///
    /// Panics if the server is idle.
    pub fn preempt_requeue(&mut self, now: SimTime) {
        let cur = self.in_service.take().expect("preempt on an idle server");
        let elapsed = now - cur.started;
        let job = self.queue.job_mut(cur.slot);
        job.service = (job.service - elapsed).max(0.0);
        job.pex = (job.pex - elapsed).max(0.0);
        self.utilization.update(now, 0.0);
        self.preemptions += 1;
        self.queue.requeue(cur.slot);
        self.queue_length.update(now, self.queue.len() as f64);
    }

    /// Queued jobs (not counting the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Job-slab slots ever grown at this node (occupied + free) — lets
    /// tests prove crash cancellation recycles slots instead of leaking.
    pub fn slab_capacity(&self) -> usize {
        self.queue.slab_capacity()
    }

    /// Jobs completely served since the last reset.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Enqueues a job at `now`.
    ///
    /// The caller must route around down nodes ([`Node::is_down`]) — a
    /// crashed node accepts nothing.
    pub fn enqueue(&mut self, now: SimTime, job: Job) {
        debug_assert!(!self.down, "enqueue on a down node");
        self.queue.push(job);
        self.queue_length.update(now, self.queue.len() as f64);
    }

    fn start(&mut self, now: SimTime, slot: u32) {
        self.queue_length.update(now, self.queue.len() as f64);
        self.utilization.update(now, 1.0);
        self.service_epoch += 1;
        self.in_service = Some(InService { slot, started: now });
    }

    /// If the server is idle, pops the next job (per the discipline) and
    /// marks the server busy; the job itself stays resident in the queue
    /// slab. Returns a copy of the started job so the caller can schedule
    /// its completion (stamped with the new [`Node::service_epoch`]).
    /// Does nothing when busy or empty.
    pub fn try_start(&mut self, now: SimTime) -> Option<Job> {
        debug_assert!(!self.down, "try_start on a down node");
        if self.in_service.is_some() {
            return None;
        }
        let slot = self.queue.pop_slot()?;
        self.start(now, slot);
        Some(*self.queue.job(slot))
    }

    /// Like [`Node::try_start`] but discards queued jobs failing
    /// `admit` (the firm-deadline overload policy) instead of serving
    /// them; discarded jobs are appended to the caller-provided
    /// `discarded` buffer (not cleared first), so the hot path reuses
    /// one buffer instead of allocating per dispatch.
    pub fn try_start_with_admission(
        &mut self,
        now: SimTime,
        mut admit: impl FnMut(&Job) -> bool,
        discarded: &mut Vec<Job>,
    ) -> Option<Job> {
        if self.in_service.is_some() {
            return None;
        }
        while let Some(slot) = self.queue.pop_slot() {
            if admit(self.queue.job(slot)) {
                self.start(now, slot);
                return Some(*self.queue.job(slot));
            }
            discarded.push(self.queue.release(slot));
        }
        self.queue_length.update(now, self.queue.len() as f64);
        None
    }

    /// Marks the in-service job finished at `now`, vacating its slab slot
    /// and returning it.
    ///
    /// # Panics
    ///
    /// Panics if the server was idle — a completion event without a job
    /// in service indicates a model bug (stale completions must be
    /// filtered with [`Node::completion_is_current`] first).
    pub fn finish_service(&mut self, now: SimTime) -> Job {
        let cur = self
            .in_service
            .take()
            .expect("finish_service on an idle server");
        self.utilization.update(now, 0.0);
        self.served += 1;
        self.queue.release(cur.slot)
    }

    /// Time-average server utilization since the last reset.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.utilization.time_average(now)
    }

    /// Time-average queue length since the last reset.
    pub fn mean_queue_length(&self, now: SimTime) -> f64 {
        self.queue_length.time_average(now)
    }

    /// Restarts the node's statistics at `now` (warm-up deletion); the
    /// queue and server state are preserved.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.utilization.reset(now);
        self.queue_length.reset(now);
        self.served = 0;
        self.preemptions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::TaskId;

    fn t(x: f64) -> SimTime {
        SimTime::from(x)
    }

    fn job(deadline: f64, service: f64) -> Job {
        Job::local(TaskId::new(0), 0.0, service, deadline)
    }

    #[test]
    fn idle_node_starts_earliest_deadline() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(9.0, 1.0));
        n.enqueue(t(0.0), job(3.0, 1.0));
        let started = n.try_start(t(0.0)).unwrap();
        assert_eq!(started.deadline, 3.0);
        assert!(n.is_busy());
        assert!(n.try_start(t(0.0)).is_none(), "busy server refuses");
        let done = n.finish_service(t(1.0));
        assert_eq!(done.deadline, 3.0);
        assert_eq!(n.served(), 1);
        assert!(!n.is_busy());
    }

    #[test]
    fn utilization_integrates_busy_time() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        n.enqueue(t(0.0), job(9.0, 2.0));
        n.try_start(t(0.0));
        n.finish_service(t(2.0));
        // Busy on [0,2), idle on [2,4) → 50%.
        assert!((n.utilization(t(4.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn admission_discards_tardy_jobs() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(1.0, 1.0)); // will be tardy at t=5
        n.enqueue(t(0.0), job(2.0, 1.0)); // also tardy
        n.enqueue(t(0.0), job(9.0, 1.0)); // fine
        let now = t(5.0);
        let mut discarded = Vec::new();
        let started =
            n.try_start_with_admission(now, |j| !j.is_tardy(now.as_f64()), &mut discarded);
        assert_eq!(started.unwrap().deadline, 9.0);
        assert_eq!(discarded.len(), 2);
        assert_eq!(n.queue_len(), 0);
    }

    #[test]
    fn admission_with_all_tardy_leaves_idle() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(1.0, 1.0));
        let now = t(5.0);
        let mut discarded = Vec::new();
        let started =
            n.try_start_with_admission(now, |j| !j.is_tardy(now.as_f64()), &mut discarded);
        assert!(started.is_none());
        assert_eq!(discarded.len(), 1);
        assert!(!n.is_busy());
    }

    #[test]
    fn preemption_reduces_remaining_service() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(9.0, 4.0));
        n.try_start(t(0.0));
        assert!(!n.should_preempt(), "empty queue never preempts");
        // A tighter job arrives at t=1.
        n.enqueue(t(1.0), job(3.0, 1.0));
        assert!(n.should_preempt());
        let preempted = n.preempt(t(1.0));
        assert_eq!(preempted.deadline, 9.0);
        assert!(
            (preempted.service - 3.0).abs() < 1e-12,
            "1 of 4 units served"
        );
        assert_eq!(n.preemptions(), 1);
        assert!(!n.is_busy());
        // Re-enqueue and continue: tighter job runs first.
        n.enqueue(t(1.0), preempted);
        assert_eq!(n.try_start(t(1.0)).unwrap().deadline, 3.0);
    }

    #[test]
    fn preempt_requeue_equals_preempt_plus_enqueue() {
        let drive = |requeue_in_place: bool| {
            let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
            n.enqueue(t(0.0), job(9.0, 4.0));
            n.try_start(t(0.0));
            n.enqueue(t(1.0), job(3.0, 1.0));
            if requeue_in_place {
                n.preempt_requeue(t(1.0));
            } else {
                let j = n.preempt(t(1.0));
                n.enqueue(t(1.0), j);
            }
            // The tighter job starts; the preempted one follows with its
            // remaining 3 units of service.
            let first = n.try_start(t(1.0)).unwrap();
            n.finish_service(t(2.0));
            let second = n.try_start(t(2.0)).unwrap();
            (
                first.deadline,
                second.deadline,
                second.service,
                n.preemptions(),
                n.utilization(t(2.0)).to_bits(),
                n.mean_queue_length(t(2.0)).to_bits(),
            )
        };
        assert_eq!(drive(true), drive(false));
        let got = drive(true);
        assert_eq!((got.0, got.1, got.2, got.3), (3.0, 9.0, 3.0, 1));
    }

    #[test]
    fn epochs_invalidate_preempted_completions() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(9.0, 4.0));
        n.try_start(t(0.0));
        let first_epoch = n.service_epoch();
        assert!(n.completion_is_current(first_epoch));

        n.enqueue(t(1.0), job(3.0, 1.0));
        let preempted = n.preempt(t(1.0));
        assert!(
            !n.completion_is_current(first_epoch),
            "idle server: the old completion is stale"
        );
        n.enqueue(t(1.0), preempted);
        n.try_start(t(1.0));
        let second_epoch = n.service_epoch();
        assert!(second_epoch > first_epoch, "every start bumps the epoch");
        assert!(
            !n.completion_is_current(first_epoch),
            "completion for the preempted start stays stale forever"
        );
        assert!(n.completion_is_current(second_epoch));
    }

    #[test]
    fn equal_deadlines_do_not_preempt() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(5.0, 2.0));
        n.try_start(t(0.0));
        n.enqueue(t(0.0), job(5.0, 2.0));
        assert!(!n.should_preempt(), "FIFO ties never preempt");
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn finish_on_idle_panics() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        n.finish_service(t(1.0));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        n.enqueue(t(0.0), job(9.0, 1.0));
        n.try_start(t(0.0));
        n.finish_service(t(1.0));
        n.reset_stats(t(1.0));
        assert_eq!(n.served(), 0);
        assert_eq!(n.utilization(t(2.0)), 0.0);
    }

    #[test]
    fn fail_loses_everything_and_recycles_slots() {
        let mut n = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        n.enqueue(t(0.0), job(9.0, 2.0));
        n.enqueue(t(0.0), job(3.0, 1.0));
        n.enqueue(t(0.0), job(5.0, 1.0));
        n.try_start(t(0.0)); // serves the dl-3 job
        let epoch = n.service_epoch();
        assert!(!n.is_down());

        let mut lost = Vec::new();
        n.fail(t(1.0), &mut lost);
        assert!(n.is_down());
        assert!(!n.is_busy());
        assert_eq!(n.queue_len(), 0);
        // In-service job first, then the queue in service order.
        assert_eq!(lost.len(), 3);
        assert_eq!(lost[0].deadline, 3.0);
        assert_eq!(lost[1].deadline, 5.0);
        assert_eq!(lost[2].deadline, 9.0);
        assert!(
            !n.completion_is_current(epoch),
            "the orphaned completion is stale"
        );

        n.recover(t(4.0));
        assert!(!n.is_down());
        // Rejoining reuses the freed slab slots verbatim.
        n.enqueue(t(4.0), job(7.0, 1.0));
        n.enqueue(t(4.0), job(8.0, 1.0));
        n.enqueue(t(4.0), job(9.0, 1.0));
        assert_eq!(n.slab_capacity(), 3);
        assert_eq!(n.try_start(t(4.0)).unwrap().deadline, 7.0);
    }

    #[test]
    fn fail_on_an_idle_empty_node_loses_nothing() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        let mut lost = Vec::new();
        n.fail(t(1.0), &mut lost);
        assert!(lost.is_empty());
        n.recover(t(2.0));
        assert!(!n.is_down());
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_panics() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        let mut lost = Vec::new();
        n.fail(t(1.0), &mut lost);
        n.fail(t(2.0), &mut lost);
    }

    #[test]
    #[should_panic(expected = "node that is up")]
    fn recover_on_an_up_node_panics() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        n.recover(t(1.0));
    }

    #[test]
    fn queue_length_time_average() {
        let mut n = Node::new(NodeId::new(0), Policy::Fcfs);
        n.enqueue(t(0.0), job(9.0, 1.0));
        n.enqueue(t(0.0), job(9.0, 1.0));
        // 2 queued on [0,2), then one starts (1 queued) on [2,4).
        n.try_start(t(2.0));
        assert!((n.mean_queue_length(t(4.0)) - 1.5).abs() < 1e-12);
    }
}
