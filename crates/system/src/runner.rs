//! Single-run and replicated-run harnesses.

use serde::{Deserialize, Serialize};

use sda_sim::rng::RngFactory;
use sda_sim::stats::Replications;
use sda_sim::{Engine, SimTime};
use sda_workload::ConfigError;

use crate::config::SystemConfig;
use crate::metrics::Metrics;
use crate::model::{Event, SystemModel};

/// Run-length parameters for one simulation run.
///
/// The paper uses runs of 10⁶ time units after warm-up with at least 10⁵
/// tasks each; the default here is a faster setting suitable for tests
/// and quick sweeps. Scale `duration` up (and add replications) for
/// paper-grade confidence intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Warm-up transient discarded before statistics collection.
    pub warmup: f64,
    /// Measured duration after warm-up.
    pub duration: f64,
    /// Master seed; every RNG stream derives from it.
    pub seed: u64,
    /// Seed for the deterministic same-timestamp order permutation
    /// (see [`sda_sim::Context::set_order_fuzz`]); `0` (the default)
    /// keeps exact FIFO order. Any non-zero seed is an equally valid
    /// tie-break, so metrics that survive a set of fuzz seeds do not
    /// lean on accidental event ordering.
    #[serde(default)]
    pub order_fuzz: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 1_000.0,
            duration: 50_000.0,
            seed: 0x5DA_5EED,
            order_fuzz: 0,
        }
    }
}

impl RunConfig {
    /// The paper's run length: 10⁶ time units per run (plus a generous
    /// warm-up).
    pub fn paper_scale(seed: u64) -> RunConfig {
        RunConfig {
            warmup: 10_000.0,
            duration: 1_000_000.0,
            seed,
            order_fuzz: 0,
        }
    }

    /// A quick setting for CI and smoke tests.
    pub fn quick(seed: u64) -> RunConfig {
        RunConfig {
            warmup: 500.0,
            duration: 10_000.0,
            seed,
            order_fuzz: 0,
        }
    }
}

/// Why a run harness failed.
///
/// The serial [`run_once`] only ever fails on configuration
/// ([`ConfigError`], which it returns directly); the sharded harnesses
/// can additionally fail at runtime when a cross-shard mailbox
/// overflows, so they return this richer error.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Invalid workload/system configuration.
    Config(ConfigError),
    /// A shard worker overran a fixed-capacity cross-shard mailbox —
    /// the run is aborted rather than silently dropping events. Raise
    /// the capacity (or investigate the surge the diagnostics point at).
    MailboxOverflow {
        /// The shard whose mailbox overflowed.
        shard: usize,
        /// Bound of the synchronization window being processed when the
        /// overflow occurred.
        window: f64,
        /// The mailbox capacity that was exceeded.
        capacity: usize,
        /// Which mailbox: `"record"` (shard → manager completions) or
        /// `"delivery"` (manager → shard hand-offs).
        kind: &'static str,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "{e}"),
            RunError::MailboxOverflow {
                shard,
                window,
                capacity,
                kind,
            } => write!(
                f,
                "shard {shard}: {kind} mailbox overflow (capacity {capacity}) \
                 in synchronization window starting at t={window}"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            RunError::MailboxOverflow { .. } => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Task-level metrics (post-warm-up).
    pub metrics: Metrics,
    /// Post-warm-up time-average utilization per node.
    pub node_utilization: Vec<f64>,
    /// Post-warm-up time-average ready-queue length per node.
    pub node_queue_length: Vec<f64>,
    /// Clock value at the end of the run.
    pub end_time: f64,
    /// Events handled.
    pub events: u64,
}

impl RunResult {
    /// Mean utilization across nodes.
    pub fn mean_utilization(&self) -> f64 {
        if self.node_utilization.is_empty() {
            0.0
        } else {
            self.node_utilization.iter().sum::<f64>() / self.node_utilization.len() as f64
        }
    }

    /// Spread of the per-node utilizations (max − min) — 0 for a
    /// perfectly balanced system; grows with `node_speeds` skew and
    /// `local_weights` imbalance.
    pub fn utilization_spread(&self) -> f64 {
        let max = self
            .node_utilization
            .iter()
            .copied()
            .fold(f64::NAN, f64::max);
        let min = self
            .node_utilization
            .iter()
            .copied()
            .fold(f64::NAN, f64::min);
        if max.is_nan() || min.is_nan() {
            0.0
        } else {
            max - min
        }
    }
}

/// Runs the model once.
///
/// # Errors
///
/// Returns [`ConfigError`] for invalid workload parameters.
pub fn run_once(config: &SystemConfig, run: &RunConfig) -> Result<RunResult, ConfigError> {
    let rng = RngFactory::new(run.seed);
    let model = SystemModel::new(config.clone(), &rng)?;
    let mut engine = Engine::new(model);
    engine.context_mut().set_order_fuzz(run.order_fuzz);
    engine.context_mut().schedule_at(
        SimTime::ZERO,
        Event::Init {
            warmup_end: run.warmup,
        },
    );
    let horizon = SimTime::from(run.warmup + run.duration);
    let report = engine.run_until(horizon);
    let model = engine.model();
    Ok(RunResult {
        metrics: model.metrics().clone(),
        node_utilization: model
            .nodes()
            .iter()
            .map(|n| n.utilization(horizon))
            .collect(),
        node_queue_length: model
            .nodes()
            .iter()
            .map(|n| n.mean_queue_length(horizon))
            .collect(),
        end_time: report.end_time.as_f64(),
        events: report.events,
    })
}

/// Runs the model once on the sharded conservative-parallel engine
/// (the `shard` module): the node set is partitioned into `shards`
/// concurrent workers, with the network model's minimum hop delay as
/// the conservative lookahead.
///
/// Falls back to the serial [`run_once`] — the same model code, so the
/// result is identical — when parallelism cannot help:
///
/// * `shards <= 1`: nothing to run concurrently;
/// * `config.network.min_hop_delay() == 0` (e.g.
///   [`NetworkModel::Zero`](crate::NetworkModel::Zero), the
///   [`Exponential`](crate::NetworkModel::Exponential) model, or a
///   [`Matrix`](crate::NetworkModel::Matrix) with a zero entry): zero
///   lookahead means a zero-width window, so the conservative protocol
///   cannot advance any shard independently.
///
/// # Errors
///
/// Returns [`RunError::Config`] for invalid workload parameters, and
/// [`RunError::MailboxOverflow`] if a cross-shard mailbox overruns its
/// capacity at runtime.
pub fn run_once_sharded(
    config: &SystemConfig,
    run: &RunConfig,
    shards: usize,
) -> Result<RunResult, RunError> {
    if shards <= 1 || config.network.min_hop_delay() <= 0.0 {
        return Ok(run_once(config, run)?);
    }
    crate::shard::run_sharded(config, run, shards)
}

/// Summary statistics across independent replications (different seeds,
/// same configuration), as the paper's two-run-per-point methodology —
/// generalized to any replication count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// `MD_local` (%) per replication.
    pub local_miss_pct: Replications,
    /// `MD_global` (%) per replication.
    pub global_miss_pct: Replications,
    /// Subtask-level virtual-deadline miss (%) per replication.
    pub subtask_miss_pct: Replications,
    /// Mean local response time per replication.
    pub local_response: Replications,
    /// Mean global (end-to-end) response time per replication.
    pub global_response: Replications,
    /// Mean node utilization per replication.
    pub utilization: Replications,
    /// Mean hand-off transit time per replication (0 under
    /// [`NetworkModel::Zero`](crate::NetworkModel::Zero), where no
    /// transit is observed).
    pub transit: Replications,
    /// Work lost to node failures per replication: lost local tasks
    /// plus lost global-subtask copies (0 with failures disabled).
    pub lost: Replications,
    /// The individual runs, for deeper inspection.
    pub runs: Vec<RunResult>,
}

impl ReplicatedResult {
    /// Point estimate of `MD_local` in percent.
    pub fn md_local(&self) -> f64 {
        self.local_miss_pct.mean()
    }

    /// Point estimate of `MD_global` in percent.
    pub fn md_global(&self) -> f64 {
        self.global_miss_pct.mean()
    }
}

/// Runs `replications` independent runs, deriving per-replication seeds
/// from `base.seed`, in parallel across the machine's cores.
///
/// Equivalent to [`run_replications_with_threads`] with `threads = 0`
/// (one worker per available core, capped at the replication count).
/// Results are bit-identical regardless of worker count: each
/// replication's seed lineage depends only on its index, and results
/// are folded in index order.
///
/// # Errors
///
/// Returns [`ConfigError`] for invalid workload parameters.
pub fn run_replications(
    config: &SystemConfig,
    base: &RunConfig,
    replications: usize,
) -> Result<ReplicatedResult, ConfigError> {
    run_replications_with_threads(config, base, replications, 0)
}

/// The per-replication seed: a pure function of the base seed and the
/// replication index, so execution order and thread count cannot change
/// any run's random streams.
fn replication_seed(base_seed: u64, index: usize) -> u64 {
    RngFactory::new(base_seed)
        .subfactory(index as u64)
        .master_seed()
}

/// [`run_replications`] with an explicit worker count (`0` = all cores).
///
/// # Errors
///
/// Returns [`ConfigError`] for invalid workload parameters.
pub fn run_replications_with_threads(
    config: &SystemConfig,
    base: &RunConfig,
    replications: usize,
    threads: usize,
) -> Result<ReplicatedResult, ConfigError> {
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .clamp(1, replications.max(1));

    let mut runs: Vec<Option<Result<RunResult, ConfigError>>> = Vec::new();
    if workers <= 1 || replications <= 1 {
        for r in 0..replications {
            let run_cfg = RunConfig {
                seed: replication_seed(base.seed, r),
                ..*base
            };
            runs.push(Some(run_once(config, &run_cfg)));
        }
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let results: Mutex<Vec<Option<Result<RunResult, ConfigError>>>> =
            Mutex::new((0..replications).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = next.fetch_add(1, Ordering::Relaxed);
                    if r >= replications {
                        break;
                    }
                    let run_cfg = RunConfig {
                        seed: replication_seed(base.seed, r),
                        ..*base
                    };
                    let run = run_once(config, &run_cfg);
                    results.lock().expect("no poisoned lock")[r] = Some(run);
                });
            }
        });
        runs = results.into_inner().expect("no poisoned lock");
    }

    fold_runs(runs)
}

/// [`run_replications`] on the sharded engine: replications run
/// back-to-back, each parallelized internally across `shards` (see
/// [`run_once_sharded`] for the serial-fallback gate). Results are
/// bit-identical to the serial replication harness whenever each
/// individual run is.
///
/// # Errors
///
/// Returns [`ConfigError`] for invalid workload parameters.
pub fn run_replications_sharded(
    config: &SystemConfig,
    base: &RunConfig,
    replications: usize,
    shards: usize,
) -> Result<ReplicatedResult, RunError> {
    run_replications_sharded_with_capacity(config, base, replications, shards, None)
}

/// [`run_replications_sharded`] with an explicit cross-shard mailbox
/// capacity (`None` = the engine default). A deliberately small bound
/// turns a backlogged synchronization window into a structured
/// [`RunError::MailboxOverflow`] instead of unbounded buffering — the
/// sweep binaries expose this as `--mailbox-capacity`.
///
/// # Errors
///
/// Returns [`RunError::Config`] for invalid workload parameters, and
/// [`RunError::MailboxOverflow`] if any window exceeds the capacity.
pub fn run_replications_sharded_with_capacity(
    config: &SystemConfig,
    base: &RunConfig,
    replications: usize,
    shards: usize,
    mailbox_capacity: Option<usize>,
) -> Result<ReplicatedResult, RunError> {
    let mut runs: Vec<Option<Result<RunResult, RunError>>> = Vec::with_capacity(replications);
    for r in 0..replications {
        let run_cfg = RunConfig {
            seed: replication_seed(base.seed, r),
            ..*base
        };
        let result = match mailbox_capacity {
            Some(capacity) if shards > 1 && config.network.min_hop_delay() > 0.0 => {
                crate::shard::run_sharded_with_capacity(config, &run_cfg, shards, capacity)
            }
            _ => run_once_sharded(config, &run_cfg, shards),
        };
        runs.push(Some(result));
    }
    fold_runs(runs)
}

/// Folds per-replication results in replication-index order, so the
/// aggregate statistics are independent of completion order. Generic
/// over the error type: the serial harnesses fold [`ConfigError`]s, the
/// sharded ones [`RunError`]s.
fn fold_runs<E>(runs: Vec<Option<Result<RunResult, E>>>) -> Result<ReplicatedResult, E> {
    let mut result = ReplicatedResult {
        local_miss_pct: Replications::new(),
        global_miss_pct: Replications::new(),
        subtask_miss_pct: Replications::new(),
        local_response: Replications::new(),
        global_response: Replications::new(),
        utilization: Replications::new(),
        transit: Replications::new(),
        lost: Replications::new(),
        runs: Vec::with_capacity(runs.len()),
    };
    for run in runs {
        let run = run.expect("every replication computed")?;
        result.local_miss_pct.add(run.metrics.local.miss_percent());
        result
            .global_miss_pct
            .add(run.metrics.global.miss_percent());
        result
            .subtask_miss_pct
            .add(run.metrics.subtask_virtual_miss.percent());
        result
            .local_response
            .add(run.metrics.local.response().mean());
        result
            .global_response
            .add(run.metrics.global.response().mean());
        result.utilization.add(run.mean_utilization());
        result.transit.add(run.metrics.transit.mean());
        result
            .lost
            .add((run.metrics.lost_locals + run.metrics.lost_subtasks) as f64);
        result.runs.push(run);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::SdaStrategy;

    #[test]
    fn run_once_reports_sane_results() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let run = run_once(&cfg, &RunConfig::quick(1)).unwrap();
        assert!(run.metrics.local.completed() > 1_000);
        assert!(run.metrics.global.completed() > 100);
        assert_eq!(run.node_utilization.len(), 6);
        assert!(run.mean_utilization() > 0.3 && run.mean_utilization() < 0.7);
        assert!(run.events > 0);
        assert!((run.end_time - 10_500.0).abs() < 1e-9);
    }

    #[test]
    fn replications_differ_but_are_deterministic() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        let base = RunConfig::quick(7);
        let a = run_replications(&cfg, &base, 3).unwrap();
        let b = run_replications(&cfg, &base, 3).unwrap();
        assert_eq!(a.local_miss_pct.values(), b.local_miss_pct.values());
        // Replications must actually differ from each other.
        let vals = a.global_miss_pct.values();
        assert!(vals.windows(2).any(|w| w[0] != w[1]), "{vals:?}");
        assert!(a.global_miss_pct.confidence_interval().is_some());
    }

    #[test]
    fn replications_are_deterministic_across_thread_counts() {
        // Mirrors the experiment harness's
        // `sweep_is_deterministic_across_thread_counts`: worker count
        // must not change any statistic bit.
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let base = RunConfig {
            warmup: 200.0,
            duration: 2_500.0,
            seed: 11,
            order_fuzz: 0,
        };
        let serial = run_replications_with_threads(&cfg, &base, 4, 1).unwrap();
        let par2 = run_replications_with_threads(&cfg, &base, 4, 2).unwrap();
        let par4 = run_replications_with_threads(&cfg, &base, 4, 4).unwrap();
        assert_eq!(serial, par2, "1 vs 2 workers");
        assert_eq!(serial, par4, "1 vs 4 workers");
        // And the default (all cores) matches too.
        let auto = run_replications(&cfg, &base, 4).unwrap();
        assert_eq!(serial, auto, "1 worker vs default");
    }

    #[test]
    fn md_accessors_match_means() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let res = run_replications(&cfg, &RunConfig::quick(3), 2).unwrap();
        assert_eq!(res.md_local(), res.local_miss_pct.mean());
        assert_eq!(res.md_global(), res.global_miss_pct.mean());
        assert_eq!(res.runs.len(), 2);
    }

    #[test]
    fn utilization_spread_tracks_speed_skew() {
        let base = RunConfig::quick(9);
        let balanced = run_once(&SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()), &base).unwrap();
        let mut skewed_cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        skewed_cfg.workload.node_speeds = Some(vec![0.6, 0.8, 1.0, 1.0, 1.2, 1.4]);
        let skewed = run_once(&skewed_cfg, &base).unwrap();
        assert!(
            skewed.utilization_spread() > balanced.utilization_spread() + 0.1,
            "skewed spread {} must exceed balanced {}",
            skewed.utilization_spread(),
            balanced.utilization_spread()
        );
        // Degenerate inputs stay well-defined.
        let empty = RunResult {
            metrics: crate::Metrics::new(),
            node_utilization: vec![],
            node_queue_length: vec![],
            end_time: 0.0,
            events: 0,
        };
        assert_eq!(empty.utilization_spread(), 0.0);
        assert_eq!(empty.mean_utilization(), 0.0);
    }

    #[test]
    fn default_run_config_is_reasonable() {
        let d = RunConfig::default();
        assert!(d.warmup > 0.0 && d.duration > d.warmup);
        let p = RunConfig::paper_scale(1);
        assert_eq!(p.duration, 1_000_000.0);
    }
}
