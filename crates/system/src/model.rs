//! The executable system model: events, arrivals, dispatching,
//! precedence enforcement.
//!
//! The steady-state loop is allocation-free: global tasks live in a
//! generation-stamped slab of pooled runs — [`FlatRun`]s for the paper's
//! stage-structured shapes, [`DagRun`]s for
//! [`GlobalShape::Dag`] workloads — with no per-arrival
//! `TaskSpec`/`TaskRun` allocation and no `HashMap` lookups (a [`TaskId`]
//! carries its slot index, so submit/complete/abort are O(1) array
//! indexing); submissions and admission discards go through reusable
//! buffers, and jobs stay resident in each node's queue slab across
//! dispatch and preemption. Precedence handling is uniform across both
//! runtimes: every completion is routed back to the owning run, which
//! answers with the next submittable wave — a serial hand-off, a fan-out,
//! or (for DAGs) an arbitrary fan-in that releases only when its last
//! predecessor finishes — and every hand-off crosses the
//! [`NetworkModel`](crate::NetworkModel) like any other.

use sda_core::{DagRun, DeadlineAssigner, FlatRun, NodeId, Submission, SubtaskRef, TaskId};
use sda_sched::{Job, JobOrigin};
use sda_sim::dist::Exponential;
use sda_sim::rng::{RngFactory, Stream};
use sda_sim::{Context, SimTime, Simulation};
use sda_workload::{ConfigError, GlobalShape, TaskFactory};

use crate::config::{NetworkModel, OverloadPolicy, SystemConfig};
use crate::failure::FailureTimeline;
use crate::metrics::Metrics;
use crate::node::Node;

/// How many times a global task's lost subtask is re-dispatched before
/// the process manager gives the task up as
/// [`abandoned`](crate::Metrics::abandoned_globals). Counted per task,
/// not per subtask, so a task repeatedly caught on crashing nodes
/// terminates.
pub(crate) const MAX_REDISPATCH: u32 = 3;

/// Simulation events of the system model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Schedules the initial arrivals and the end-of-warm-up marker; must
    /// fire exactly once at the start of the run.
    Init {
        /// When the warm-up transient ends and statistics restart.
        warmup_end: f64,
    },
    /// A local task arrives at `node` (per-node Poisson stream).
    LocalArrival {
        /// The generating (and executing) node.
        node: NodeId,
    },
    /// A global task arrives (system-wide Poisson stream) and is handed
    /// to the process manager.
    GlobalArrival,
    /// The job in service at `node` completes — *if* `epoch` still names
    /// the current service start. Preemption never cancels completion
    /// events; it leaves them in the future-event list to be recognized
    /// as stale here (see [`Node::service_epoch`]).
    ServiceComplete {
        /// The node whose server finished.
        node: NodeId,
        /// The node's service epoch when this completion was scheduled.
        epoch: u64,
    },
    /// A global subtask hand-off reaches its destination node after
    /// transit through the network. Only scheduled under a non-zero
    /// [`NetworkModel`](crate::NetworkModel); with free communication
    /// hand-offs are delivered inline and this event never occurs.
    SubtaskArrive {
        /// The owning global task.
        task: TaskId,
        /// The submission in flight (destination node, virtual deadline,
        /// service demand).
        sub: Submission,
    },
    /// The result of a finished global task reaches the process manager
    /// after transit; the task's completion time (for metrics and the
    /// end-to-end deadline check) is this arrival, not the last
    /// subtask's service completion. Only scheduled under a non-zero
    /// network model.
    ResultReturn {
        /// The finished task.
        task: TaskId,
    },
    /// Node `node` crashes: its queued and in-service jobs are lost, and
    /// hand-offs in flight toward it are lost on arrival. Scheduled from
    /// the [`FailureModel`](crate::FailureModel) timeline; carries the
    /// repair time so the matching [`Event::NodeUp`] is scheduled without
    /// re-querying the timeline.
    NodeDown {
        /// The crashing node.
        node: NodeId,
        /// When the node comes back up.
        up_at: f64,
    },
    /// Node `node` finishes repair and rejoins with empty queues.
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
    /// Warm-up ends: all statistics restart.
    EndWarmup,
}

/// One record of a traced global task's lifecycle. Enable tracing with
/// [`SystemModel::set_trace_tasks`]; traces show exactly which virtual
/// deadlines the strategy assigned and when each precedence step fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A traced global task arrived.
    Arrival {
        /// The task.
        task: TaskId,
        /// Arrival time.
        time: f64,
        /// End-to-end deadline.
        deadline: f64,
    },
    /// A subtask of a traced task was submitted to its node.
    Submitted {
        /// The owning task.
        task: TaskId,
        /// Submission time.
        time: f64,
        /// Destination node.
        node: NodeId,
        /// The assigned virtual deadline.
        deadline: f64,
    },
    /// A subtask of a traced task completed service.
    SubtaskDone {
        /// The owning task.
        task: TaskId,
        /// Completion time.
        time: f64,
        /// The node that served it.
        node: NodeId,
        /// Whether the subtask finished after its virtual deadline.
        virtual_miss: bool,
    },
    /// A traced task finished.
    Finished {
        /// The task.
        task: TaskId,
        /// Completion time.
        time: f64,
        /// Whether the end-to-end deadline was missed.
        missed: bool,
    },
    /// A traced task was killed by the firm-deadline policy.
    Aborted {
        /// The task.
        task: TaskId,
        /// Abort time.
        time: f64,
    },
}

/// The pooled per-task runtime: the stage-structured hot path
/// ([`FlatRun`]) for the paper's tree shapes, or the precedence-DAG
/// runtime ([`DagRun`]) for [`GlobalShape::Dag`] workloads. A model only
/// ever uses one variant (the shape is fixed per configuration), so a
/// recycled slot's variant — and its grown capacity — is stable across
/// reuse.
// The size difference between the variants is fine: slots live in a
// long-lived slab sized by the in-flight high-water mark (a model uses
// exactly one variant), and boxing the larger variant would put a heap
// indirection on every submit/complete/abort of the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum PooledRun {
    /// Stage-structured task (serial chains, fans, pipelines of fans).
    Flat(FlatRun),
    /// DAG-structured task (arbitrary fan-out/fan-in).
    Dag(DagRun),
}

impl PooledRun {
    fn set_expected_comm(&mut self, per_hop: f64) {
        match self {
            PooledRun::Flat(run) => run.set_expected_comm(per_hop),
            PooledRun::Dag(run) => run.set_expected_comm(per_hop),
        }
    }

    fn set_slack_scale(&mut self, scale: f64) {
        match self {
            PooledRun::Flat(run) => run.set_slack_scale(scale),
            PooledRun::Dag(run) => run.set_slack_scale(scale),
        }
    }

    fn arrival(&self) -> f64 {
        match self {
            PooledRun::Flat(run) => run.arrival(),
            PooledRun::Dag(run) => run.arrival(),
        }
    }

    fn global_deadline(&self) -> f64 {
        match self {
            PooledRun::Flat(run) => run.global_deadline(),
            PooledRun::Dag(run) => run.global_deadline(),
        }
    }

    fn start<A: DeadlineAssigner + ?Sized>(
        &mut self,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        match self {
            PooledRun::Flat(run) => run.start(strategy, now, out),
            PooledRun::Dag(run) => run.start(strategy, now, out),
        }
    }

    fn complete<A: DeadlineAssigner + ?Sized>(
        &mut self,
        subtask: SubtaskRef,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) -> bool {
        match self {
            PooledRun::Flat(run) => run.complete(subtask, strategy, now, out),
            PooledRun::Dag(run) => run.complete(subtask, strategy, now, out),
        }
    }

    fn reissue<A: DeadlineAssigner + ?Sized>(
        &mut self,
        subtask: SubtaskRef,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        match self {
            PooledRun::Flat(run) => run.reissue(subtask, strategy, now, out),
            PooledRun::Dag(run) => run.reissue(subtask, strategy, now, out),
        }
    }
}

/// One slot of the process manager's task slab.
///
/// A vacated slot keeps its [`PooledRun`] (and the run keeps its vector
/// capacity), so recycling a slot for the next arriving task allocates
/// nothing. The generation stamp makes stale [`TaskId`]s miss cleanly:
/// a task id packs `(generation, slot)`, and every release bumps the
/// slot's generation.
#[derive(Debug)]
struct TaskSlot {
    /// Bumped on every release; a [`TaskId`] carrying an older
    /// generation no longer resolves to this slot.
    gen: u32,
    /// Whether the slot currently holds an in-flight task.
    live: bool,
    /// The pooled runtime state (retains capacity across reuse).
    run: PooledRun,
    /// Set under the firm-deadline policy when any subtask is discarded;
    /// the task is finished as missed, submits nothing further, and its
    /// in-flight hand-offs are dropped on arrival.
    aborted: bool,
    /// Set when the re-dispatch path gives the task up (retry budget
    /// spent or the whole fleet down). Like `aborted`, the task is a
    /// terminal miss and submits nothing further — but hand-offs already
    /// in flight still *execute* (the abandon decision cannot outrun
    /// work already on the wire); their completions are swallowed here.
    /// This keeps the serial and sharded engines bit-identical: a shard
    /// may already hold the delivery when the manager abandons the task.
    abandoned: bool,
    /// Jobs of this task currently queued or in service anywhere.
    outstanding: u32,
    /// How many of this task's subtasks were re-dispatched after a loss
    /// (crashed node or hand-off to a down node); capped at
    /// [`MAX_REDISPATCH`], beyond which the task is abandoned.
    retries: u32,
}

/// Packs a slab position into a [`TaskId`]: generation above, slot below.
#[inline]
fn global_task_id(gen: u32, slot: u32) -> TaskId {
    TaskId::new((u64::from(gen) << 32) | u64::from(slot))
}

/// Where the model's generated events go.
///
/// The serial engine's [`Context`] is one implementation (events land in
/// the run's single future-event list); the sharded engine's manager
/// sink is the other (hand-offs are routed to the cross-shard delivery
/// calendar, manager-endpoint events to the manager's own queue). The
/// process-manager logic — arrivals, precedence bookkeeping, deadline
/// assignment, metrics — is written once against this trait, so the
/// serial and sharded paths execute the *same* monomorphized model code
/// and stay bit-for-bit comparable.
pub(crate) trait EventSink {
    /// The time of the event currently being handled.
    fn now(&self) -> f64;
    /// Schedules `event` to fire `delay ≥ 0` time units after
    /// [`EventSink::now`].
    fn schedule(&mut self, delay: f64, event: Event);
}

impl EventSink for Context<Event> {
    #[inline]
    fn now(&self) -> f64 {
        Context::now(self).as_f64()
    }

    #[inline]
    fn schedule(&mut self, delay: f64, event: Event) {
        self.schedule_fast_in(delay, event);
    }
}

/// The distributed system of paper §3.2 as a discrete-event model:
/// `k` nodes with independent schedulers, per-node local arrivals, a
/// global arrival stream feeding the process manager, and metrics.
///
/// Drive it with an [`Engine`](sda_sim::Engine); see
/// [`run_once`](crate::run_once) for the canonical harness.
#[derive(Debug)]
pub struct SystemModel {
    config: SystemConfig,
    factory: TaskFactory,
    nodes: Vec<Node>,
    /// Generation-stamped slab of in-flight global tasks; [`TaskId`]s
    /// index it directly.
    tasks: Vec<TaskSlot>,
    /// Whether the configured shape is [`GlobalShape::Dag`] — selects
    /// which [`PooledRun`] variant fresh slots are built with and which
    /// factory fill path arrivals take.
    dag_tasks: bool,
    /// Vacant slab slots available for reuse.
    task_free: Vec<u32>,
    /// Number of live slots in `tasks`.
    in_flight: usize,
    /// Id counter for local tasks (globals get slab-derived ids).
    next_local_id: u64,
    /// Reusable submission buffer (arrival waves and completion
    /// follow-ups; uses never nest).
    sub_buf: Vec<Submission>,
    /// Transit delay of each buffered submission, parallel to `sub_buf`
    /// (all zero under free communication; a positive entry means the
    /// hand-off is in flight as a [`Event::SubtaskArrive`]).
    delay_buf: Vec<f64>,
    /// Reusable buffer for admission-policy discards.
    discard_buf: Vec<Job>,
    /// Reusable buffer for jobs lost to a node crash.
    lost_buf: Vec<Job>,
    /// Hand-offs that reached a down node during
    /// [`SystemModel::submit_buffered`]; their re-dispatch is deferred to
    /// [`SystemModel::flush_lost_handoffs`] because `sub_buf` (which
    /// re-dispatching reuses) is still being iterated at detection time.
    lost_handoffs: Vec<(TaskId, SubtaskRef)>,
    /// The per-node failure/repair timeline. Serial runs consume it via
    /// `next_outage` to schedule [`Event::NodeDown`]/[`Event::NodeUp`];
    /// the sharded manager (whose workers own the outage scheduling)
    /// queries it only via `is_down` for re-dispatch targeting. The two
    /// access patterns are never mixed on one copy.
    timeline: FailureTimeline,
    /// RNG stream of the network-delay model (only `Exponential` draws
    /// from it, so deterministic models perturb nothing).
    net_rng: Stream,
    /// The hop-delay distribution, pre-built once for the
    /// `NetworkModel::Exponential` case so the per-hand-off path pays no
    /// re-validation (`None` for the deterministic models).
    net_exp: Option<Exponential>,
    /// Expected per-hop transit time, pre-computed from the network
    /// model; stamped onto every task's [`FlatRun`] so deadline
    /// assignment reserves slack for communication.
    hop_comm: f64,
    metrics: Metrics,
    /// How many more global tasks may start tracing.
    trace_budget: u64,
    /// Ids of global tasks currently being traced.
    trace_ids: std::collections::BTreeSet<u64>,
    trace: Vec<TraceEvent>,
}

impl SystemModel {
    /// Builds the model: validates the workload and derives all RNG
    /// streams from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid workload parameters.
    pub fn new(config: SystemConfig, rng: &RngFactory) -> Result<SystemModel, ConfigError> {
        config.network.validate(config.workload.nodes)?;
        config.failure.validate(config.workload.nodes)?;
        let timeline = FailureTimeline::new(&config.failure, config.workload.nodes, rng);
        let factory = TaskFactory::new(config.workload.clone(), rng)?;
        let nodes = (0..config.workload.nodes)
            .map(|i| Node::new(NodeId::new(i as u32), config.policy))
            .collect();
        let net_rng = rng.stream("system.network");
        let hop_comm = config.network.expected_hop_delay();
        let net_exp = match config.network {
            NetworkModel::Exponential { mean } => {
                Some(Exponential::with_mean(mean).expect("validated above"))
            }
            _ => None,
        };
        let dag_tasks = matches!(config.workload.shape, GlobalShape::Dag { .. });
        Ok(SystemModel {
            config,
            factory,
            nodes,
            tasks: Vec::new(),
            dag_tasks,
            task_free: Vec::new(),
            in_flight: 0,
            next_local_id: 0,
            sub_buf: Vec::new(),
            delay_buf: Vec::new(),
            discard_buf: Vec::new(),
            lost_buf: Vec::new(),
            lost_handoffs: Vec::new(),
            timeline,
            net_rng,
            net_exp,
            hop_comm,
            metrics: Metrics::new(),
            trace_budget: 0,
            trace_ids: std::collections::BTreeSet::new(),
            trace: Vec::new(),
        })
    }

    /// Enables lifecycle tracing for the next `n` global tasks to
    /// arrive (call before running). Tracing is off by default and costs
    /// nothing when off.
    pub fn set_trace_tasks(&mut self, n: u64) {
        self.trace_budget = n;
    }

    /// The recorded trace events, in occurrence order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    #[inline]
    fn traced(&self, task: TaskId) -> bool {
        !self.trace_ids.is_empty() && self.trace_ids.contains(&task.raw())
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Collected metrics (so far).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The nodes, for utilization/queue-length inspection.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of global tasks currently in flight.
    pub fn tasks_in_flight(&self) -> usize {
        self.in_flight
    }

    pub(crate) fn fresh_local_id(&mut self) -> TaskId {
        let id = TaskId::new(self.next_local_id);
        self.next_local_id += 1;
        id
    }

    /// Moves the node set out of the model — the sharded engine hands
    /// ownership of each partition to its shard worker while the manager
    /// keeps the (now node-less) model for arrivals, precedence
    /// bookkeeping and metrics. Under a non-zero network every hand-off
    /// is delayed, so no manager-side path ever touches `self.nodes`
    /// while they are lent out.
    pub(crate) fn take_nodes(&mut self) -> Vec<Node> {
        std::mem::take(&mut self.nodes)
    }

    /// Returns the nodes lent out by [`SystemModel::take_nodes`] (for
    /// end-of-run utilization collection).
    pub(crate) fn put_nodes(&mut self, nodes: Vec<Node>) {
        debug_assert!(self.nodes.is_empty(), "put_nodes over a live node set");
        self.nodes = nodes;
    }

    /// The workload generator — the sharded engine's sequencer drives
    /// local-arrival pre-generation through it directly.
    pub(crate) fn factory_mut(&mut self) -> &mut TaskFactory {
        &mut self.factory
    }

    /// Manager-side warm-up reset (the sharded counterpart of the
    /// [`Event::EndWarmup`] handler's metrics half; node-stat resets
    /// happen shard-side).
    pub(crate) fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Claims a (possibly recycled) task slot; its pooled run keeps
    /// whatever capacity earlier occupants grew.
    fn acquire_task_slot(&mut self) -> u32 {
        let slot = match self.task_free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.tasks.len())
                    .expect("more than u32::MAX in-flight global tasks");
                self.tasks.push(TaskSlot {
                    gen: 0,
                    live: false,
                    run: if self.dag_tasks {
                        PooledRun::Dag(DagRun::new())
                    } else {
                        PooledRun::Flat(FlatRun::new())
                    },
                    aborted: false,
                    abandoned: false,
                    outstanding: 0,
                    retries: 0,
                });
                slot
            }
        };
        let entry = &mut self.tasks[slot as usize];
        debug_assert!(!entry.live, "free list pointed at a live slot");
        entry.live = true;
        entry.aborted = false;
        entry.abandoned = false;
        entry.outstanding = 0;
        entry.retries = 0;
        self.in_flight += 1;
        slot
    }

    /// Vacates a slot: bumps its generation (invalidating outstanding
    /// ids) and returns it to the free list. The pooled run stays put for
    /// the next occupant.
    fn release_task_slot(&mut self, slot: usize) {
        let entry = &mut self.tasks[slot];
        debug_assert!(entry.live, "double release of a task slot");
        entry.live = false;
        entry.gen = entry.gen.wrapping_add(1);
        self.task_free.push(slot as u32);
        self.in_flight -= 1;
    }

    /// Resolves a global [`TaskId`] to its live slab slot, `None` if the
    /// task has already finished or aborted (stale id).
    #[inline]
    pub(crate) fn lookup_task(&self, id: TaskId) -> Option<usize> {
        let raw = id.raw();
        let slot = (raw & u64::from(u32::MAX)) as usize;
        let gen = (raw >> 32) as u32;
        match self.tasks.get(slot) {
            Some(entry) if entry.live && entry.gen == gen => Some(slot),
            _ => None,
        }
    }

    fn schedule_next_local(&mut self, ctx: &mut Context<Event>, node: NodeId) {
        if let Some(gap) = self.factory.next_local_interarrival(node) {
            ctx.schedule_fast_in(gap, Event::LocalArrival { node });
        }
    }

    pub(crate) fn schedule_next_global<S: EventSink>(&mut self, sink: &mut S) {
        if let Some(gap) = self.factory.next_global_interarrival() {
            sink.schedule(gap, Event::GlobalArrival);
        }
    }

    fn handle_local_arrival(&mut self, ctx: &mut Context<Event>, node: NodeId) {
        let now = ctx.now().as_f64();
        let task = self.factory.make_local(node, now);
        if self.nodes[node.index()].is_down() {
            // The host is down; its users' submissions go nowhere. The
            // arrival stream itself keeps running (the generator draw
            // above keeps the streams aligned with a failure-free run).
            self.metrics.local.record_aborted();
            self.metrics.lost_locals += 1;
            self.metrics.feedback.observe(true);
            self.schedule_next_local(ctx, node);
            return;
        }
        let id = self.fresh_local_id();
        let job = Job::local(id, now, task.attrs.ex, task.attrs.deadline);
        self.nodes[node.index()].enqueue(ctx.now(), job);
        self.schedule_next_local(ctx, node);
        self.dispatch(ctx, node);
    }

    /// The slack-share multiplier an `ADAPT(base)` strategy applies at
    /// the next stage activation: the live miss-pressure estimate mapped
    /// through the wrapper's gain/floor. Exactly `1.0` (the bit-identical
    /// neutral element) for open-loop strategies.
    #[inline]
    fn adapt_scale(&self) -> f64 {
        match self.config.strategy.adapt {
            Some(adapt) => adapt.scale(self.metrics.feedback.pressure()),
            None => 1.0,
        }
    }

    pub(crate) fn handle_global_arrival<S: EventSink>(&mut self, sink: &mut S) {
        let now = sink.now();
        let scale = self.adapt_scale();
        let slot = self.acquire_task_slot();
        match &mut self.tasks[slot as usize].run {
            PooledRun::Flat(run) => self.factory.make_global_flat(now, run),
            PooledRun::Dag(run) => self.factory.make_global_dag(now, run),
        }
        self.tasks[slot as usize]
            .run
            .set_expected_comm(self.hop_comm);
        self.tasks[slot as usize].run.set_slack_scale(scale);
        let id = global_task_id(self.tasks[slot as usize].gen, slot);
        if self.trace_budget > 0 {
            self.trace_budget -= 1;
            self.trace_ids.insert(id.raw());
            self.trace.push(TraceEvent::Arrival {
                task: id,
                time: now,
                deadline: self.tasks[slot as usize].run.global_deadline(),
            });
        }
        self.sub_buf.clear();
        let entry = &mut self.tasks[slot as usize];
        entry
            .run
            .start(&self.config.strategy, now, &mut self.sub_buf);
        entry.outstanding = self.sub_buf.len() as u32;
        // The initial fan-out travels process manager → node.
        self.submit_buffered(sink, id, None);
        self.schedule_next_global(sink);
        self.dispatch_buffered(sink);
        self.flush_lost_handoffs(sink);
    }

    /// Delivers one hand-off: enqueues the submission as a job of `task`
    /// at its node (used inline under free communication, and from
    /// [`Event::SubtaskArrive`] when the hand-off crossed the network).
    fn deliver(&mut self, now: SimTime, task: TaskId, sub: Submission) {
        let t = now.as_f64();
        let job = Job::global(
            task,
            sub.subtask,
            t,
            sub.ex,
            sub.pex,
            sub.deadline,
            sub.priority,
        );
        self.nodes[sub.node.index()].enqueue(now, job);
        if self.traced(task) {
            self.trace.push(TraceEvent::Submitted {
                task,
                time: t,
                node: sub.node,
                deadline: sub.deadline,
            });
        }
    }

    /// Samples one hand-off's transit time via the pre-built
    /// distribution when the model is `Exponential` (the only variant
    /// that draws randomness), falling back to
    /// [`NetworkModel::sample_delay`] for the deterministic variants.
    #[inline]
    fn hop_delay(&mut self, from: Option<NodeId>, to: Option<NodeId>) -> f64 {
        match &self.net_exp {
            Some(exp) => exp.sample_with(&mut self.net_rng),
            None => self
                .config
                .network
                .sample_delay(from, to, &mut self.net_rng),
        }
    }

    /// Routes the submissions waiting in `sub_buf` as hand-offs of
    /// `task` departing from `from` (`None` = the process manager):
    /// zero-delay hand-offs are enqueued immediately, delayed ones are
    /// scheduled as [`Event::SubtaskArrive`]. Both buffers are left
    /// intact for [`SystemModel::dispatch_buffered`].
    fn submit_buffered<S: EventSink>(&mut self, sink: &mut S, task: TaskId, from: Option<NodeId>) {
        let record = !self.config.network.is_zero();
        self.delay_buf.clear();
        for i in 0..self.sub_buf.len() {
            let sub = self.sub_buf[i];
            let delay = self.hop_delay(from, Some(sub.node));
            if record {
                self.metrics.transit.add(delay);
            }
            if delay > 0.0 {
                self.delay_buf.push(delay);
                sink.schedule(delay, Event::SubtaskArrive { task, sub });
            } else if self.nodes[sub.node.index()].is_down() {
                // Zero-delay hand-off to a dead node: lost. Re-dispatch
                // is deferred (`sub_buf` is being iterated right now) and
                // the infinite pseudo-delay keeps `dispatch_buffered`
                // away from the down node.
                self.delay_buf.push(f64::INFINITY);
                self.lost_handoffs.push((task, sub.subtask));
            } else {
                self.delay_buf.push(0.0);
                self.deliver(SimTime::new(sink.now()), task, sub);
            }
        }
    }

    /// Dispatches each node that received a zero-delay hand-off in
    /// [`SystemModel::submit_buffered`], in submission order — the same
    /// order the collect-then-dispatch path used. Nodes whose hand-off
    /// is still in flight are dispatched when it arrives.
    fn dispatch_buffered<S: EventSink>(&mut self, sink: &mut S) {
        for i in 0..self.sub_buf.len() {
            if self.delay_buf[i] > 0.0 {
                continue;
            }
            let node = self.sub_buf[i].node;
            self.dispatch(sink, node);
        }
    }

    /// Re-dispatches the hand-offs that [`SystemModel::submit_buffered`]
    /// found addressed to a down node. Must run after
    /// [`SystemModel::dispatch_buffered`]: re-dispatching reuses
    /// `sub_buf`, which the submit/dispatch pair iterates.
    fn flush_lost_handoffs<S: EventSink>(&mut self, sink: &mut S) {
        while let Some((task, subtask)) = self.lost_handoffs.pop() {
            self.metrics.lost_subtasks += 1;
            self.redispatch(sink, task, subtask);
        }
    }

    /// Sharded-engine counterpart of the abort check in
    /// [`SystemModel::handle_subtask_arrive`]: called when a calendared
    /// hand-off of `task` is about to be forwarded to its shard. Returns
    /// `true` — and settles the outstanding-job accounting — when the
    /// task was aborted while the hand-off sat in the calendar, so the
    /// caller must drop it instead of delivering.
    pub(crate) fn handoff_aborted(&mut self, task: TaskId) -> bool {
        let Some(slot) = self.lookup_task(task) else {
            debug_assert!(false, "calendared hand-off for unknown task {task}");
            return true;
        };
        let entry = &mut self.tasks[slot];
        if !entry.aborted {
            return false;
        }
        entry.outstanding -= 1;
        if entry.outstanding == 0 {
            self.release_task_slot(slot);
        }
        true
    }

    /// Sharded-engine *detection* half of the down-destination check in
    /// [`SystemModel::handle_subtask_arrive`]: whether a hand-off
    /// delivered to `node` at time `t` will find it down. The manager's
    /// failure timeline is an oracle (every outage is a pure function of
    /// the seeded per-node streams), so the calendar drain can ask this
    /// at *forward* time and withhold the doomed hand-off from its
    /// worker. Worker-side detection cannot replace this: two
    /// same-instant losses on different shards would merge in
    /// `(time, node, seq)` order, which need not match the serial
    /// schedule order, and the re-dispatch retry budget makes that order
    /// observable.
    pub(crate) fn handoff_doomed(&mut self, node: NodeId, t: f64) -> bool {
        self.timeline.is_down(node.index(), t)
    }

    /// Sharded-engine *processing* half: loss accounting + re-dispatch
    /// for a hand-off [`SystemModel::handoff_doomed`] withheld. Runs when
    /// the window merge reaches the delivery's logical time, so every
    /// metric and feedback mutation interleaves with the window's other
    /// events exactly as in the serial schedule (a loss straddling the
    /// warmup boundary, say, must be reset away or kept identically in
    /// both engines). Returns `true` when the hand-off was lost
    /// (accounting settled; the replacement, if any, re-dispatched
    /// through `sink`).
    pub(crate) fn handoff_lost<S: EventSink>(
        &mut self,
        sink: &mut S,
        task: TaskId,
        sub: Submission,
    ) -> bool {
        let now = sink.now();
        if !self.timeline.is_down(sub.node.index(), now) {
            return false;
        }
        self.metrics.lost_subtasks += 1;
        self.redispatch(sink, task, sub.subtask);
        true
    }

    /// A hand-off scheduled by [`SystemModel::submit_buffered`] arrives
    /// at its destination node.
    fn handle_subtask_arrive(&mut self, ctx: &mut Context<Event>, task: TaskId, sub: Submission) {
        let Some(slot) = self.lookup_task(task) else {
            debug_assert!(false, "hand-off for unknown task {task}");
            return;
        };
        let entry = &mut self.tasks[slot];
        if entry.aborted {
            // The task was killed while this hand-off was in flight; the
            // subtask is dropped on arrival.
            entry.outstanding -= 1;
            if entry.outstanding == 0 {
                self.release_task_slot(slot);
            }
            return;
        }
        if self.nodes[sub.node.index()].is_down() {
            // The destination died while the hand-off was in transit:
            // the work is lost on arrival.
            self.metrics.lost_subtasks += 1;
            self.redispatch(ctx, task, sub.subtask);
            return;
        }
        self.deliver(ctx.now(), task, sub);
        self.dispatch(ctx, sub.node);
    }

    fn handle_service_complete(&mut self, ctx: &mut Context<Event>, node: NodeId, epoch: u64) {
        if !self.nodes[node.index()].completion_is_current(epoch) {
            // The job this completion belonged to was preempted after the
            // event was scheduled; the rescheduled completion (with the
            // job's new epoch) is elsewhere in the event list.
            return;
        }
        let job = self.nodes[node.index()].finish_service(ctx.now());
        self.on_job_done(ctx, job, node);
        self.dispatch(ctx, node);
    }

    pub(crate) fn on_job_done<S: EventSink>(&mut self, sink: &mut S, job: Job, node: NodeId) {
        let now = sink.now();
        match job.origin {
            JobOrigin::Local { .. } => {
                self.metrics
                    .local
                    .record(job.enqueue_time, job.deadline, now);
                self.metrics.feedback.observe(now > job.deadline);
            }
            JobOrigin::Global { task, subtask } => {
                self.metrics.subtask_virtual_miss.record(now > job.deadline);
                if self.traced(task) {
                    self.trace.push(TraceEvent::SubtaskDone {
                        task,
                        time: now,
                        node,
                        virtual_miss: now > job.deadline,
                    });
                }
                let Some(slot) = self.lookup_task(task) else {
                    debug_assert!(false, "completion for unknown task {task}");
                    return;
                };
                let scale = self.adapt_scale();
                let entry = &mut self.tasks[slot];
                entry.outstanding -= 1;
                if entry.aborted || entry.abandoned {
                    if entry.outstanding == 0 {
                        self.release_task_slot(slot);
                    }
                    return;
                }
                // Refresh the feedback stamp so the *next* stage's
                // deadline reflects the current miss pressure, not the
                // pressure at the task's arrival.
                entry.run.set_slack_scale(scale);
                self.sub_buf.clear();
                let finished =
                    entry
                        .run
                        .complete(subtask, &self.config.strategy, now, &mut self.sub_buf);
                if finished {
                    // The result travels node → process manager; the task
                    // finishes (for the end-to-end deadline check) when
                    // it arrives there.
                    let ret = if self.config.network.is_zero() {
                        0.0
                    } else {
                        let d = self.hop_delay(Some(node), None);
                        self.metrics.transit.add(d);
                        d
                    };
                    if ret > 0.0 {
                        sink.schedule(ret, Event::ResultReturn { task });
                    } else {
                        self.finish_task(task, slot, now);
                    }
                } else {
                    entry.outstanding += self.sub_buf.len() as u32;
                    // Follow-up hand-offs travel from the node whose
                    // completion released them (serial forwarding; for a
                    // fan-in, the last-finishing branch's node).
                    self.submit_buffered(sink, task, Some(node));
                    self.dispatch_buffered(sink);
                    self.flush_lost_handoffs(sink);
                }
            }
        }
    }

    /// Records a finished global task at `now` (its completion time at
    /// the process manager) and vacates its slot.
    pub(crate) fn finish_task(&mut self, task: TaskId, slot: usize, now: f64) {
        let entry = &self.tasks[slot];
        let (arrival, deadline) = (entry.run.arrival(), entry.run.global_deadline());
        self.metrics.global.record(arrival, deadline, now);
        self.metrics.feedback.observe(now > deadline);
        self.release_task_slot(slot);
        if self.traced(task) {
            self.trace.push(TraceEvent::Finished {
                task,
                time: now,
                missed: now > deadline,
            });
        }
    }

    pub(crate) fn on_job_discarded(&mut self, now: f64, job: Job) {
        match job.origin {
            JobOrigin::Local { .. } => {
                self.metrics.local.record_aborted();
                self.metrics.aborted_locals += 1;
                self.metrics.feedback.observe(true);
            }
            JobOrigin::Global { task, .. } => {
                self.metrics.subtask_virtual_miss.record(true);
                let traced = self.traced(task);
                let Some(slot) = self.lookup_task(task) else {
                    return;
                };
                let entry = &mut self.tasks[slot];
                entry.outstanding -= 1;
                let outstanding = entry.outstanding;
                if !entry.aborted && !entry.abandoned {
                    entry.aborted = true;
                    self.metrics.global.record_aborted();
                    self.metrics.aborted_globals += 1;
                    self.metrics.feedback.observe(true);
                    if traced {
                        self.trace.push(TraceEvent::Aborted { task, time: now });
                    }
                }
                if outstanding == 0 {
                    self.release_task_slot(slot);
                }
            }
        }
    }

    /// Accounts for one job lost to a node crash: a local task is a
    /// terminal miss (its node's users see nothing back); a global
    /// subtask enters the re-dispatch path.
    pub(crate) fn on_job_lost<S: EventSink>(&mut self, sink: &mut S, job: Job) {
        match job.origin {
            JobOrigin::Local { .. } => {
                self.metrics.local.record_aborted();
                self.metrics.lost_locals += 1;
                self.metrics.feedback.observe(true);
            }
            JobOrigin::Global { task, subtask } => {
                self.metrics.lost_subtasks += 1;
                self.redispatch(sink, task, subtask);
            }
        }
    }

    /// Recovery path for one lost global-subtask copy: re-decomposes the
    /// *remaining* deadline budget over the residual precedence
    /// structure — through the same [`DeadlineAssigner`] interface the
    /// strategy uses everywhere else, so UD/ED/EQS/EQF/DIV-x/GF/ADAPT
    /// all shape the recovery window — and re-submits the work,
    /// manager-routed, to the nearest surviving node. Once the task's
    /// retry budget ([`MAX_REDISPATCH`]) is spent, or the whole fleet is
    /// down, the task is abandoned instead.
    pub(crate) fn redispatch<S: EventSink>(
        &mut self,
        sink: &mut S,
        task: TaskId,
        subtask: SubtaskRef,
    ) {
        let now = sink.now();
        let Some(slot) = self.lookup_task(task) else {
            debug_assert!(false, "loss for unknown task {task}");
            return;
        };
        let traced = self.traced(task);
        let scale = self.adapt_scale();
        let entry = &mut self.tasks[slot];
        entry.outstanding -= 1;
        if entry.aborted || entry.abandoned {
            if entry.outstanding == 0 {
                self.release_task_slot(slot);
            }
            return;
        }
        if entry.retries >= MAX_REDISPATCH {
            self.abandon_task(now, slot, task, traced);
            return;
        }
        entry.retries += 1;
        entry.run.set_slack_scale(scale);
        self.sub_buf.clear();
        entry
            .run
            .reissue(subtask, &self.config.strategy, now, &mut self.sub_buf);
        debug_assert_eq!(self.sub_buf.len(), 1, "reissue yields one submission");
        let orig = self.sub_buf[0].node;
        let Some(target) = self.pick_live(now, orig) else {
            self.abandon_task(now, slot, task, traced);
            return;
        };
        // The run stores demands in the original node's service units;
        // re-express them for the replacement node's speed.
        let speeds = self.factory.node_speeds();
        let ratio = speeds[orig.index()] / speeds[target.index()];
        let sub = &mut self.sub_buf[0];
        sub.node = target;
        sub.ex *= ratio;
        sub.pex *= ratio;
        self.tasks[slot].outstanding += 1;
        self.metrics.redispatches += 1;
        // The replacement hand-off is manager-routed, like the initial
        // fan-out. The target is live, so it cannot re-enter the lost
        // path at this instant (other casualties of the same delivery
        // batch may still be queued behind us in `lost_handoffs`).
        let pending = self.lost_handoffs.len();
        self.submit_buffered(sink, task, None);
        self.dispatch_buffered(sink);
        debug_assert_eq!(
            self.lost_handoffs.len(),
            pending,
            "re-dispatch to a live node lost"
        );
    }

    /// Terminal give-up for a task whose lost work cannot be re-placed:
    /// a miss with no response observation (like a firm-deadline abort),
    /// counted separately as
    /// [`abandoned`](crate::Metrics::abandoned_globals). Unlike an
    /// abort, hand-offs of the task already in flight still deliver and
    /// execute — the give-up decision cannot outrun work on the wire —
    /// and their completions are swallowed by the `abandoned` check in
    /// [`SystemModel::on_job_done`]. The caller has already settled the
    /// lost copy's `outstanding` decrement.
    fn abandon_task(&mut self, now: f64, slot: usize, task: TaskId, traced: bool) {
        let entry = &mut self.tasks[slot];
        debug_assert!(
            !entry.aborted && !entry.abandoned,
            "abandon of an already-dead task"
        );
        entry.abandoned = true;
        let outstanding = entry.outstanding;
        self.metrics.global.record_aborted();
        self.metrics.abandoned_globals += 1;
        self.metrics.feedback.observe(true);
        if traced {
            self.trace.push(TraceEvent::Aborted { task, time: now });
        }
        if outstanding == 0 {
            self.release_task_slot(slot);
        }
    }

    /// The nearest live node at or above `from` (wrapping), `None` when
    /// the whole fleet is down. Serial runs read the authoritative
    /// per-node down flags; the sharded manager — whose nodes are lent
    /// out to the shard workers — asks its own failure-timeline copy,
    /// which agrees with the workers' copies bit-for-bit.
    fn pick_live(&mut self, now: f64, from: NodeId) -> Option<NodeId> {
        let n = self.config.workload.nodes;
        let serial = !self.nodes.is_empty();
        for k in 0..n {
            let i = (from.index() + k) % n;
            let down = if serial {
                self.nodes[i].is_down()
            } else {
                self.timeline.is_down(i, now)
            };
            if !down {
                return Some(NodeId::new(i as u32));
            }
        }
        None
    }

    /// [`Event::NodeDown`]: crashes `node`, losing its queued and
    /// in-service jobs, and books the matching [`Event::NodeUp`].
    fn handle_node_down(&mut self, ctx: &mut Context<Event>, node: NodeId, up_at: f64) {
        let now = ctx.now();
        let mut lost = std::mem::take(&mut self.lost_buf);
        lost.clear();
        self.nodes[node.index()].fail(now, &mut lost);
        for job in lost.drain(..) {
            self.on_job_lost(ctx, job);
        }
        self.lost_buf = lost;
        ctx.schedule_fast_in(up_at - now.as_f64(), Event::NodeUp { node });
    }

    /// [`Event::NodeUp`]: the node rejoins with empty queues, and the
    /// timeline's next outage (if any) is booked.
    fn handle_node_up(&mut self, ctx: &mut Context<Event>, node: NodeId) {
        let now = ctx.now();
        self.nodes[node.index()].recover(now);
        if let Some((down, up)) = self.timeline.next_outage(node.index()) {
            ctx.schedule_fast_in(down - now.as_f64(), Event::NodeDown { node, up_at: up });
        }
    }

    /// Starts the next job at `node` if the server is idle, applying the
    /// overload policy, and schedules its completion. In preemptive mode
    /// a busy server is first preempted when the queue head outranks the
    /// running job; the preempted job stays resident in the node's job
    /// slab (only its slot index re-enters the heap) and its completion
    /// event is invalidated by the epoch check instead of being
    /// cancelled.
    fn dispatch<S: EventSink>(&mut self, sink: &mut S, node: NodeId) {
        let now = sink.now();
        let now_t = SimTime::new(now);
        if self.config.preemptive && self.nodes[node.index()].should_preempt() {
            self.nodes[node.index()].preempt_requeue(now_t);
        }
        let started = match self.config.overload {
            OverloadPolicy::NoAbort => self.nodes[node.index()].try_start(now_t),
            OverloadPolicy::AbortTardy => {
                self.discard_buf.clear();
                let started = self.nodes[node.index()].try_start_with_admission(
                    now_t,
                    |j| !j.is_tardy(now),
                    &mut self.discard_buf,
                );
                for i in 0..self.discard_buf.len() {
                    let j = self.discard_buf[i];
                    self.on_job_discarded(now, j);
                }
                started
            }
        };
        if let Some(job) = started {
            let epoch = self.nodes[node.index()].service_epoch();
            sink.schedule(job.service, Event::ServiceComplete { node, epoch });
        }
    }
}

impl Simulation for SystemModel {
    type Event = Event;

    fn handle(&mut self, ctx: &mut Context<Event>, event: Event) {
        match event {
            Event::Init { warmup_end } => {
                let nodes: Vec<NodeId> = self.nodes.iter().map(Node::id).collect();
                for node in nodes {
                    self.schedule_next_local(ctx, node);
                }
                self.schedule_next_global(ctx);
                for i in 0..self.config.workload.nodes {
                    if let Some((down, up)) = self.timeline.next_outage(i) {
                        ctx.schedule_fast_in(
                            down,
                            Event::NodeDown {
                                node: NodeId::new(i as u32),
                                up_at: up,
                            },
                        );
                    }
                }
                if warmup_end > 0.0 {
                    ctx.schedule_fast_in(warmup_end, Event::EndWarmup);
                }
            }
            Event::LocalArrival { node } => self.handle_local_arrival(ctx, node),
            Event::GlobalArrival => self.handle_global_arrival(ctx),
            Event::ServiceComplete { node, epoch } => {
                self.handle_service_complete(ctx, node, epoch)
            }
            Event::SubtaskArrive { task, sub } => self.handle_subtask_arrive(ctx, task, sub),
            Event::ResultReturn { task } => {
                let Some(slot) = self.lookup_task(task) else {
                    debug_assert!(false, "result return for unknown task {task}");
                    return;
                };
                self.finish_task(task, slot, ctx.now().as_f64());
            }
            Event::NodeDown { node, up_at } => self.handle_node_down(ctx, node, up_at),
            Event::NodeUp { node } => self.handle_node_up(ctx, node),
            Event::EndWarmup => {
                self.metrics.reset();
                for node in &mut self.nodes {
                    node.reset_stats(ctx.now());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::SdaStrategy;
    use sda_sim::{Engine, SimTime};

    fn engine(config: SystemConfig, seed: u64) -> Engine<SystemModel> {
        let model = SystemModel::new(config, &RngFactory::new(seed)).unwrap();
        let mut e = Engine::new(model);
        e.context_mut()
            .schedule_at(SimTime::ZERO, Event::Init { warmup_end: 100.0 });
        e
    }

    #[test]
    fn baseline_run_completes_tasks() {
        let mut e = engine(SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()), 1);
        e.run_until(SimTime::from(2_000.0));
        let m = e.model().metrics();
        assert!(m.local.completed() > 500, "locals: {}", m.local.completed());
        assert!(
            m.global.completed() > 100,
            "globals: {}",
            m.global.completed()
        );
        assert!(m.local.response().mean() > 0.0);
    }

    #[test]
    fn utilization_approaches_configured_load() {
        let mut e = engine(SystemConfig::ssp_baseline(SdaStrategy::ud_ud()), 2);
        let horizon = SimTime::from(20_000.0);
        e.run_until(horizon);
        let model = e.model();
        let mean_util: f64 = model
            .nodes()
            .iter()
            .map(|n| n.utilization(horizon))
            .sum::<f64>()
            / model.nodes().len() as f64;
        assert!(
            (mean_util - 0.5).abs() < 0.03,
            "utilization {mean_util} should be near load 0.5"
        );
    }

    #[test]
    fn no_tasks_leak() {
        let mut e = engine(SystemConfig::psp_baseline(SdaStrategy::ud_div1()), 3);
        e.run_until(SimTime::from(5_000.0));
        // In-flight tasks should be bounded (queued work), not growing
        // with the number of generated tasks.
        let inflight = e.model().tasks_in_flight();
        let completed = e.model().metrics().global.completed();
        assert!(completed > 500);
        assert!(
            inflight < 200,
            "{inflight} tasks in flight — leak? completed {completed}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e = engine(SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()), seed);
            e.run_until(SimTime::from(3_000.0));
            let m = e.model().metrics();
            (
                m.local.completed(),
                m.global.completed(),
                m.local.miss_percent(),
                m.global.miss_percent(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn abort_tardy_discards_and_counts() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        cfg.overload = OverloadPolicy::AbortTardy;
        // Push load high enough that some jobs are tardy at dispatch.
        cfg.workload.load = 0.9;
        let mut e = engine(cfg, 4);
        e.run_until(SimTime::from(5_000.0));
        let m = e.model().metrics();
        assert!(
            m.aborted_locals + m.aborted_globals > 0,
            "at load 0.9 with tight slack, some aborts must occur"
        );
        // Aborted tasks count as misses.
        assert!(m.global.miss_ratio() > 0.0);
    }

    #[test]
    fn warmup_resets_statistics() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let model = SystemModel::new(cfg, &RngFactory::new(5)).unwrap();
        let mut e = Engine::new(model);
        e.context_mut().schedule_at(
            SimTime::ZERO,
            Event::Init {
                warmup_end: 1_000.0,
            },
        );
        e.run_until(SimTime::from(999.0));
        assert!(e.model().metrics().local.completed() > 0);
        e.run_until(SimTime::from(1_000.5));
        // Just past warm-up: counters were cleared at exactly t=1000.
        let after = e.model().metrics().local.completed();
        assert!(after < 10, "warm-up reset failed: {after} completions");
    }

    #[test]
    fn preemptive_edf_runs_and_preempts() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.preemptive = true;
        cfg.workload.load = 0.7;
        let mut e = engine(cfg.clone(), 14);
        e.run_until(SimTime::from(5_000.0));
        let preemptions: u64 = e.model().nodes().iter().map(|n| n.preemptions()).sum();
        assert!(preemptions > 0, "busy preemptive system must preempt");
        let m = e.model().metrics();
        assert!(m.local.completed() > 1_000);

        // Work conservation: same total completions as non-preemptive,
        // up to boundary effects.
        cfg.preemptive = false;
        let mut e2 = engine(cfg, 14);
        e2.run_until(SimTime::from(5_000.0));
        let a = m.local.completed() as f64 + e.model().metrics().global.completed() as f64;
        let b = e2.model().metrics().local.completed() as f64
            + e2.model().metrics().global.completed() as f64;
        assert!(
            (a - b).abs() / b < 0.02,
            "work conservation: {a} vs {b} completions"
        );
    }

    #[test]
    fn trace_captures_complete_lifecycles() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let model = SystemModel::new(cfg, &RngFactory::new(12)).unwrap();
        let mut e = Engine::new(model);
        e.model_mut().set_trace_tasks(u64::MAX); // trace everything briefly
        e.context_mut()
            .schedule_at(SimTime::ZERO, Event::Init { warmup_end: 0.0 });
        e.run_until(SimTime::from(300.0));
        let trace = e.model().trace();
        assert!(!trace.is_empty());

        // Pick the first task that finished and check its event sequence.
        let finished_task = trace
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::Finished { task, .. } => Some(*task),
                _ => None,
            })
            .expect("some task finishes within 300 units");
        let events: Vec<&TraceEvent> = trace
            .iter()
            .filter(|ev| match ev {
                TraceEvent::Arrival { task, .. }
                | TraceEvent::Submitted { task, .. }
                | TraceEvent::SubtaskDone { task, .. }
                | TraceEvent::Finished { task, .. }
                | TraceEvent::Aborted { task, .. } => *task == finished_task,
            })
            .collect();
        assert!(matches!(events[0], TraceEvent::Arrival { .. }));
        assert!(matches!(
            events.last().unwrap(),
            TraceEvent::Finished { .. }
        ));
        // Serial m=4 task: 4 submissions and 4 completions, alternating.
        let submits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Submitted { .. }))
            .count();
        let dones = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SubtaskDone { .. }))
            .count();
        assert_eq!(submits, 4);
        assert_eq!(dones, 4);
        // Times are monotone.
        let times: Vec<f64> = events
            .iter()
            .map(|ev| match ev {
                TraceEvent::Arrival { time, .. }
                | TraceEvent::Submitted { time, .. }
                | TraceEvent::SubtaskDone { time, .. }
                | TraceEvent::Finished { time, .. }
                | TraceEvent::Aborted { time, .. } => *time,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let model = SystemModel::new(cfg, &RngFactory::new(13)).unwrap();
        let mut e = Engine::new(model);
        e.context_mut()
            .schedule_at(SimTime::ZERO, Event::Init { warmup_end: 0.0 });
        e.run_until(SimTime::from(200.0));
        assert!(e.model().trace().is_empty());
    }

    #[test]
    fn constant_delays_stretch_global_response() {
        use crate::config::NetworkModel;
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let mut free = engine(cfg.clone(), 21);
        free.run_until(SimTime::from(6_000.0));

        cfg.network = NetworkModel::Constant { delay: 0.25 };
        let mut net = engine(cfg, 21);
        net.run_until(SimTime::from(6_000.0));

        let mf = free.model().metrics();
        let mn = net.model().metrics();
        assert!(mn.global.completed() > 100);
        // A serial m=4 task pays 5 hops of 0.25 = 1.25 extra end to end.
        let extra = mn.global.response().mean() - mf.global.response().mean();
        assert!(
            extra > 1.0,
            "delays must stretch the end-to-end response (got +{extra:.3})"
        );
        // Every hand-off was recorded: 5 per completed task (4 subtask
        // hops + 1 result return), modulo tasks still in flight.
        assert!(mn.transit.count() >= 5 * mn.global.completed());
        assert_eq!(mn.transit.mean(), 0.25);
        // Free communication records no transit observations.
        assert_eq!(mf.transit.count(), 0);
        // Locals never cross the network.
        assert_eq!(
            mf.local.completed(),
            mn.local.completed(),
            "local stream must be untouched by the network model"
        );
    }

    #[test]
    fn exponential_delays_average_the_configured_mean() {
        use crate::config::NetworkModel;
        let mut cfg = SystemConfig::psp_baseline(SdaStrategy::eqf_div1());
        cfg.network = NetworkModel::Exponential { mean: 0.5 };
        let mut e = engine(cfg, 22);
        e.run_until(SimTime::from(8_000.0));
        let m = e.model().metrics();
        assert!(m.global.completed() > 300);
        assert!(m.transit.count() > 1_000);
        assert!(
            (m.transit.mean() - 0.5).abs() < 0.05,
            "transit mean {} should be near 0.5",
            m.transit.mean()
        );
        assert!(m.transit.min() >= 0.0);
    }

    #[test]
    fn delayed_tasks_do_not_leak_in_flight_slots() {
        use crate::config::NetworkModel;
        let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
        cfg.network = NetworkModel::Exponential { mean: 0.4 };
        cfg.overload = OverloadPolicy::AbortTardy;
        cfg.workload.load = 0.9;
        let mut e = engine(cfg, 23);
        e.run_until(SimTime::from(8_000.0));
        let m = e.model().metrics();
        assert!(m.aborted_globals > 0, "high load must abort something");
        assert!(m.global.completed() > 500);
        let inflight = e.model().tasks_in_flight();
        assert!(
            inflight < 300,
            "{inflight} tasks in flight with transit + aborts — leak?"
        );
    }

    #[test]
    fn aborted_tasks_counted_in_miss_but_not_in_percentiles() {
        // Model-level regression for the documented ClassMetrics
        // semantics under AbortTardy: every terminal global is either a
        // completion (one response observation) or an abort (none).
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        cfg.overload = OverloadPolicy::AbortTardy;
        cfg.workload.load = 0.9;
        let mut e = engine(cfg, 24);
        e.run_until(SimTime::from(6_000.0));
        let m = e.model().metrics();
        assert!(m.aborted_globals > 0 && m.aborted_locals > 0);
        assert_eq!(
            m.global.response().count() + m.aborted_globals,
            m.global.completed(),
            "terminal = completed-with-response + aborted"
        );
        assert_eq!(
            m.local.response().count() + m.aborted_locals,
            m.local.completed()
        );
        // Aborts are all misses.
        assert!(m.global.missed() >= m.aborted_globals);
        assert!(m.local.missed() >= m.aborted_locals);
    }

    #[test]
    fn node_speeds_skew_utilization() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.workload.node_speeds = Some(vec![0.5, 1.0, 1.0, 1.0, 1.0, 2.0]);
        let mut e = engine(cfg, 25);
        let horizon = SimTime::from(20_000.0);
        e.run_until(horizon);
        let utils: Vec<f64> = e
            .model()
            .nodes()
            .iter()
            .map(|n| n.utilization(horizon))
            .collect();
        // The half-speed node serves the same arrival stream at twice the
        // service time; the double-speed node at half.
        assert!(
            utils[0] > 1.5 * utils[1],
            "slow node {} vs normal {}",
            utils[0],
            utils[1]
        );
        assert!(
            utils[5] < 0.75 * utils[1],
            "fast node {} vs normal {}",
            utils[5],
            utils[1]
        );
        assert!(e.model().metrics().global.completed() > 100);
    }

    #[test]
    fn feedback_pressure_tracks_load() {
        let mut calm = engine(SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()), 31);
        calm.run_until(SimTime::from(5_000.0));
        let calm_p = calm.model().metrics().feedback.pressure();
        assert!(calm.model().metrics().feedback.observations() > 1_000);
        assert!((0.0..=1.0).contains(&calm_p));

        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.workload.load = 0.95;
        let mut hot = engine(cfg, 31);
        hot.run_until(SimTime::from(5_000.0));
        let hot_p = hot.model().metrics().feedback.pressure();
        assert!(
            hot_p > calm_p + 0.2,
            "pressure at load 0.95 ({hot_p:.2}) must clearly exceed load 0.5 ({calm_p:.2})"
        );
    }

    #[test]
    fn adaptive_strategy_changes_assignment_and_stays_sound() {
        use sda_core::AdaptiveSlack;
        let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
        cfg.workload.load = 0.85;
        let mut base = engine(cfg.clone(), 32);
        base.run_until(SimTime::from(6_000.0));

        cfg.strategy = SdaStrategy::adaptive(SdaStrategy::eqf_div1(), AdaptiveSlack::default());
        let mut adaptive = engine(cfg, 32);
        adaptive.run_until(SimTime::from(6_000.0));

        let mb = base.model().metrics();
        let ma = adaptive.model().metrics();
        // Same arrival streams (same seed), different assignment: the
        // closed loop must actually change behavior…
        assert_ne!(
            mb.global.response().mean().to_bits(),
            ma.global.response().mean().to_bits(),
            "ADAPT must not be a no-op at high load"
        );
        // …without breaking the lifecycle: everything still completes.
        assert!(ma.global.completed() > 500);
        assert!(adaptive.model().tasks_in_flight() < 200);
        // The loop promotes globals when pressure is high: their miss
        // ratio must not get worse.
        assert!(
            ma.global.miss_ratio() <= mb.global.miss_ratio() + 1e-9,
            "adaptive global miss {} vs static {}",
            ma.global.miss_ratio(),
            mb.global.miss_ratio()
        );
    }

    #[test]
    fn zero_gain_adapt_is_bit_identical_to_base() {
        use sda_core::AdaptiveSlack;
        let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
        cfg.workload.load = 0.8;
        let mut base = engine(cfg.clone(), 33);
        base.run_until(SimTime::from(4_000.0));
        // Gain 0 keeps the scale pinned at exactly 1.0, which multiplies
        // every slack share by the IEEE-754 neutral element.
        cfg.strategy = SdaStrategy::adaptive(
            SdaStrategy::eqf_div1(),
            AdaptiveSlack::new(0.0, 1.0).unwrap(),
        );
        let mut wrapped = engine(cfg, 33);
        wrapped.run_until(SimTime::from(4_000.0));
        let mb = base.model().metrics();
        let mw = wrapped.model().metrics();
        assert_eq!(mb.global.completed(), mw.global.completed());
        assert_eq!(
            mb.global.response().mean().to_bits(),
            mw.global.response().mean().to_bits()
        );
        assert_eq!(
            mb.local.response().mean().to_bits(),
            mw.local.response().mean().to_bits()
        );
    }

    #[test]
    fn mmpp_arrivals_run_through_the_full_model() {
        use sda_workload::ArrivalProcess;
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.workload.arrivals = ArrivalProcess::Mmpp2 {
            burst_ratio: 6.0,
            dwell_quiet: 200.0,
            dwell_burst: 60.0,
        };
        let mut bursty = engine(cfg, 34);
        let horizon = SimTime::from(30_000.0);
        bursty.run_until(horizon);
        let m = bursty.model().metrics();
        assert!(m.local.completed() > 10_000);
        assert!(m.global.completed() > 1_000);
        // The long-run utilization still matches the configured load —
        // burstiness redistributes arrivals, it does not add work.
        let util: f64 = bursty
            .model()
            .nodes()
            .iter()
            .map(|n| n.utilization(horizon))
            .sum::<f64>()
            / 6.0;
        assert!(
            (util - 0.5).abs() < 0.05,
            "MMPP long-run utilization {util} should stay near load 0.5"
        );
    }

    /// A DAG baseline for the system-level tests: 4 layers, width ≤ 3,
    /// moderate cross-layer density, PSP slack range.
    fn dag_baseline(strategy: SdaStrategy) -> SystemConfig {
        use sda_workload::{GlobalShape, SlackRange};
        let mut cfg = SystemConfig::ssp_baseline(strategy);
        cfg.workload.shape = GlobalShape::Dag {
            depth: 4,
            max_width: 3,
            edge_density: 0.4,
        };
        cfg.workload.slack = SlackRange::PSP_BASELINE;
        cfg
    }

    #[test]
    fn dag_workload_runs_and_completes_tasks() {
        let mut e = engine(dag_baseline(SdaStrategy::eqf_div1()), 40);
        e.run_until(SimTime::from(5_000.0));
        let m = e.model().metrics();
        assert!(
            m.local.completed() > 1_000,
            "locals: {}",
            m.local.completed()
        );
        assert!(
            m.global.completed() > 300,
            "globals: {}",
            m.global.completed()
        );
        assert!(m.global.response().mean() > 0.0);
        // In-flight population stays bounded: fan-ins all resolve.
        assert!(e.model().tasks_in_flight() < 200);
    }

    #[test]
    fn dag_workload_is_deterministic_given_seed() {
        let run = |seed| {
            let mut e = engine(dag_baseline(SdaStrategy::eqf_div1()), seed);
            e.run_until(SimTime::from(3_000.0));
            let m = e.model().metrics();
            (
                m.local.completed(),
                m.global.completed(),
                m.global.miss_percent().to_bits(),
                m.global.response().mean().to_bits(),
            )
        };
        assert_eq!(run(41), run(41));
        assert_ne!(run(41), run(42));
    }

    #[test]
    fn dag_workload_with_delays_and_abort_tardy_does_not_leak() {
        use crate::config::NetworkModel;
        let mut cfg = dag_baseline(SdaStrategy::ud_div1());
        cfg.network = NetworkModel::Exponential { mean: 0.3 };
        cfg.overload = OverloadPolicy::AbortTardy;
        cfg.workload.load = 0.9;
        let mut e = engine(cfg, 42);
        e.run_until(SimTime::from(8_000.0));
        let m = e.model().metrics();
        assert!(m.aborted_globals > 0, "high load must abort something");
        assert!(m.global.completed() > 200);
        // Every aborted or delayed hand-off is accounted: the slab must
        // drain down to the queued population even with fan-ins whose
        // branches die mid-flight.
        let inflight = e.model().tasks_in_flight();
        assert!(
            inflight < 300,
            "{inflight} DAG tasks in flight with transit + aborts — leak?"
        );
        // Transit observations cover every hand-off of completed tasks
        // (initial fan-out + internal edges + result return).
        assert!(m.transit.count() > m.global.completed());
    }

    #[test]
    fn dag_deadline_strategies_differentiate() {
        // The slack-division insight survives on DAGs: EQF/DIV-1 must
        // beat the do-nothing UD-UD baseline for globals at high load.
        let mut cfg = dag_baseline(SdaStrategy::ud_ud());
        cfg.workload.load = 0.8;
        let mut ud = engine(cfg.clone(), 43);
        ud.run_until(SimTime::from(8_000.0));
        let ud_miss = ud.model().metrics().global.miss_percent();

        cfg.strategy = SdaStrategy::eqf_div1();
        let mut eqf = engine(cfg, 43);
        eqf.run_until(SimTime::from(8_000.0));
        let eqf_miss = eqf.model().metrics().global.miss_percent();
        assert!(
            eqf_miss < ud_miss,
            "EQF-DIV1 ({eqf_miss:.2}%) should beat UD-UD ({ud_miss:.2}%) on DAGs"
        );
    }

    #[test]
    fn globals_first_elevates_subtasks_over_locals() {
        // With GF, global subtasks should rarely wait behind locals; the
        // end-to-end global miss rate must be far below UD's at the same
        // seed and load.
        use sda_core::{ParallelStrategy, SerialStrategy};
        let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_ud());
        cfg.workload.load = 0.8;
        let mut e_ud = engine(cfg.clone(), 6);
        e_ud.run_until(SimTime::from(8_000.0));
        let ud_miss = e_ud.model().metrics().global.miss_percent();

        cfg.strategy = SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::GlobalsFirst,
        );
        let mut e_gf = engine(cfg, 6);
        e_gf.run_until(SimTime::from(8_000.0));
        let gf_miss = e_gf.model().metrics().global.miss_percent();
        assert!(
            gf_miss < ud_miss,
            "GF ({gf_miss:.2}%) should beat UD ({ud_miss:.2}%) for globals"
        );
    }

    mod churn {
        use super::*;
        use crate::failure::{DownInterval, FailureModel};

        fn down(node: usize, from: f64, until: f64) -> DownInterval {
            DownInterval { node, from, until }
        }

        #[test]
        fn empty_scripted_trace_is_bit_identical_to_no_failures() {
            let run = |failure: FailureModel| {
                let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
                cfg.failure = failure;
                let mut e = engine(cfg, 50);
                e.run_until(SimTime::from(3_000.0));
                let m = e.model().metrics();
                (
                    m.local.completed(),
                    m.global.completed(),
                    m.global.response().mean().to_bits(),
                )
            };
            assert_eq!(
                run(FailureModel::None),
                run(FailureModel::Scripted { downs: Vec::new() })
            );
        }

        #[test]
        fn scripted_outage_loses_work_and_recovers() {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
            cfg.failure = FailureModel::Scripted {
                downs: vec![down(0, 300.0, 600.0), down(2, 450.0, 500.0)],
            };
            let mut e = engine(cfg, 51);
            e.run_until(SimTime::from(3_000.0));
            let m = e.model().metrics();
            // Locals kept arriving at the dead hosts and were lost…
            assert!(m.lost_locals > 10, "lost locals: {}", m.lost_locals);
            // …global subtasks caught on node 0/2 were lost and re-placed.
            assert!(m.lost_subtasks > 0, "lost subtasks: {}", m.lost_subtasks);
            assert!(m.redispatches > 0);
            assert!(m.redispatches <= m.lost_subtasks);
            // The fleet heals: tasks keep completing after the outage.
            assert!(m.global.completed() > 300);
            assert!(e.model().tasks_in_flight() < 200);
            // Terminal accounting: every terminal local/global is exactly
            // one of completion-with-response, abort, loss, abandonment.
            assert_eq!(
                m.local.response().count() + m.aborted_locals + m.lost_locals,
                m.local.completed()
            );
            assert_eq!(
                m.global.response().count() + m.aborted_globals + m.abandoned_globals,
                m.global.completed()
            );
            // Both nodes are back up at the end.
            assert!(e.model().nodes().iter().all(|n| !n.is_down()));
        }

        #[test]
        fn whole_fleet_outage_abandons_tasks() {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
            let downs = (0..cfg.workload.nodes)
                .map(|i| down(i, 200.0, 260.0))
                .collect();
            cfg.failure = FailureModel::Scripted { downs };
            let mut e = engine(cfg, 52);
            e.run_until(SimTime::from(1_500.0));
            let m = e.model().metrics();
            // Globals arriving while every node is down have nowhere to
            // go: their fan-out is lost and the task abandoned.
            assert!(
                m.abandoned_globals > 0,
                "abandoned: {}",
                m.abandoned_globals
            );
            assert!(e.model().tasks_in_flight() < 100);
            assert_eq!(
                m.global.response().count() + m.aborted_globals + m.abandoned_globals,
                m.global.completed()
            );
        }

        #[test]
        fn exponential_churn_keeps_the_model_sound() {
            let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
            cfg.failure = FailureModel::Exponential {
                mttf: 400.0,
                mttr: 60.0,
            };
            cfg.network = NetworkModel::Constant { delay: 0.25 };
            let mut e = engine(cfg, 53);
            e.run_until(SimTime::from(10_000.0));
            let m = e.model().metrics();
            assert!(m.lost_locals > 0);
            assert!(m.lost_subtasks > 0);
            assert!(m.redispatches > 0);
            assert!(m.global.completed() > 500);
            assert!(e.model().tasks_in_flight() < 200, "slab leak under churn");
            assert_eq!(
                m.global.response().count() + m.aborted_globals + m.abandoned_globals,
                m.global.completed()
            );
        }

        #[test]
        fn redispatched_work_lands_on_surviving_nodes() {
            // One node down for most of the run: its subtasks must be
            // served elsewhere, so globals still complete and the dead
            // node accrues no service time while down.
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
            cfg.failure = FailureModel::Scripted {
                downs: vec![down(1, 150.0, 4_900.0)],
            };
            let mut e = engine(cfg, 54);
            let horizon = SimTime::from(5_000.0);
            e.run_until(horizon);
            let m = e.model().metrics();
            assert!(m.redispatches > 50, "redispatches: {}", m.redispatches);
            assert!(m.global.completed() > 500);
            let utils: Vec<f64> = e
                .model()
                .nodes()
                .iter()
                .map(|n| n.utilization(horizon))
                .collect();
            // Node 1 served ~nothing; its wrap-around neighbour 2 absorbed
            // the re-dispatched share on top of its own.
            assert!(utils[1] < 0.10, "dead node utilization {}", utils[1]);
            assert!(utils[2] > utils[1]);
        }

        #[test]
        fn churn_with_abort_tardy_leaks_no_slots() {
            let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
            cfg.overload = OverloadPolicy::AbortTardy;
            cfg.workload.load = 0.9;
            cfg.network = NetworkModel::Exponential { mean: 0.3 };
            cfg.failure = FailureModel::Exponential {
                mttf: 250.0,
                mttr: 40.0,
            };
            let mut e = engine(cfg, 55);
            e.run_until(SimTime::from(8_000.0));
            let m = e.model().metrics();
            assert!(m.aborted_globals > 0);
            assert!(m.lost_subtasks > 0);
            assert!(
                e.model().tasks_in_flight() < 300,
                "{} tasks in flight under churn + aborts — leak?",
                e.model().tasks_in_flight()
            );
        }
    }
}
