//! Top-level system configuration.

use serde::{Deserialize, Serialize};

use sda_core::{NodeId, SdaStrategy};
use sda_sched::Policy;
use sda_sim::rng::Stream;
use sda_workload::{ConfigError, WorkloadConfig};

use crate::failure::FailureModel;

/// What a node does when it is about to dispatch a job whose (virtual)
/// deadline has already passed.
///
/// Table 1's baseline is `NoAbort` ("tardy tasks are not aborted"); the
/// §4.3 extension studies the firm-deadline `AbortTardy` policy, under
/// which a discarded subtask kills its whole global task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OverloadPolicy {
    /// Serve tardy jobs anyway (soft deadlines).
    #[default]
    NoAbort,
    /// Discard jobs that are already past their deadline at dispatch
    /// time (firm deadlines).
    AbortTardy,
}

/// The inter-node message-delay model: what a subtask hand-off costs in
/// transit time.
///
/// The paper assumes communication is free (`Zero`); the other variants
/// open the network-aware scenario axis. Delays apply to every hand-off a
/// global task makes: the process manager's initial fan-out, serial
/// forwarding between stages, parallel fan-out/fan-in, and the final
/// result return to the manager. Local tasks never cross the network.
///
/// `Matrix` is indexed `delays[from][to]` over `nodes + 1` endpoints:
/// indices `0..nodes` are the nodes, index `nodes` is the **process
/// manager** (so manager hops are first-row/last-column entries and
/// same-node forwarding is the diagonal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum NetworkModel {
    /// Free communication — the paper's model. Hand-offs are delivered
    /// inline (no extra events), keeping this configuration bit-identical
    /// to the delay-free implementation.
    #[default]
    Zero,
    /// Every hand-off takes exactly `delay` time units.
    Constant {
        /// The fixed per-hop transit time (finite, ≥ 0).
        delay: f64,
    },
    /// Hand-off delays drawn i.i.d. from an exponential distribution.
    Exponential {
        /// Mean per-hop transit time (finite, > 0).
        mean: f64,
    },
    /// Deterministic per-pair delays, `delays[from][to]`, over
    /// `nodes + 1` endpoints (index `nodes` = the process manager).
    Matrix {
        /// The square delay matrix (entries finite, ≥ 0).
        delays: Vec<Vec<f64>>,
    },
}

impl NetworkModel {
    /// Whether this is the paper's free-communication model.
    pub fn is_zero(&self) -> bool {
        matches!(self, NetworkModel::Zero)
    }

    /// Checks the model's parameters against the node count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-finite/negative delays or a matrix
    /// that is not `(nodes + 1) × (nodes + 1)`.
    pub fn validate(&self, nodes: usize) -> Result<(), ConfigError> {
        let out_of_range = |what, constraint, value| {
            Err(ConfigError::OutOfRange {
                what,
                constraint,
                value,
            })
        };
        match self {
            NetworkModel::Zero => Ok(()),
            NetworkModel::Constant { delay } => {
                if delay.is_finite() && *delay >= 0.0 {
                    Ok(())
                } else {
                    out_of_range("network constant delay", "finite and ≥ 0", *delay)
                }
            }
            NetworkModel::Exponential { mean } => {
                if mean.is_finite() && *mean > 0.0 {
                    Ok(())
                } else {
                    out_of_range("network mean delay", "finite and > 0", *mean)
                }
            }
            NetworkModel::Matrix { delays } => {
                let side = nodes + 1;
                if delays.len() != side || delays.iter().any(|row| row.len() != side) {
                    return out_of_range(
                        "network delay matrix",
                        "square over nodes + 1 endpoints",
                        delays.len() as f64,
                    );
                }
                for (i, row) in delays.iter().enumerate() {
                    for (j, &d) in row.iter().enumerate() {
                        if !(d.is_finite() && d >= 0.0) {
                            return Err(ConfigError::InvalidEntry {
                                what: "network delay matrix",
                                index: i * side + j,
                                constraint: "finite and ≥ 0",
                                value: d,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// The expected per-hop delay — what deadline-assignment strategies
    /// reserve slack for. For `Matrix` this is the mean over all entries
    /// (a placement-independent approximation; the realized delay is
    /// still the exact pair entry).
    pub fn expected_hop_delay(&self) -> f64 {
        match self {
            NetworkModel::Zero => 0.0,
            NetworkModel::Constant { delay } => *delay,
            NetworkModel::Exponential { mean } => *mean,
            NetworkModel::Matrix { delays } => {
                let n: usize = delays.iter().map(Vec::len).sum();
                if n == 0 {
                    0.0
                } else {
                    delays.iter().flatten().sum::<f64>() / n as f64
                }
            }
        }
    }

    /// A lower bound on every hop delay this model can ever produce —
    /// the *lookahead* of the sharded conservative-parallel engine: no
    /// cross-shard hand-off sent at time `t` can arrive before
    /// `t + min_hop_delay()`, so shards may execute a window of that
    /// width without hearing from each other.
    ///
    /// `Exponential` is supported on `(0, ∞)` with no positive lower
    /// bound, so its lookahead is 0 — like `Zero` (and a `Matrix` with
    /// any zero entry) it forces the sharded engine to fall back to the
    /// serial loop.
    pub fn min_hop_delay(&self) -> f64 {
        match self {
            NetworkModel::Zero => 0.0,
            NetworkModel::Constant { delay } => *delay,
            NetworkModel::Exponential { .. } => 0.0,
            NetworkModel::Matrix { delays } => {
                let min = delays
                    .iter()
                    .flatten()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                if min.is_finite() {
                    min
                } else {
                    0.0
                }
            }
        }
    }

    /// Samples the transit time of one hand-off. `None` endpoints denote
    /// the process manager. Only `Exponential` consumes randomness, so
    /// the deterministic variants perturb no RNG stream.
    pub fn sample_delay(&self, from: Option<NodeId>, to: Option<NodeId>, rng: &mut Stream) -> f64 {
        match self {
            NetworkModel::Zero => 0.0,
            NetworkModel::Constant { delay } => *delay,
            NetworkModel::Exponential { mean } => sda_sim::dist::Exponential::with_mean(*mean)
                .expect("validated mean")
                .sample_with(rng),
            NetworkModel::Matrix { delays } => {
                let manager = delays.len() - 1;
                let i = from.map_or(manager, NodeId::index);
                let j = to.map_or(manager, NodeId::index);
                delays[i][j]
            }
        }
    }
}

/// The full experiment configuration: workload, deadline-assignment
/// strategy, local scheduling policy, overload policy and network model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The stochastic workload (Table 1 and variations).
    pub workload: WorkloadConfig,
    /// The SDA strategy under test.
    pub strategy: SdaStrategy,
    /// The local scheduling discipline at every node (baseline: EDF).
    pub policy: Policy,
    /// Overload handling (baseline: no abort).
    pub overload: OverloadPolicy,
    /// Whether node servers preempt the running job when a
    /// higher-priority job arrives (the paper's model is non-preemptive;
    /// this enables the preemption ablation).
    pub preemptive: bool,
    /// Inter-node message delays (baseline: free communication).
    pub network: NetworkModel,
    /// Per-node failure/repair processes (baseline: no failures).
    pub failure: FailureModel,
}

impl SystemConfig {
    /// The §4 SSP baseline (Table 1) under the given strategy.
    pub fn ssp_baseline(strategy: SdaStrategy) -> SystemConfig {
        SystemConfig {
            workload: WorkloadConfig::baseline(),
            strategy,
            policy: Policy::EarliestDeadlineFirst,
            overload: OverloadPolicy::NoAbort,
            preemptive: false,
            network: NetworkModel::Zero,
            failure: FailureModel::None,
        }
    }

    /// The §5 PSP baseline (parallel fans, slack `U[1.25, 5]`).
    pub fn psp_baseline(strategy: SdaStrategy) -> SystemConfig {
        SystemConfig {
            workload: WorkloadConfig::psp_baseline(),
            ..SystemConfig::ssp_baseline(strategy)
        }
    }

    /// The §6 serial-parallel baseline (pipelines of fans).
    pub fn combined_baseline(strategy: SdaStrategy) -> SystemConfig {
        SystemConfig {
            workload: WorkloadConfig::combined_baseline(),
            ..SystemConfig::ssp_baseline(strategy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_use_edf_no_abort() {
        let c = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        assert_eq!(c.policy, Policy::EarliestDeadlineFirst);
        assert_eq!(c.overload, OverloadPolicy::NoAbort);
        assert_eq!(c.workload.nodes, 6);
        let p = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
        assert!(p.workload.shape.has_parallelism());
        let s = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
        assert_eq!(s.workload.shape.expected_subtasks(), 6.0);
    }

    #[test]
    fn overload_default_is_no_abort() {
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::NoAbort);
    }

    #[test]
    fn min_hop_delay_is_the_conservative_lookahead() {
        assert_eq!(NetworkModel::Zero.min_hop_delay(), 0.0);
        assert_eq!(NetworkModel::Constant { delay: 0.5 }.min_hop_delay(), 0.5);
        // Exponential support is unbounded below: no usable lookahead.
        assert_eq!(NetworkModel::Exponential { mean: 3.0 }.min_hop_delay(), 0.0);
        let m = NetworkModel::Matrix {
            delays: vec![vec![1.0, 0.25], vec![0.75, 2.0]],
        };
        assert_eq!(m.min_hop_delay(), 0.25);
        // Any zero entry kills the lookahead.
        let z = NetworkModel::Matrix {
            delays: vec![vec![0.0, 1.0], vec![1.0, 1.0]],
        };
        assert_eq!(z.min_hop_delay(), 0.0);
        // Degenerate (unvalidated) empty matrix never claims lookahead.
        let e = NetworkModel::Matrix { delays: vec![] };
        assert_eq!(e.min_hop_delay(), 0.0);
    }

    #[test]
    fn baselines_use_free_communication() {
        for cfg in [
            SystemConfig::ssp_baseline(SdaStrategy::ud_ud()),
            SystemConfig::psp_baseline(SdaStrategy::ud_div1()),
            SystemConfig::combined_baseline(SdaStrategy::eqf_div1()),
        ] {
            assert!(cfg.network.is_zero());
            assert!(cfg.failure.is_none());
        }
        assert!(NetworkModel::default().is_zero());
        assert!(FailureModel::default().is_none());
    }

    #[test]
    fn network_validation_and_expectations() {
        assert!(NetworkModel::Zero.validate(6).is_ok());
        assert_eq!(NetworkModel::Zero.expected_hop_delay(), 0.0);

        let c = NetworkModel::Constant { delay: 0.5 };
        assert!(c.validate(6).is_ok());
        assert_eq!(c.expected_hop_delay(), 0.5);
        assert!(NetworkModel::Constant { delay: -1.0 }.validate(6).is_err());
        assert!(NetworkModel::Constant {
            delay: f64::INFINITY
        }
        .validate(6)
        .is_err());

        let e = NetworkModel::Exponential { mean: 0.25 };
        assert!(e.validate(6).is_ok());
        assert_eq!(e.expected_hop_delay(), 0.25);
        assert!(NetworkModel::Exponential { mean: 0.0 }.validate(6).is_err());

        // 2 nodes + manager = 3×3.
        let m = NetworkModel::Matrix {
            delays: vec![
                vec![0.0, 1.0, 0.5],
                vec![1.0, 0.0, 0.5],
                vec![0.5, 0.5, 0.0],
            ],
        };
        assert!(m.validate(2).is_ok());
        assert!((m.expected_hop_delay() - 4.0 / 9.0).abs() < 1e-12);
        assert!(m.validate(3).is_err(), "wrong side length");
        let bad = NetworkModel::Matrix {
            delays: vec![
                vec![0.0, 1.0, 0.5],
                vec![1.0, f64::NAN, 0.5],
                vec![0.5, 0.5, 0.0],
            ],
        };
        match bad.validate(2).unwrap_err() {
            ConfigError::InvalidEntry { index, .. } => assert_eq!(index, 4),
            other => panic!("expected InvalidEntry, got {other:?}"),
        }
    }

    #[test]
    fn sampling_matches_the_model() {
        use sda_sim::rng::RngFactory;
        let mut rng = RngFactory::new(7).stream("net-test");
        assert_eq!(
            NetworkModel::Zero.sample_delay(None, Some(NodeId::new(0)), &mut rng),
            0.0
        );
        let c = NetworkModel::Constant { delay: 0.75 };
        assert_eq!(
            c.sample_delay(Some(NodeId::new(1)), Some(NodeId::new(2)), &mut rng),
            0.75
        );
        let m = NetworkModel::Matrix {
            delays: vec![
                vec![0.0, 1.0, 0.5],
                vec![2.0, 0.0, 0.25],
                vec![0.125, 4.0, 0.0],
            ],
        };
        // node 1 → node 0, node 1 → manager, manager → node 1.
        assert_eq!(
            m.sample_delay(Some(NodeId::new(1)), Some(NodeId::new(0)), &mut rng),
            2.0
        );
        assert_eq!(m.sample_delay(Some(NodeId::new(1)), None, &mut rng), 0.25);
        assert_eq!(m.sample_delay(None, Some(NodeId::new(1)), &mut rng), 4.0);
        // Exponential draws are non-negative with roughly the right mean.
        let e = NetworkModel::Exponential { mean: 0.5 };
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| e.sample_delay(None, Some(NodeId::new(0)), &mut rng))
            .sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.02);
    }
}
