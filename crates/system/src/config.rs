//! Top-level system configuration.

use serde::{Deserialize, Serialize};

use sda_core::SdaStrategy;
use sda_sched::Policy;
use sda_workload::WorkloadConfig;

/// What a node does when it is about to dispatch a job whose (virtual)
/// deadline has already passed.
///
/// Table 1's baseline is `NoAbort` ("tardy tasks are not aborted"); the
/// §4.3 extension studies the firm-deadline `AbortTardy` policy, under
/// which a discarded subtask kills its whole global task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OverloadPolicy {
    /// Serve tardy jobs anyway (soft deadlines).
    #[default]
    NoAbort,
    /// Discard jobs that are already past their deadline at dispatch
    /// time (firm deadlines).
    AbortTardy,
}

/// The full experiment configuration: workload, deadline-assignment
/// strategy, local scheduling policy and overload policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The stochastic workload (Table 1 and variations).
    pub workload: WorkloadConfig,
    /// The SDA strategy under test.
    pub strategy: SdaStrategy,
    /// The local scheduling discipline at every node (baseline: EDF).
    pub policy: Policy,
    /// Overload handling (baseline: no abort).
    pub overload: OverloadPolicy,
    /// Whether node servers preempt the running job when a
    /// higher-priority job arrives (the paper's model is non-preemptive;
    /// this enables the preemption ablation).
    pub preemptive: bool,
}

impl SystemConfig {
    /// The §4 SSP baseline (Table 1) under the given strategy.
    pub fn ssp_baseline(strategy: SdaStrategy) -> SystemConfig {
        SystemConfig {
            workload: WorkloadConfig::baseline(),
            strategy,
            policy: Policy::EarliestDeadlineFirst,
            overload: OverloadPolicy::NoAbort,
            preemptive: false,
        }
    }

    /// The §5 PSP baseline (parallel fans, slack `U[1.25, 5]`).
    pub fn psp_baseline(strategy: SdaStrategy) -> SystemConfig {
        SystemConfig {
            workload: WorkloadConfig::psp_baseline(),
            ..SystemConfig::ssp_baseline(strategy)
        }
    }

    /// The §6 serial-parallel baseline (pipelines of fans).
    pub fn combined_baseline(strategy: SdaStrategy) -> SystemConfig {
        SystemConfig {
            workload: WorkloadConfig::combined_baseline(),
            ..SystemConfig::ssp_baseline(strategy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_use_edf_no_abort() {
        let c = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        assert_eq!(c.policy, Policy::EarliestDeadlineFirst);
        assert_eq!(c.overload, OverloadPolicy::NoAbort);
        assert_eq!(c.workload.nodes, 6);
        let p = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
        assert!(p.workload.shape.has_parallelism());
        let s = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
        assert_eq!(s.workload.shape.expected_subtasks(), 6.0);
    }

    #[test]
    fn overload_default_is_no_abort() {
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::NoAbort);
    }
}
