//! Output metrics: the paper's missed-deadline ratios plus richer
//! distributions.

use serde::{Deserialize, Serialize};

use sda_sim::stats::{P2Quantile, Ratio, Tally};

/// Per-class statistics (one for locals, one for globals).
///
/// # Aborted-task semantics
///
/// A task killed by the firm-deadline policy reaches a terminal state
/// without ever *completing*, so it contributes to exactly one family of
/// statistics: [`ClassMetrics::record_aborted`] counts it in the
/// missed-deadline ratio (an abort is always a miss) and in
/// [`ClassMetrics::completed`] (terminal states), but it adds **no
/// observation** to the response/tardiness/lateness tallies or the
/// percentile estimators — there is no completion time to measure.
/// Under `OverloadPolicy::AbortTardy` the distribution statistics are
/// therefore *conditional on completion* (and biased low relative to a
/// hypothetical run-to-completion): compare
/// [`miss_ratio`](ClassMetrics::miss_ratio) across policies, not
/// `tardiness_p99`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    miss: Ratio,
    response: Tally,
    tardiness: Tally,
    lateness: Tally,
    response_p95: P2Quantile,
    tardiness_p99: P2Quantile,
}

impl Default for ClassMetrics {
    fn default() -> Self {
        ClassMetrics {
            miss: Ratio::new(),
            response: Tally::new(),
            tardiness: Tally::new(),
            lateness: Tally::new(),
            response_p95: P2Quantile::new(0.95).expect("0.95 is a valid quantile"),
            tardiness_p99: P2Quantile::new(0.99).expect("0.99 is a valid quantile"),
        }
    }
}

impl ClassMetrics {
    /// Records a completed task of this class.
    pub fn record(&mut self, arrival: f64, deadline: f64, completion: f64) {
        let missed = completion > deadline;
        self.miss.record(missed);
        self.response.add(completion - arrival);
        self.lateness.add(completion - deadline);
        self.tardiness.add((completion - deadline).max(0.0));
        self.response_p95.add(completion - arrival);
        self.tardiness_p99.add((completion - deadline).max(0.0));
    }

    /// Records a task discarded by the firm-deadline policy — counts as a
    /// miss with **no** response/tardiness/percentile observation (see
    /// the type-level docs for the exact semantics).
    pub fn record_aborted(&mut self) {
        self.miss.record(true);
    }

    /// The missed-deadline ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        self.miss.fraction()
    }

    /// The missed-deadline percentage — the paper's `MD` measure.
    pub fn miss_percent(&self) -> f64 {
        self.miss.percent()
    }

    /// Number of tasks that reached a terminal state (completed or
    /// aborted).
    pub fn completed(&self) -> u64 {
        self.miss.denominator()
    }

    /// Number of missed deadlines.
    pub fn missed(&self) -> u64 {
        self.miss.numerator()
    }

    /// Response time statistics (completion − arrival).
    pub fn response(&self) -> &Tally {
        &self.response
    }

    /// Tardiness statistics (`max(0, completion − deadline)`).
    pub fn tardiness(&self) -> &Tally {
        &self.tardiness
    }

    /// Lateness statistics (`completion − deadline`, negative = early).
    pub fn lateness(&self) -> &Tally {
        &self.lateness
    }

    /// Streaming estimate of the 95th-percentile response time.
    pub fn response_p95(&self) -> Option<f64> {
        self.response_p95.estimate()
    }

    /// Streaming estimate of the 99th-percentile tardiness.
    pub fn tardiness_p99(&self) -> Option<f64> {
        self.tardiness_p99.estimate()
    }

    /// Discards all observations (warm-up deletion).
    pub fn reset(&mut self) {
        *self = ClassMetrics::default();
    }
}

/// The windowed miss-ratio estimator feeding the `ADAPT(base)` strategy
/// wrapper (see [`AdaptiveSlack`](sda_core::AdaptiveSlack)).
///
/// An exponentially weighted moving average of the per-completion miss
/// indicator, updated on every terminal task event — local completions
/// and discards, global finishes and aborts — so it tracks *system-wide*
/// deadline pressure. Each update is O(1) with no allocation, making the
/// estimator safe in the allocation-free steady-state loop.
///
/// The smoothing factor `alpha` sets the effective window: weight decays
/// by `1 − alpha` per observation, so `alpha = 0.02` averages roughly
/// the last 50 completions — long enough to debounce individual misses,
/// short enough to react to an MMPP burst within a fraction of a dwell.
///
/// Unlike the statistics around it, the feedback EWMA is a *control*
/// signal, not a measurement: [`Metrics::reset`] (warm-up deletion)
/// deliberately preserves it so the control loop does not discontinue at
/// the warm-up boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    alpha: f64,
    ewma: f64,
    observations: u64,
}

impl Feedback {
    /// The default smoothing factor (≈ 50-completion window).
    pub const DEFAULT_ALPHA: f64 = 0.02;

    /// An estimator with the given smoothing factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or not finite.
    pub fn with_alpha(alpha: f64) -> Feedback {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "feedback alpha must be in (0, 1], got {alpha}"
        );
        Feedback {
            alpha,
            ewma: 0.0,
            observations: 0,
        }
    }

    /// Folds one terminal task event into the estimate. O(1), no
    /// allocation.
    #[inline]
    pub fn observe(&mut self, missed: bool) {
        let x = if missed { 1.0 } else { 0.0 };
        self.ewma += self.alpha * (x - self.ewma);
        self.observations += 1;
    }

    /// The current miss pressure in `[0, 1]` (0 before any observation —
    /// a fresh system is presumed calm, so `ADAPT` starts at the
    /// open-loop semantics).
    #[inline]
    pub fn pressure(&self) -> f64 {
        self.ewma
    }

    /// How many terminal events have been folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Default for Feedback {
    fn default() -> Self {
        Feedback::with_alpha(Feedback::DEFAULT_ALPHA)
    }
}

/// All simulation output: per-class metrics, subtask-level virtual
/// deadline accounting, network transit times and abort counts.
///
/// Aborted tasks (firm-deadline policy) are terminal-but-not-completed:
/// they count in `local`/`global` miss ratios and in the `aborted_*`
/// counters, while the response/tardiness distributions deliberately
/// exclude them — see [`ClassMetrics`] for the full semantics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Statistics over local tasks.
    pub local: ClassMetrics,
    /// Statistics over global tasks (end-to-end).
    pub global: ClassMetrics,
    /// Virtual-deadline misses at the *subtask* level: how often an
    /// individual global subtask finished after its assigned virtual
    /// deadline. Not a paper figure, but explains the end-to-end numbers.
    pub subtask_virtual_miss: Ratio,
    /// Sampled transit time of every networked hand-off (initial
    /// fan-out, inter-stage forwarding, result return). Empty under
    /// `NetworkModel::Zero`, where hand-offs are delivered inline.
    pub transit: Tally,
    /// Global tasks aborted by the firm-deadline policy.
    pub aborted_globals: u64,
    /// Local tasks discarded by the firm-deadline policy.
    pub aborted_locals: u64,
    /// Local tasks destroyed by a node crash (queued or in service when
    /// the node went down, or delivered to a down node). Each one is
    /// terminal: it counts as a miss via `record_aborted` — never in the
    /// response/tardiness distributions — and exactly once here.
    pub lost_locals: u64,
    /// Global *subtask* copies destroyed by a node crash. Unlike lost
    /// locals these are not terminal — the process manager re-dispatches
    /// each one (see `redispatches`) until the retry budget runs out.
    pub lost_subtasks: u64,
    /// Replacement submissions issued for lost subtasks (≤
    /// `lost_subtasks`; smaller when the retry budget abandons a task).
    pub redispatches: u64,
    /// Global tasks abandoned because a lost subtask exhausted its
    /// re-dispatch budget. Terminal like an abort: a miss, no response
    /// observation.
    pub abandoned_globals: u64,
    /// The windowed miss-ratio estimator driving `ADAPT(base)`
    /// strategies. Always maintained (it is O(1) per completion and
    /// perturbs nothing when unused); **preserved across
    /// [`Metrics::reset`]** because it is control state, not a
    /// statistic.
    pub feedback: Feedback,
}

impl Metrics {
    /// Fresh, empty metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Discards all observations (called at the end of warm-up). The
    /// [`feedback`](Metrics::feedback) control state survives so an
    /// adaptive strategy's loop does not jump at the warm-up boundary.
    pub fn reset(&mut self) {
        let feedback = self.feedback;
        *self = Metrics::default();
        self.feedback = feedback;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_metrics_records_misses_and_response() {
        let mut m = ClassMetrics::default();
        m.record(0.0, 10.0, 8.0); // met
        m.record(0.0, 10.0, 12.0); // missed
        assert_eq!(m.completed(), 2);
        assert_eq!(m.missed(), 1);
        assert_eq!(m.miss_percent(), 50.0);
        assert_eq!(m.response().mean(), 10.0);
        assert_eq!(m.tardiness().mean(), 1.0);
        assert_eq!(m.lateness().mean(), 0.0);
    }

    #[test]
    fn deadline_boundary_is_a_met_deadline() {
        let mut m = ClassMetrics::default();
        m.record(0.0, 10.0, 10.0);
        assert_eq!(m.missed(), 0);
    }

    #[test]
    fn aborted_counts_as_miss_without_response() {
        let mut m = ClassMetrics::default();
        m.record_aborted();
        assert_eq!(m.completed(), 1);
        assert_eq!(m.missed(), 1);
        assert_eq!(m.response().count(), 0);
    }

    #[test]
    fn aborts_pin_miss_and_percentile_accounting() {
        // Regression for the documented semantics: aborts move the miss
        // ratio but leave every distribution statistic untouched.
        let mut m = ClassMetrics::default();
        for i in 0..100 {
            m.record(0.0, 10.0, 5.0 + f64::from(i % 10)); // 4 of 10 miss
        }
        let (p95_before, t99_before) = (m.response_p95(), m.tardiness_p99());
        let (resp_n, tard_mean) = (m.response().count(), m.tardiness().mean());
        let miss_before = m.miss_ratio();
        for _ in 0..50 {
            m.record_aborted();
        }
        assert_eq!(m.completed(), 150);
        assert_eq!(m.missed(), 40 + 50);
        assert!(m.miss_ratio() > miss_before);
        // Distribution statistics are conditional on completion: the 50
        // aborts added no observation anywhere.
        assert_eq!(m.response().count(), resp_n);
        assert_eq!(m.tardiness().mean(), tard_mean);
        assert_eq!(m.response_p95(), p95_before);
        assert_eq!(m.tardiness_p99(), t99_before);
    }

    #[test]
    fn tail_quantiles_track_response_and_tardiness() {
        let mut m = ClassMetrics::default();
        for i in 0..1_000 {
            let completion = 1.0 + f64::from(i % 100) / 100.0;
            m.record(0.0, 1.5, completion);
        }
        let p95 = m.response_p95().unwrap();
        assert!((1.90..2.0).contains(&p95), "P95 response {p95}");
        let p99 = m.tardiness_p99().unwrap();
        assert!((0.40..0.50).contains(&p99), "P99 tardiness {p99}");
    }

    #[test]
    fn reset_clears_everything_but_the_feedback_control_state() {
        let mut m = Metrics::new();
        m.local.record(0.0, 1.0, 2.0);
        m.subtask_virtual_miss.record(true);
        m.aborted_globals = 3;
        m.feedback.observe(true);
        let pressure = m.feedback.pressure();
        assert!(pressure > 0.0);
        m.reset();
        assert_eq!(m.local.completed(), 0);
        assert_eq!(m.subtask_virtual_miss.denominator(), 0);
        assert_eq!(m.aborted_globals, 0);
        // The control signal survives warm-up deletion.
        assert_eq!(m.feedback.pressure(), pressure);
        assert_eq!(m.feedback.observations(), 1);
    }

    #[test]
    fn feedback_ewma_tracks_miss_runs() {
        let mut f = Feedback::default();
        assert_eq!(f.pressure(), 0.0, "fresh estimator is calm");
        for _ in 0..500 {
            f.observe(true);
        }
        assert!(
            f.pressure() > 0.99,
            "sustained misses saturate: {}",
            f.pressure()
        );
        for _ in 0..500 {
            f.observe(false);
        }
        assert!(
            f.pressure() < 0.01,
            "sustained hits decay: {}",
            f.pressure()
        );
        assert_eq!(f.observations(), 1000);
        // Pressure always stays a ratio.
        let mut g = Feedback::with_alpha(1.0);
        g.observe(true);
        assert_eq!(g.pressure(), 1.0);
        g.observe(false);
        assert_eq!(g.pressure(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn feedback_rejects_bad_alpha() {
        let _ = Feedback::with_alpha(0.0);
    }
}
