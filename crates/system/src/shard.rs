//! The sharded conservative-parallel engine: one run, all cores.
//!
//! The serial engine executes a run's events one at a time from a single
//! future-event list. Under a network model with a **positive minimum
//! hop delay** `W` ([`NetworkModel::min_hop_delay`]), every cross-node
//! interaction — a subtask hand-off or a result return — takes at least
//! `W` to arrive, so a node's events inside a window `[T, T + W)` can
//! only depend on remote actions from *before* `T`. That is the
//! classical conservative-simulation lookahead, and this module exploits
//! it with a null-message-free bulk-synchronous protocol:
//!
//! * the node set is partitioned into contiguous **shards**; each shard
//!   worker owns its members' [`Node`] state and a private slab-backed
//!   [`EventQueue`] of node-side events (deliveries and service
//!   completions);
//! * the **process manager** runs as a deterministically-merged shard of
//!   its own on the calling thread: it owns the only
//!   [`TaskFactory`](sda_workload::TaskFactory) (all randomness), the
//!   task slab, the metrics, and a **delivery calendar** of in-flight
//!   hand-offs;
//! * per window, shards execute their events strictly below the window
//!   bound (inclusive of the horizon in the final window) and emit
//!   completion/discard **records**; at the barrier the manager merges
//!   all records in a documented total order, runs the precedence and
//!   metrics bookkeeping, pre-generates the next windows' local
//!   arrivals, and forwards everything that arrives in the next window
//!   through per-shard [`Mailbox`]es.
//!
//! There are **no shard→shard messages**: every hand-off is routed
//! through the manager, whose serial merge phase is what makes the
//! engine deterministic.
//!
//! # Total merge order
//!
//! Records are merged by `(time, node id, per-node sequence)`, and a
//! record at time `t` is processed **before** any manager event (global
//! arrival, result return, end of warm-up) at the same `t`. Within one
//! node, records carry a monotone sequence number, so the per-node order
//! is exactly the node's execution order regardless of the shard count —
//! which makes a seeded run **bit-identical across shard counts**.
//! Against the serial engine the only possible divergence is the
//! resolution of *exact* floating-point time ties between events on
//! different endpoints (the serial engine breaks those by global
//! scheduling order, which no longer exists across shards); with
//! continuously-distributed workloads such ties have measure zero, and
//! the sharded runs of the golden configurations reproduce the serial
//! fingerprints bit-for-bit.
//!
//! Under [`OverloadPolicy::AbortTardy`] there is one semantic
//! divergence: a hand-off already forwarded to a shard when its task
//! aborts is executed anyway (the abort is observed at the merge, where
//! the ordinary stale-completion accounting settles it), whereas the
//! serial engine drops it on arrival. Slot accounting stays exact either
//! way; only the miss statistics can differ slightly.
//!
//! # When sharding helps — and when it cannot
//!
//! The protocol needs `W > 0` to make progress: under
//! [`NetworkModel::Zero`] (the paper's free communication) or any model
//! whose minimum hop delay is zero, the window width collapses and the
//! engine falls back to the serial path
//! ([`run_once_sharded`](crate::run_once_sharded) documents the gate).
//! Speed-up comes from node-side work (queueing, dispatch, service
//! completions) being the bulk of a run; the manager merge is the serial
//! fraction, so configurations dominated by global-task bookkeeping gain
//! less.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use sda_core::{NodeId, Submission, TaskId};
use sda_sched::Job;
use sda_sim::mailbox::Mailbox;
use sda_sim::rng::RngFactory;
use sda_sim::{EventQueue, SimTime};

use crate::config::{OverloadPolicy, SystemConfig};
use crate::failure::FailureTimeline;
use crate::model::{Event, EventSink, SystemModel};
use crate::node::Node;
use crate::runner::{RunConfig, RunError, RunResult};

/// Fixed capacity of every cross-shard mailbox (deliveries in, records
/// out). Sized with orders-of-magnitude headroom over any realistic
/// per-window volume; an overflow aborts the run with a structured
/// [`RunError::MailboxOverflow`] rather than silently dropping events.
const MAILBOX_CAPACITY: usize = 1 << 14;

/// A reusable spin barrier for the bulk-synchronous window protocol
/// (`shards + 1` participants, two crossings per window). Spinning is
/// the right trade here: phases are sub-millisecond and the thread count
/// is chosen to fit the machine.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset for the next round, then release
            // everyone. The release on `generation` publishes the reset
            // (and all pre-barrier writes) to the spinners.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Window parameters published by the manager before the barrier that
/// releases the shards into the window; the barrier supplies the
/// ordering, so the individual loads/stores can be relaxed.
struct Shared {
    barrier: SpinBarrier,
    bound_bits: AtomicU64,
    inclusive: AtomicBool,
    done: AtomicBool,
    /// Set (with `error` filled) by whichever side first hits a mailbox
    /// overflow; the manager then shuts the window protocol down cleanly
    /// and surfaces the error instead of panicking in a worker thread.
    failed: AtomicBool,
    /// First overflow's diagnostics; later ones are dropped.
    error: Mutex<Option<RunError>>,
}

impl Shared {
    fn new(participants: usize) -> Shared {
        Shared {
            barrier: SpinBarrier::new(participants),
            bound_bits: AtomicU64::new(0),
            inclusive: AtomicBool::new(false),
            done: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    fn fail(&self, err: RunError) {
        let mut slot = self.error.lock().expect("no poisoned lock");
        if slot.is_none() {
            *slot = Some(err);
        }
        self.failed.store(true, Ordering::Release);
    }

    fn publish(&self, bound: f64, inclusive: bool) {
        self.bound_bits.store(bound.to_bits(), Ordering::Relaxed);
        self.inclusive.store(inclusive, Ordering::Relaxed);
    }

    fn window(&self) -> (f64, bool) {
        (
            f64::from_bits(self.bound_bits.load(Ordering::Relaxed)),
            self.inclusive.load(Ordering::Relaxed),
        )
    }
}

/// One delivery forwarded manager → shard: a job (local arrival or
/// global hand-off) entering `node`'s queue at `time`. Mailbox FIFO
/// order is the calendar's deterministic `(time, sequence)` drain order.
#[derive(Debug, Clone, Copy)]
struct Handoff {
    time: f64,
    node: NodeId,
    job: Job,
}

/// An entry of the manager's delivery calendar: everything that will
/// enter some node's queue at a known future instant.
#[derive(Debug, Clone, Copy)]
enum CalEntry {
    /// A pre-generated local arrival (the sequencer draws these from the
    /// workload's RNG streams in global time order).
    Arrival { node: NodeId, job: Job },
    /// A global subtask hand-off in network transit.
    Handoff { task: TaskId, sub: Submission },
}

/// What a shard → manager record reports about its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordKind {
    /// Service completion.
    Done,
    /// Admission discard (firm-deadline policy).
    Discard,
    /// Lost to a node failure: the job was queued/in service on a
    /// crashing node, or was delivered to a node that was down. The
    /// manager's merge runs the loss accounting and the re-dispatch.
    Lost,
}

/// One completion, admission discard or failure loss reported
/// shard → manager. `seq` is a per-node monotone counter: the
/// `(time, node, seq)` sort key reconstructs a total order that is
/// independent of the shard count.
#[derive(Debug, Clone, Copy)]
struct Record {
    time: f64,
    node: NodeId,
    seq: u32,
    kind: RecordKind,
    job: Job,
}

/// Node-side events of one shard's private queue.
#[derive(Debug, Clone, Copy)]
enum ShardEvent {
    /// A mailbox hand-off re-materialized at its delivery time.
    Deliver { node: NodeId, job: Job },
    /// Mirrors [`Event::ServiceComplete`] (same epoch staleness check).
    Complete { node: NodeId, epoch: u64 },
    /// Mirrors [`Event::NodeDown`]: failure events are node-local, so
    /// each worker self-schedules its own nodes' outages from its
    /// failure-timeline copy — no cross-shard coordination needed.
    Down { node: NodeId, up_at: f64 },
    /// Mirrors [`Event::NodeUp`].
    Up { node: NodeId },
    /// Mirrors the node-stat half of [`Event::EndWarmup`]. Scheduled at
    /// queue creation so its FIFO sequence is the lowest possible and it
    /// pops ahead of any same-instant event, exactly like the serial
    /// engine's Init-scheduled `EndWarmup`.
    EndWarmup,
}

/// The manager's [`EventSink`]: hand-offs go to the cross-shard delivery
/// calendar, manager-endpoint events to the manager's own queue. The
/// timestamp arithmetic (`SimTime::new(now + delay)`) is bit-identical
/// to the serial [`Context::schedule_fast_in`](sda_sim::Context).
struct ManagerSink<'a> {
    now: f64,
    calendar: &'a mut EventQueue<CalEntry>,
    queue: &'a mut EventQueue<Event>,
}

impl EventSink for ManagerSink<'_> {
    #[inline]
    fn now(&self) -> f64 {
        self.now
    }

    fn schedule(&mut self, delay: f64, event: Event) {
        debug_assert!(
            delay.is_finite() && delay >= 0.0,
            "scheduling delay must be finite and non-negative, got {delay}"
        );
        let at = SimTime::new(self.now + delay);
        match event {
            Event::SubtaskArrive { task, sub } => {
                self.calendar
                    .schedule_fast(at, CalEntry::Handoff { task, sub });
            }
            Event::GlobalArrival | Event::ResultReturn { .. } | Event::EndWarmup => {
                self.queue.schedule_fast(at, event);
            }
            Event::Init { .. }
            | Event::LocalArrival { .. }
            | Event::ServiceComplete { .. }
            | Event::NodeDown { .. }
            | Event::NodeUp { .. } => {
                unreachable!("node-side event {event:?} scheduled on the manager sink");
            }
        }
    }
}

/// Pre-generates local arrivals in global time order.
///
/// The serial engine interleaves per-node arrival streams through its
/// event list; the shared `workload.local.service` / `…slack` streams
/// are therefore drawn in global arrival-time order. The sequencer
/// reproduces exactly that: a k-way merge over the per-node next-arrival
/// times (ties broken by node index), drawing each node's next
/// inter-arrival gap — and the arriving task's attributes — at the same
/// points of every stream as the serial run.
struct Sequencer {
    /// Min-heap of `(next-arrival-time bits, node index)`; exhausted
    /// streams leave the heap. The bit representation of a non-negative
    /// finite `f64` is order-preserving, so the tuple ordering is
    /// `(time, node)`.
    heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
}

impl Sequencer {
    /// Draws every node's first inter-arrival gap, in node order — the
    /// serial `Init` handler's draw order.
    fn new(model: &mut SystemModel, nodes: usize) -> Sequencer {
        let mut heap = BinaryHeap::with_capacity(nodes);
        for i in 0..nodes {
            let node = NodeId::new(i as u32);
            if let Some(gap) = model.factory_mut().next_local_interarrival(node) {
                heap.push(std::cmp::Reverse((gap.to_bits(), i as u32)));
            }
        }
        Sequencer { heap }
    }

    /// Materializes every local arrival up to `limit` into the calendar,
    /// drawing follow-up gaps as it goes. Idempotent per limit: already
    /// generated arrivals are never revisited.
    fn generate(
        &mut self,
        model: &mut SystemModel,
        calendar: &mut EventQueue<CalEntry>,
        limit: f64,
        inclusive: bool,
    ) {
        while let Some(&std::cmp::Reverse((bits, idx))) = self.heap.peek() {
            let t = f64::from_bits(bits);
            let within = if inclusive { t <= limit } else { t < limit };
            if !within {
                break;
            }
            self.heap.pop();
            let node = NodeId::new(idx);
            let task = model.factory_mut().make_local(node, t);
            let id = model.fresh_local_id();
            let job = Job::local(id, t, task.attrs.ex, task.attrs.deadline);
            calendar.schedule_fast(SimTime::new(t), CalEntry::Arrival { node, job });
            if let Some(gap) = model.factory_mut().next_local_interarrival(node) {
                self.heap
                    .push(std::cmp::Reverse(((t + gap).to_bits(), idx)));
            }
        }
    }
}

/// One shard: a contiguous block of nodes, their private event queue,
/// and the per-node record sequence counters.
struct ShardWorker {
    /// This shard's index (for overflow diagnostics).
    shard: usize,
    /// Global index of `nodes[0]`.
    base: usize,
    nodes: Vec<Node>,
    queue: EventQueue<ShardEvent>,
    /// This worker's failure-timeline copy; only its own nodes' streams
    /// are ever consumed (via `next_outage`), so all copies agree
    /// bit-for-bit with the serial engine's single timeline.
    timeline: FailureTimeline,
    /// Per-node monotone record sequence (parallel to `nodes`).
    rec_seq: Vec<u32>,
    /// Reusable mailbox drain buffer.
    scratch: Vec<Handoff>,
    /// Reusable admission-discard buffer (mirrors the model's).
    discard_buf: Vec<Job>,
    /// Reusable crash-loss buffer (mirrors the model's).
    lost_buf: Vec<Job>,
    preemptive: bool,
    overload: OverloadPolicy,
    /// Node-side events handled, *excluding* the per-shard `EndWarmup`
    /// (whose serial counterpart is the manager's pop): the run total
    /// `1 (Init) + manager pops + Σ shard counts` matches the serial
    /// engine's `events_handled`.
    events: u64,
}

impl ShardWorker {
    fn run(
        mut self,
        shared: &Shared,
        inbox: &Mailbox<Handoff>,
        records: &Mailbox<Record>,
    ) -> ShardWorker {
        loop {
            shared.barrier.wait();
            if shared.done.load(Ordering::Acquire) {
                break;
            }
            if shared.failed.load(Ordering::Acquire) {
                // Another participant overflowed: stop doing real work
                // (but keep the inbox drained and the barriers manned)
                // until the manager shuts the protocol down.
                inbox.drain_into(&mut self.scratch);
                self.scratch.clear();
            } else {
                let (bound, inclusive) = shared.window();
                if let Err(err) = self.run_window(bound, inclusive, inbox, records) {
                    shared.fail(err);
                }
            }
            shared.barrier.wait();
        }
        self
    }

    fn run_window(
        &mut self,
        bound: f64,
        inclusive: bool,
        inbox: &Mailbox<Handoff>,
        records: &Mailbox<Record>,
    ) -> Result<(), RunError> {
        inbox.drain_into(&mut self.scratch);
        for i in 0..self.scratch.len() {
            let h = self.scratch[i];
            self.queue.schedule_fast(
                SimTime::new(h.time),
                ShardEvent::Deliver {
                    node: h.node,
                    job: h.job,
                },
            );
        }
        self.scratch.clear();
        let bound_t = SimTime::new(bound);
        loop {
            let next = if inclusive {
                self.queue.pop_at_or_before(bound_t)
            } else {
                self.queue.pop_before(bound_t)
            };
            let Some(scheduled) = next else { break };
            let now_t = scheduled.time;
            match scheduled.event {
                ShardEvent::Deliver { node, job } => {
                    self.events += 1;
                    let li = node.index() - self.base;
                    if self.nodes[li].is_down() {
                        // Delivery to a dead node: lost in flight. The
                        // manager pre-filters these against its timeline
                        // at forward time, so this only fires on exact
                        // ties between a delivery and an outage edge
                        // where the event orders disagree (measure-zero
                        // under continuous draws); the record path keeps
                        // the accounting sound even then.
                        self.push_record(
                            records,
                            bound,
                            now_t.as_f64(),
                            li,
                            RecordKind::Lost,
                            job,
                        )?;
                        continue;
                    }
                    self.nodes[li].enqueue(now_t, job);
                    self.dispatch(now_t, bound, li, records)?;
                }
                ShardEvent::Complete { node, epoch } => {
                    // Counted even when stale, like the serial engine.
                    self.events += 1;
                    let li = node.index() - self.base;
                    if !self.nodes[li].completion_is_current(epoch) {
                        continue;
                    }
                    let job = self.nodes[li].finish_service(now_t);
                    self.push_record(records, bound, now_t.as_f64(), li, RecordKind::Done, job)?;
                    self.dispatch(now_t, bound, li, records)?;
                }
                ShardEvent::Down { node, up_at } => {
                    self.events += 1;
                    let li = node.index() - self.base;
                    self.lost_buf.clear();
                    self.nodes[li].fail(now_t, &mut self.lost_buf);
                    // The loss order (in-service first, then queue
                    // service order) matches the serial `fail`; the
                    // per-node `seq` preserves it through the merge sort.
                    for i in 0..self.lost_buf.len() {
                        let job = self.lost_buf[i];
                        self.push_record(
                            records,
                            bound,
                            now_t.as_f64(),
                            li,
                            RecordKind::Lost,
                            job,
                        )?;
                    }
                    self.queue
                        .schedule_fast(SimTime::new(up_at), ShardEvent::Up { node });
                }
                ShardEvent::Up { node } => {
                    self.events += 1;
                    let li = node.index() - self.base;
                    self.nodes[li].recover(now_t);
                    if let Some((down, up)) = self.timeline.next_outage(node.index()) {
                        self.queue.schedule_fast(
                            SimTime::new(down),
                            ShardEvent::Down { node, up_at: up },
                        );
                    }
                }
                ShardEvent::EndWarmup => {
                    for node in &mut self.nodes {
                        node.reset_stats(now_t);
                    }
                }
            }
        }
        Ok(())
    }

    /// The node-side half of [`SystemModel`]'s dispatch: preemption
    /// check, admission policy, service start. Discards and completions
    /// become records; their metrics/precedence half runs manager-side
    /// at the merge.
    fn dispatch(
        &mut self,
        now_t: SimTime,
        bound: f64,
        li: usize,
        records: &Mailbox<Record>,
    ) -> Result<(), RunError> {
        let now = now_t.as_f64();
        if self.preemptive && self.nodes[li].should_preempt() {
            self.nodes[li].preempt_requeue(now_t);
        }
        let started = match self.overload {
            OverloadPolicy::NoAbort => self.nodes[li].try_start(now_t),
            OverloadPolicy::AbortTardy => {
                self.discard_buf.clear();
                let started = self.nodes[li].try_start_with_admission(
                    now_t,
                    |j| !j.is_tardy(now),
                    &mut self.discard_buf,
                );
                for i in 0..self.discard_buf.len() {
                    let j = self.discard_buf[i];
                    self.push_record(records, bound, now, li, RecordKind::Discard, j)?;
                }
                started
            }
        };
        if let Some(job) = started {
            let epoch = self.nodes[li].service_epoch();
            let node = self.nodes[li].id();
            self.queue
                .schedule_fast(now_t + job.service, ShardEvent::Complete { node, epoch });
        }
        Ok(())
    }

    fn push_record(
        &mut self,
        records: &Mailbox<Record>,
        bound: f64,
        time: f64,
        li: usize,
        kind: RecordKind,
        job: Job,
    ) -> Result<(), RunError> {
        let seq = self.rec_seq[li];
        self.rec_seq[li] += 1;
        let record = Record {
            time,
            node: self.nodes[li].id(),
            seq,
            kind,
            job,
        };
        if records.push(record) {
            Ok(())
        } else {
            Err(RunError::MailboxOverflow {
                shard: self.shard,
                window: bound,
                capacity: records.capacity(),
                kind: "record",
            })
        }
    }
}

/// Processes one window's records and manager events in the documented
/// total order: ascending time; records before manager events at equal
/// times; records tie-broken by `(node, seq)`. Returns the number of
/// manager events popped (for event-count parity with the serial run).
fn merge_window(
    model: &mut SystemModel,
    records: &[Record],
    calendar: &mut EventQueue<CalEntry>,
    mgr_queue: &mut EventQueue<Event>,
    bound: f64,
    inclusive: bool,
) -> u64 {
    let mut handled = 0u64;
    let mut ri = 0usize;
    loop {
        let rec_time = records.get(ri).map(|r| r.time);
        let evt_time = mgr_queue.peek_time().map(SimTime::as_f64);
        let take_record = match (rec_time, evt_time) {
            (Some(rt), Some(et)) => rt <= et,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_record {
            let r = records[ri];
            ri += 1;
            debug_assert!(
                if inclusive {
                    r.time <= bound
                } else {
                    r.time < bound
                },
                "record at {} escaped its window (bound {bound})",
                r.time
            );
            match r.kind {
                RecordKind::Done => {
                    let mut sink = ManagerSink {
                        now: r.time,
                        calendar,
                        queue: mgr_queue,
                    };
                    model.on_job_done(&mut sink, r.job, r.node);
                }
                RecordKind::Discard => model.on_job_discarded(r.time, r.job),
                RecordKind::Lost => {
                    // Loss accounting + re-dispatch: the replacement
                    // hand-off goes back out through the calendar with a
                    // full hop of transit (≥ the lookahead), so the
                    // window protocol stays sound.
                    let mut sink = ManagerSink {
                        now: r.time,
                        calendar,
                        queue: mgr_queue,
                    };
                    model.on_job_lost(&mut sink, r.job);
                }
            }
        } else {
            let et = evt_time.expect("checked above");
            let within = if inclusive { et <= bound } else { et < bound };
            if !within {
                break;
            }
            let scheduled = mgr_queue.pop().expect("peeked entry exists");
            handled += 1;
            match scheduled.event {
                Event::GlobalArrival => {
                    let mut sink = ManagerSink {
                        now: et,
                        calendar,
                        queue: mgr_queue,
                    };
                    model.handle_global_arrival(&mut sink);
                }
                Event::ResultReturn { task } => match model.lookup_task(task) {
                    Some(slot) => model.finish_task(task, slot, et),
                    None => debug_assert!(false, "result return for unknown task {task}"),
                },
                Event::EndWarmup => model.reset_metrics(),
                Event::SubtaskArrive { task, sub } => {
                    // A hand-off `drain_calendar` withheld because its
                    // destination is down at `et`: the loss is processed
                    // here, at its logical time. The task may have been
                    // aborted by an earlier event of this window — then
                    // the serial engine drops the arrival before looking
                    // at the node, so mirror that order.
                    if !model.handoff_aborted(task) {
                        let mut sink = ManagerSink {
                            now: et,
                            calendar,
                            queue: mgr_queue,
                        };
                        let lost = model.handoff_lost(&mut sink, task, sub);
                        debug_assert!(lost, "withheld hand-off not lost at delivery");
                    }
                }
                other => unreachable!("manager queue held node event {other:?}"),
            }
        }
    }
    debug_assert!(ri == records.len(), "unprocessed records past the bound");
    handled
}

/// Forwards every calendar entry up to `limit` to its shard's mailbox,
/// building hand-off jobs at their delivery time (exactly the serial
/// `deliver` construction). Aborted tasks' hand-offs are dropped here
/// with their accounting settled (and counted as drops so event totals
/// stay comparable), mirroring the serial engine's drop-on-arrival.
/// Hand-offs addressed to a node that the failure timeline says will be
/// down at delivery are *withheld* from the worker and re-queued on
/// `mgr_queue` at their delivery time: the loss accounting and
/// re-dispatch must not run early, at drain time, because they mutate
/// manager state (metrics, the warmup reset, adaptive feedback) that
/// the window's earlier events have not yet touched — `merge_window`
/// processes them at their logical instant instead. Returns the number
/// of deliveries pushed (the final window repeats until this hits
/// zero), or the overflow diagnostics if a shard's delivery mailbox ran
/// out of capacity.
#[allow(clippy::too_many_arguments)] // the window protocol's full state
fn drain_calendar(
    model: &mut SystemModel,
    calendar: &mut EventQueue<CalEntry>,
    mgr_queue: &mut EventQueue<Event>,
    limit: f64,
    inclusive: bool,
    mailboxes: &[Mailbox<Handoff>],
    shard_of: &[u32],
    dropped: &mut u64,
) -> Result<u64, RunError> {
    let mut pushed = 0u64;
    while let Some(at) = calendar.peek_time() {
        let t = at.as_f64();
        let within = if inclusive { t <= limit } else { t < limit };
        if !within {
            break;
        }
        let entry = calendar.pop().expect("peeked entry exists");
        let (node, job) = match entry.event {
            CalEntry::Arrival { node, job } => (node, job),
            CalEntry::Handoff { task, sub } => {
                if model.handoff_aborted(task) {
                    *dropped += 1;
                    continue;
                }
                if model.handoff_doomed(sub.node, t) {
                    // The destination will be down at delivery: withhold
                    // the hand-off from the worker, but *process* the
                    // loss (accounting + re-dispatch) at its logical
                    // time — `merge_window` pops this event at `t`,
                    // interleaved with the window's records and manager
                    // events in time order. Same-instant losses keep
                    // their calendar order through the queue's FIFO
                    // tie-break, which is the serial engine's
                    // same-instant processing order.
                    mgr_queue.schedule_fast(at, Event::SubtaskArrive { task, sub });
                    continue;
                }
                let job = Job::global(
                    task,
                    sub.subtask,
                    t,
                    sub.ex,
                    sub.pex,
                    sub.deadline,
                    sub.priority,
                );
                (sub.node, job)
            }
        };
        let shard = shard_of[node.index()] as usize;
        if !mailboxes[shard].push(Handoff { time: t, node, job }) {
            return Err(RunError::MailboxOverflow {
                shard,
                window: limit,
                capacity: mailboxes[shard].capacity(),
                kind: "delivery",
            });
        }
        pushed += 1;
    }
    Ok(pushed)
}

/// Runs the model once with `shards ≥ 2` node shards advancing
/// concurrently under the conservative window protocol. Callers gate on
/// `shards >= 2 && config.network.min_hop_delay() > 0` (see
/// [`run_once_sharded`](crate::run_once_sharded)).
pub(crate) fn run_sharded(
    config: &SystemConfig,
    run: &RunConfig,
    shards: usize,
) -> Result<RunResult, RunError> {
    run_sharded_inner(config, run, shards).map(|(result, _)| result)
}

/// [`run_sharded`] with an explicit per-mailbox capacity, for callers
/// that bound cross-shard buffering deliberately (`--mailbox-capacity`).
pub(crate) fn run_sharded_with_capacity(
    config: &SystemConfig,
    run: &RunConfig,
    shards: usize,
    mailbox_capacity: usize,
) -> Result<RunResult, RunError> {
    run_sharded_inner_with_capacity(config, run, shards, mailbox_capacity).map(|(result, _)| result)
}

/// [`run_sharded`] returning the final model too, so tests can inspect
/// slab accounting (`tasks_in_flight`) after a sharded run.
fn run_sharded_inner(
    config: &SystemConfig,
    run: &RunConfig,
    shards: usize,
) -> Result<(RunResult, SystemModel), RunError> {
    run_sharded_inner_with_capacity(config, run, shards, MAILBOX_CAPACITY)
}

/// [`run_sharded_inner`] with an explicit mailbox capacity, so overflow
/// handling can be exercised without generating 2¹⁴ in-flight events.
fn run_sharded_inner_with_capacity(
    config: &SystemConfig,
    run: &RunConfig,
    shards: usize,
    mailbox_capacity: usize,
) -> Result<(RunResult, SystemModel), RunError> {
    let lookahead = config.network.min_hop_delay();
    debug_assert!(
        shards >= 2 && lookahead > 0.0,
        "run_sharded requires ≥2 shards and positive lookahead"
    );
    let rng = RngFactory::new(run.seed);
    let mut model = SystemModel::new(config.clone(), &rng)?;
    let horizon = run.warmup + run.duration;

    // ---- Partition the node set into contiguous shards. ----
    let nodes = model.take_nodes();
    let n = nodes.len();
    let shard_count = shards.min(n).max(1);
    let bounds: Vec<usize> = (0..=shard_count).map(|s| s * n / shard_count).collect();
    let mut shard_of = vec![0u32; n];
    for s in 0..shard_count {
        for slot in &mut shard_of[bounds[s]..bounds[s + 1]] {
            *slot = s as u32;
        }
    }
    let mut blocks: Vec<Vec<Node>> = Vec::with_capacity(shard_count);
    {
        let mut rest = nodes;
        for s in (0..shard_count).rev() {
            blocks.push(rest.split_off(bounds[s]));
        }
        debug_assert!(rest.is_empty());
        blocks.reverse();
    }
    let mut workers: Vec<ShardWorker> = Vec::with_capacity(shard_count);
    for (s, block) in blocks.into_iter().enumerate() {
        let mut queue = EventQueue::new();
        if run.order_fuzz != 0 {
            // Any non-zero seed is a valid same-timestamp permutation;
            // give each queue its own so shards don't share one.
            queue.set_order_fuzz(run.order_fuzz.wrapping_add(s as u64 + 2));
        }
        if run.warmup > 0.0 {
            queue.schedule_fast(SimTime::new(run.warmup), ShardEvent::EndWarmup);
        }
        // Every worker builds the full fleet's timeline (bit-identical
        // across copies) but consumes only its own nodes' streams.
        let mut timeline = FailureTimeline::new(&config.failure, n, &rng);
        for li in 0..block.len() {
            let gi = bounds[s] + li;
            if let Some((down, up)) = timeline.next_outage(gi) {
                queue.schedule_fast(
                    SimTime::new(down),
                    ShardEvent::Down {
                        node: NodeId::new(gi as u32),
                        up_at: up,
                    },
                );
            }
        }
        let len = block.len();
        workers.push(ShardWorker {
            shard: s,
            base: bounds[s],
            nodes: block,
            queue,
            timeline,
            rec_seq: vec![0; len],
            scratch: Vec::new(),
            discard_buf: Vec::new(),
            lost_buf: Vec::new(),
            preemptive: config.preemptive,
            overload: config.overload,
            events: 0,
        });
    }

    // ---- Manager state; replicate the serial Init exactly. ----
    let mut calendar: EventQueue<CalEntry> = EventQueue::new();
    let mut mgr_queue: EventQueue<Event> = EventQueue::new();
    if run.order_fuzz != 0 {
        calendar.set_order_fuzz(run.order_fuzz);
        mgr_queue.set_order_fuzz(run.order_fuzz.wrapping_add(1));
    }
    let mut sequencer = Sequencer::new(&mut model, n);
    {
        let mut sink = ManagerSink {
            now: 0.0,
            calendar: &mut calendar,
            queue: &mut mgr_queue,
        };
        model.schedule_next_global(&mut sink);
    }
    if run.warmup > 0.0 {
        mgr_queue.schedule_fast(SimTime::new(run.warmup), Event::EndWarmup);
    }

    let mailboxes: Vec<Mailbox<Handoff>> = (0..shard_count)
        .map(|_| Mailbox::with_capacity(mailbox_capacity))
        .collect();
    let recboxes: Vec<Mailbox<Record>> = (0..shard_count)
        .map(|_| Mailbox::with_capacity(mailbox_capacity))
        .collect();
    let shared = Shared::new(shard_count + 1);

    // The serial engine's Init pop; dropped hand-offs are added as they
    // occur (their serial counterpart is a popped-and-dropped
    // SubtaskArrive event).
    let mut manager_events: u64 = 1;
    let mut dropped: u64 = 0;
    let mut rec_buf: Vec<Record> = Vec::new();

    // ---- Prime the first window [0, T₁). ----
    let mut bound = lookahead.min(horizon);
    let mut inclusive = bound >= horizon;
    sequencer.generate(&mut model, &mut calendar, bound, inclusive);
    // No workers are running yet, so a priming overflow returns
    // directly.
    drain_calendar(
        &mut model,
        &mut calendar,
        &mut mgr_queue,
        bound,
        inclusive,
        &mailboxes,
        &shard_of,
        &mut dropped,
    )?;
    shared.publish(bound, inclusive);

    let mut finished: Vec<ShardWorker> = Vec::with_capacity(shard_count);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shard_count);
        for (s, worker) in workers.drain(..).enumerate() {
            let shared = &shared;
            let inbox = &mailboxes[s];
            let recbox = &recboxes[s];
            handles.push(scope.spawn(move || worker.run(shared, inbox, recbox)));
        }
        loop {
            shared.barrier.wait(); // release shards into the window
            shared.barrier.wait(); // window done; records are in
            if shared.failed.load(Ordering::Acquire) {
                // A worker overflowed its record mailbox: stop cleanly.
                // The error itself is picked up after the scope ends.
                shared.done.store(true, Ordering::Release);
                shared.barrier.wait(); // release shards so they observe `done`
                break;
            }
            rec_buf.clear();
            for recbox in &recboxes {
                recbox.drain_into(&mut rec_buf);
            }
            rec_buf.sort_unstable_by_key(|r| (r.time.to_bits(), r.node.index(), r.seq));
            manager_events += merge_window(
                &mut model,
                &rec_buf,
                &mut calendar,
                &mut mgr_queue,
                bound,
                inclusive,
            );
            // Next window: advance by the lookahead, clamped to the
            // horizon; the final (inclusive) window repeats until no
            // delivery lands at or before the horizon anymore.
            let (next_bound, next_inclusive) = if inclusive {
                (bound, true)
            } else {
                let nb = (bound + lookahead).min(horizon);
                (nb, nb >= horizon)
            };
            sequencer.generate(&mut model, &mut calendar, next_bound, next_inclusive);
            let pushed = drain_calendar(
                &mut model,
                &mut calendar,
                &mut mgr_queue,
                next_bound,
                next_inclusive,
                &mailboxes,
                &shard_of,
                &mut dropped,
            );
            let pushed = match pushed {
                Ok(pushed) => pushed,
                Err(err) => {
                    shared.fail(err);
                    shared.done.store(true, Ordering::Release);
                    shared.barrier.wait(); // release shards so they observe `done`
                    break;
                }
            };
            // A withheld (doomed) hand-off pushes nothing but leaves a
            // loss event on the manager queue at or before the horizon;
            // the next merge must still process it (and its re-dispatch
            // may put a delivery back in the calendar), so the final
            // window is only done when both are empty.
            let mgr_pending = mgr_queue.peek_time().is_some_and(|t| t.as_f64() <= horizon);
            if inclusive && pushed == 0 && !mgr_pending {
                shared.done.store(true, Ordering::Release);
                shared.barrier.wait(); // release shards so they observe `done`
                break;
            }
            bound = next_bound;
            inclusive = next_inclusive;
            shared.publish(bound, inclusive);
        }
        for handle in handles {
            finished.push(handle.join().expect("shard worker panicked"));
        }
    });
    if let Some(err) = shared.error.lock().expect("no poisoned lock").take() {
        return Err(err);
    }

    // ---- Reassemble and report, exactly like the serial harness. ----
    let mut shard_events: u64 = 0;
    let mut nodes_back: Vec<Node> = Vec::with_capacity(n);
    for worker in finished {
        shard_events += worker.events;
        nodes_back.extend(worker.nodes);
    }
    model.put_nodes(nodes_back);
    let horizon_t = SimTime::new(horizon);
    let result = RunResult {
        metrics: model.metrics().clone(),
        node_utilization: model
            .nodes()
            .iter()
            .map(|node| node.utilization(horizon_t))
            .collect(),
        node_queue_length: model
            .nodes()
            .iter()
            .map(|node| node.mean_queue_length(horizon_t))
            .collect(),
        end_time: horizon,
        events: manager_events + dropped + shard_events,
    };
    Ok((result, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkModel;
    use crate::runner::run_once;
    use sda_core::SdaStrategy;

    fn networked(strategy: SdaStrategy, delay: f64) -> SystemConfig {
        let mut cfg = SystemConfig::ssp_baseline(strategy);
        cfg.network = NetworkModel::Constant { delay };
        cfg
    }

    #[test]
    fn sharded_matches_serial_on_constant_network() {
        let cfg = networked(SdaStrategy::eqf_ud(), 1.5);
        let run = RunConfig {
            warmup: 200.0,
            duration: 3_000.0,
            seed: 0x51AD,
            order_fuzz: 0,
        };
        let serial = run_once(&cfg, &run).unwrap();
        let sharded = run_sharded(&cfg, &run, 2).unwrap();
        assert_eq!(serial, sharded, "2-shard run must match serial bit-for-bit");
    }

    #[test]
    fn sharded_is_invariant_across_shard_counts() {
        let cfg = networked(SdaStrategy::ud_div1(), 0.75);
        let run = RunConfig {
            warmup: 150.0,
            duration: 2_000.0,
            seed: 0xC047,
            order_fuzz: 0,
        };
        let two = run_sharded(&cfg, &run, 2).unwrap();
        let three = run_sharded(&cfg, &run, 3).unwrap();
        let six = run_sharded(&cfg, &run, 6).unwrap();
        assert_eq!(two, three, "2 vs 3 shards");
        assert_eq!(two, six, "2 vs 6 shards");
    }

    #[test]
    fn spin_barrier_synchronizes() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                    barrier.wait();
                });
            }
        });
    }

    #[test]
    fn aborttardy_sharded_leaks_no_task_slots() {
        // Firm-deadline overload with cross-shard hand-offs in flight:
        // every abort path must settle the outstanding accounting, so
        // the run ends with a bounded in-flight count even though
        // hand-offs already forwarded to shards execute anyway.
        let mut cfg = networked(SdaStrategy::ud_ud(), 0.5);
        cfg.overload = OverloadPolicy::AbortTardy;
        cfg.workload.load = 0.95;
        let run = RunConfig {
            warmup: 100.0,
            duration: 2_500.0,
            seed: 0xF1FE,
            order_fuzz: 0,
        };
        let (result, model) = run_sharded_inner(&cfg, &run, 3).unwrap();
        assert!(
            result.metrics.aborted_globals > 0,
            "overload config must abort tasks for this test to bite"
        );
        let in_flight = model.tasks_in_flight();
        let completed = result.metrics.global.completed();
        assert!(
            in_flight < 200,
            "{in_flight} tasks still in flight after {completed} completions — leaked slots?"
        );
        // Invariant across shard counts despite the divergent abort
        // semantics: the drop-at-drain decisions are manager-side.
        let again = run_sharded(&cfg, &run, 2).unwrap();
        assert_eq!(result, again, "AbortTardy must stay shard-count invariant");
    }

    #[test]
    fn scripted_churn_matches_serial_across_shard_counts() {
        use crate::failure::{DownInterval, FailureModel};
        let mut cfg = networked(SdaStrategy::eqf_ud(), 1.0);
        cfg.failure = FailureModel::Scripted {
            downs: vec![
                DownInterval {
                    node: 0,
                    from: 300.0,
                    until: 700.0,
                },
                DownInterval {
                    node: 3,
                    from: 500.0,
                    until: 650.0,
                },
                DownInterval {
                    node: 0,
                    from: 1_400.0,
                    until: 1_500.0,
                },
            ],
        };
        let run = RunConfig {
            warmup: 200.0,
            duration: 2_500.0,
            seed: 0xC42,
            order_fuzz: 0,
        };
        let serial = run_once(&cfg, &run).unwrap();
        assert!(
            serial.metrics.lost_subtasks > 0,
            "scenario must lose in-flight subtasks for the test to bite"
        );
        for shards in [2, 3, 6] {
            let sharded = run_sharded(&cfg, &run, shards).unwrap();
            assert_eq!(
                serial, sharded,
                "{shards}-shard churn run must match serial"
            );
        }
    }

    #[test]
    fn exponential_churn_matches_serial_across_shard_counts() {
        use crate::failure::FailureModel;
        let mut cfg = networked(SdaStrategy::ud_div1(), 0.5);
        cfg.failure = FailureModel::Exponential {
            mttf: 400.0,
            mttr: 60.0,
        };
        let run = RunConfig {
            warmup: 150.0,
            duration: 2_000.0,
            seed: 0xFA11,
            order_fuzz: 0,
        };
        let serial = run_once(&cfg, &run).unwrap();
        assert!(
            serial.metrics.lost_locals > 0,
            "random outages must hit some queued local work"
        );
        for shards in [2, 3, 6] {
            let sharded = run_sharded(&cfg, &run, shards).unwrap();
            assert_eq!(
                serial, sharded,
                "{shards}-shard exponential-churn run must match serial"
            );
        }
    }

    #[test]
    fn churn_loss_at_the_warmup_boundary_matches_serial() {
        // Regression: a hand-off lost just after the warmup boundary
        // must be counted identically in both engines. The sharded
        // drain detects the doomed delivery at forward time; if the
        // loss were *processed* then too, the `EndWarmup` metrics reset
        // — which the window merge has not yet reached — would wipe a
        // loss the serial engine counts (this seed lineage, through the
        // replication harness, produces exactly that straddle; it is
        // the `ext_churn --smoke` cell that first caught the bug).
        use crate::failure::FailureModel;
        use crate::runner::{run_replications_sharded, run_replications_with_threads};
        let mut cfg = SystemConfig::combined_baseline(SdaStrategy::ud_div1());
        cfg.workload.load = 0.6;
        cfg.network = NetworkModel::Constant { delay: 0.5 };
        cfg.failure = FailureModel::Exponential {
            mttf: 400.0,
            mttr: 40.0,
        };
        let run = RunConfig {
            warmup: 200.0,
            duration: 1_500.0,
            seed: 0x5DA_0003,
            order_fuzz: 0,
        };
        let serial = run_replications_with_threads(&cfg, &run, 1, 1).unwrap();
        assert!(serial.runs[0].metrics.lost_subtasks > 0);
        for shards in [2, 3, 6] {
            let sharded = run_replications_sharded(&cfg, &run, 1, shards).unwrap();
            assert_eq!(
                serial.runs, sharded.runs,
                "{shards}-shard replication must match serial"
            );
        }
    }

    #[test]
    fn churn_with_aborttardy_leaks_no_slots_sharded() {
        use crate::failure::FailureModel;
        let mut cfg = networked(SdaStrategy::ud_ud(), 0.5);
        cfg.overload = OverloadPolicy::AbortTardy;
        cfg.workload.load = 0.9;
        cfg.failure = FailureModel::Exponential {
            mttf: 250.0,
            mttr: 40.0,
        };
        let run = RunConfig {
            warmup: 100.0,
            duration: 2_500.0,
            seed: 0x10EAF,
            order_fuzz: 0,
        };
        let (result, model) = run_sharded_inner(&cfg, &run, 3).unwrap();
        assert!(result.metrics.aborted_globals > 0);
        assert!(result.metrics.lost_subtasks > 0);
        let in_flight = model.tasks_in_flight();
        assert!(
            in_flight < 200,
            "{in_flight} tasks still in flight — abort+churn leaked slots?"
        );
        // Lost work is terminal: it must never enter the response-time
        // sample, so observed responses + terminal outcomes add up.
        let m = &result.metrics;
        assert_eq!(
            m.global.response().count() + m.aborted_globals + m.abandoned_globals,
            m.global.completed(),
            "every global task resolves exactly once"
        );
        assert_eq!(
            m.local.response().count() + m.aborted_locals + m.lost_locals,
            m.local.completed(),
            "every local job resolves exactly once"
        );
    }

    #[test]
    fn tiny_mailbox_overflows_gracefully() {
        let cfg = networked(SdaStrategy::eqf_ud(), 0.5);
        let run = RunConfig {
            warmup: 100.0,
            duration: 2_000.0,
            seed: 0x0F10,
            order_fuzz: 0,
        };
        match run_sharded_inner_with_capacity(&cfg, &run, 2, 4) {
            Err(RunError::MailboxOverflow {
                shard,
                window,
                capacity,
                kind,
            }) => {
                assert!(shard < 2, "shard index out of range: {shard}");
                assert_eq!(capacity, 4);
                assert!(window.is_finite() && window >= 0.0);
                assert!(kind == "record" || kind == "delivery", "kind = {kind}");
            }
            Err(other) => panic!("expected MailboxOverflow, got {other}"),
            Ok(_) => panic!("capacity-4 mailboxes must overflow at baseline load"),
        }
    }

    #[test]
    fn order_fuzz_changes_tie_breaks_but_not_invariants() {
        // A seeded same-timestamp permutation must not break conservation:
        // across ≥8 fuzz seeds every job still resolves exactly once and
        // no task slots leak, with churn active the whole run.
        use crate::failure::{DownInterval, FailureModel};
        let mut cfg = networked(SdaStrategy::eqf_ud(), 1.0);
        cfg.failure = FailureModel::Scripted {
            downs: vec![
                DownInterval {
                    node: 1,
                    from: 250.0,
                    until: 600.0,
                },
                DownInterval {
                    node: 4,
                    from: 900.0,
                    until: 1_100.0,
                },
            ],
        };
        for fuzz in 1..=8u64 {
            let run = RunConfig {
                warmup: 150.0,
                duration: 1_800.0,
                seed: 0xF022,
                order_fuzz: fuzz * 0x9E37,
            };
            let serial = run_once(&cfg, &run).unwrap();
            let (sharded, model) = run_sharded_inner(&cfg, &run, 3).unwrap();
            for (label, m) in [("serial", &serial.metrics), ("sharded", &sharded.metrics)] {
                assert_eq!(
                    m.global.response().count() + m.aborted_globals + m.abandoned_globals,
                    m.global.completed(),
                    "fuzz {fuzz} {label}: global accounting broke"
                );
                assert_eq!(
                    m.local.response().count() + m.aborted_locals + m.lost_locals,
                    m.local.completed(),
                    "fuzz {fuzz} {label}: local accounting broke"
                );
            }
            assert!(
                model.tasks_in_flight() < 100,
                "fuzz {fuzz}: leaked task slots"
            );
        }
    }
}
