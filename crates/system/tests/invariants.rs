//! Randomized whole-system invariant tests: whatever the configuration,
//! certain accounting identities must hold after any run.

use proptest::prelude::*;

use sda_core::{NodeId, ParallelStrategy, SdaStrategy, SerialStrategy, TaskId};
use sda_sched::{Job, Policy};
use sda_sim::SimTime;
use sda_system::{run_once, FailureModel, Node, OverloadPolicy, RunConfig, SystemConfig};
use sda_workload::GlobalShape;

fn configs() -> impl Strategy<Value = SystemConfig> {
    (
        0.1f64..0.85,  // load
        0.0f64..1.0,   // frac_local
        0usize..3,     // shape selector
        0usize..4,     // serial strategy
        0usize..3,     // parallel strategy
        0usize..4,     // policy
        any::<bool>(), // abort
        any::<bool>(), // preemptive
    )
        .prop_map(
            |(load, frac_local, shape_sel, ser, par, pol, abort, preemptive)| {
                let serial = [
                    SerialStrategy::UltimateDeadline,
                    SerialStrategy::EffectiveDeadline,
                    SerialStrategy::EqualSlack,
                    SerialStrategy::EqualFlexibility,
                ][ser];
                let parallel = [
                    ParallelStrategy::UltimateDeadline,
                    ParallelStrategy::Div { x: 1.0 },
                    ParallelStrategy::GlobalsFirst,
                ][par];
                let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(serial, parallel));
                cfg.workload.load = load;
                cfg.workload.frac_local = frac_local;
                cfg.workload.shape = match shape_sel {
                    0 => GlobalShape::Serial { m: 3 },
                    1 => GlobalShape::Parallel { m: 4 },
                    _ => GlobalShape::SerialParallel {
                        stages: 2,
                        branches: 2,
                    },
                };
                cfg.policy = Policy::ALL[pol];
                cfg.overload = if abort {
                    OverloadPolicy::AbortTardy
                } else {
                    OverloadPolicy::NoAbort
                };
                cfg.preemptive = preemptive;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_identities_hold(cfg in configs(), seed in any::<u64>()) {
        let run = RunConfig {
            warmup: 200.0,
            duration: 3_000.0,
            seed,
            order_fuzz: 0,
        };
        let result = run_once(&cfg, &run).unwrap();
        let m = &result.metrics;

        // Utilizations are physical.
        for &u in &result.node_utilization {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
        // Misses never exceed completions.
        prop_assert!(m.local.missed() <= m.local.completed());
        prop_assert!(m.global.missed() <= m.global.completed());
        // Abort counters only move under the abort policy.
        if cfg.overload == OverloadPolicy::NoAbort {
            prop_assert_eq!(m.aborted_locals, 0);
            prop_assert_eq!(m.aborted_globals, 0);
        }
        // Aborts are a subset of misses.
        prop_assert!(m.aborted_globals <= m.global.missed());
        prop_assert!(m.aborted_locals <= m.local.missed());
        // Tardiness is non-negative and bounded by... nothing, but its
        // mean must be finite; response times are positive when present.
        if m.local.response().count() > 0 {
            prop_assert!(m.local.response().mean() > 0.0);
            prop_assert!(m.local.response().min() >= 0.0);
        }
        if m.global.response().count() > 0 {
            prop_assert!(m.global.response().mean() > 0.0);
        }
        // With frac_local = 1 no global ever completes, and vice versa.
        if cfg.workload.frac_local >= 1.0 {
            prop_assert_eq!(m.global.completed(), 0);
        }
        if cfg.workload.frac_local <= 0.0 {
            prop_assert_eq!(m.local.completed(), 0);
        }
        // The run is reproducible.
        let again = run_once(&cfg, &run).unwrap();
        prop_assert_eq!(&again, &result);
    }

    /// The identities survive fleet churn: exponential crash/repair on
    /// top of any configuration, with every lost job counted exactly
    /// once and the run still bit-reproducible.
    #[test]
    fn accounting_survives_churn(
        cfg in configs(),
        seed in any::<u64>(),
        mttf in 150.0f64..800.0,
        mttr in 10.0f64..120.0,
    ) {
        let mut cfg = cfg;
        cfg.failure = FailureModel::Exponential { mttf, mttr };
        let run = RunConfig {
            warmup: 200.0,
            duration: 3_000.0,
            seed,
            order_fuzz: 0,
        };
        let result = run_once(&cfg, &run).unwrap();
        let m = &result.metrics;
        // Every job resolves exactly once: response observation, abort,
        // loss or abandonment — never two of them.
        prop_assert_eq!(
            m.global.response().count() as u64 + m.aborted_globals + m.abandoned_globals,
            m.global.completed()
        );
        prop_assert_eq!(
            m.local.response().count() as u64 + m.aborted_locals + m.lost_locals,
            m.local.completed()
        );
        // Re-dispatch only ever reacts to a lost subtask copy (copies
        // lost on already-aborted or abandoned tasks react to nothing).
        prop_assert!(m.redispatches <= m.lost_subtasks);
        for &u in &result.node_utilization {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
        let again = run_once(&cfg, &run).unwrap();
        prop_assert_eq!(&again, &result);
    }

    /// A node crash is a mass cancellation: every queued job plus the
    /// in-service one comes back exactly once in service order, the
    /// service epoch bumps (staling any in-flight completion handle),
    /// and the vacated slab slots are reused verbatim after recovery.
    #[test]
    fn node_crash_cancels_everything_and_leaks_nothing(
        deadlines in prop::collection::vec(1.0f64..100.0, 1..40),
        start_one in any::<bool>(),
    ) {
        let t0 = SimTime::from(0.0);
        let mut node = Node::new(NodeId::new(0), Policy::EarliestDeadlineFirst);
        for (i, &dl) in deadlines.iter().enumerate() {
            node.enqueue(t0, Job::local(TaskId::new(i as u64), 0.0, 1.0, dl));
        }
        let mut expected = deadlines.len();
        if start_one {
            prop_assert!(node.try_start(t0).is_some());
            expected = deadlines.len(); // one moved from queue to service
        }
        let capacity = node.slab_capacity();
        let epoch = node.service_epoch();
        let mut lost = Vec::new();
        node.fail(SimTime::from(1.0), &mut lost);
        prop_assert_eq!(lost.len(), expected, "all jobs surrendered exactly once");
        prop_assert!(node.is_down());
        prop_assert!(!node.is_busy());
        prop_assert_eq!(node.queue_len(), 0);
        prop_assert!(
            !node.completion_is_current(epoch),
            "stale completion handles must be dead after a crash"
        );
        node.recover(SimTime::from(2.0));
        prop_assert!(!node.is_down());
        for job in lost {
            node.enqueue(SimTime::from(2.0), job);
        }
        prop_assert_eq!(
            node.slab_capacity(),
            capacity,
            "crash-vacated slots must be reused on rejoin"
        );
    }
}
