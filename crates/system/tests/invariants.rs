//! Randomized whole-system invariant tests: whatever the configuration,
//! certain accounting identities must hold after any run.

use proptest::prelude::*;

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_sched::Policy;
use sda_system::{run_once, OverloadPolicy, RunConfig, SystemConfig};
use sda_workload::GlobalShape;

fn configs() -> impl Strategy<Value = SystemConfig> {
    (
        0.1f64..0.85,  // load
        0.0f64..1.0,   // frac_local
        0usize..3,     // shape selector
        0usize..4,     // serial strategy
        0usize..3,     // parallel strategy
        0usize..4,     // policy
        any::<bool>(), // abort
        any::<bool>(), // preemptive
    )
        .prop_map(
            |(load, frac_local, shape_sel, ser, par, pol, abort, preemptive)| {
                let serial = [
                    SerialStrategy::UltimateDeadline,
                    SerialStrategy::EffectiveDeadline,
                    SerialStrategy::EqualSlack,
                    SerialStrategy::EqualFlexibility,
                ][ser];
                let parallel = [
                    ParallelStrategy::UltimateDeadline,
                    ParallelStrategy::Div { x: 1.0 },
                    ParallelStrategy::GlobalsFirst,
                ][par];
                let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(serial, parallel));
                cfg.workload.load = load;
                cfg.workload.frac_local = frac_local;
                cfg.workload.shape = match shape_sel {
                    0 => GlobalShape::Serial { m: 3 },
                    1 => GlobalShape::Parallel { m: 4 },
                    _ => GlobalShape::SerialParallel {
                        stages: 2,
                        branches: 2,
                    },
                };
                cfg.policy = Policy::ALL[pol];
                cfg.overload = if abort {
                    OverloadPolicy::AbortTardy
                } else {
                    OverloadPolicy::NoAbort
                };
                cfg.preemptive = preemptive;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_identities_hold(cfg in configs(), seed in any::<u64>()) {
        let run = RunConfig {
            warmup: 200.0,
            duration: 3_000.0,
            seed,
        };
        let result = run_once(&cfg, &run).unwrap();
        let m = &result.metrics;

        // Utilizations are physical.
        for &u in &result.node_utilization {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
        // Misses never exceed completions.
        prop_assert!(m.local.missed() <= m.local.completed());
        prop_assert!(m.global.missed() <= m.global.completed());
        // Abort counters only move under the abort policy.
        if cfg.overload == OverloadPolicy::NoAbort {
            prop_assert_eq!(m.aborted_locals, 0);
            prop_assert_eq!(m.aborted_globals, 0);
        }
        // Aborts are a subset of misses.
        prop_assert!(m.aborted_globals <= m.global.missed());
        prop_assert!(m.aborted_locals <= m.local.missed());
        // Tardiness is non-negative and bounded by... nothing, but its
        // mean must be finite; response times are positive when present.
        if m.local.response().count() > 0 {
            prop_assert!(m.local.response().mean() > 0.0);
            prop_assert!(m.local.response().min() >= 0.0);
        }
        if m.global.response().count() > 0 {
            prop_assert!(m.global.response().mean() > 0.0);
        }
        // With frac_local = 1 no global ever completes, and vice versa.
        if cfg.workload.frac_local >= 1.0 {
            prop_assert_eq!(m.global.completed(), 0);
        }
        if cfg.workload.frac_local <= 0.0 {
            prop_assert_eq!(m.local.completed(), 0);
        }
        // The run is reproducible.
        let again = run_once(&cfg, &run).unwrap();
        prop_assert_eq!(&again, &result);
    }
}
