//! Property tests for [`NetworkModel`] — the PR-3 surface that shipped
//! with example-based tests only.
//!
//! Pins: `Matrix` validation rejects wrong dimensions and poisoned
//! entries with *indexed* errors; `expected_hop_delay` is non-negative,
//! zero for `Zero`, and the mean over entries for `Matrix`; and
//! `sample_delay` returns exactly the matrix entry for **every**
//! (src, dst) pair, including the process-manager endpoint, without
//! consuming randomness.

use proptest::prelude::*;

use sda_core::NodeId;
use sda_system::NetworkModel;
use sda_workload::ConfigError;

/// A random valid delay matrix over `nodes + 1` endpoints.
fn matrix(nodes: usize, rng_rows: &[f64]) -> Vec<Vec<f64>> {
    let side = nodes + 1;
    (0..side)
        .map(|i| {
            (0..side)
                .map(|j| rng_rows[(i * side + j) % rng_rows.len()].abs())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A square matrix of finite non-negative entries over `nodes + 1`
    /// endpoints validates; its expected hop delay is the entry mean and
    /// is non-negative.
    #[test]
    fn valid_matrices_validate_and_average(
        nodes in 1usize..8,
        entries in prop::collection::vec(0.0f64..5.0, 81),
    ) {
        let delays = matrix(nodes, &entries);
        let model = NetworkModel::Matrix { delays: delays.clone() };
        prop_assert!(model.validate(nodes).is_ok());
        let expected = model.expected_hop_delay();
        prop_assert!(expected >= 0.0);
        let side = nodes + 1;
        let mean = delays.iter().flatten().sum::<f64>() / (side * side) as f64;
        prop_assert!((expected - mean).abs() < 1e-12);
    }

    /// Wrong dimensions — too few/many rows, or one short row — are
    /// rejected for every node count.
    #[test]
    fn wrong_dimensions_are_rejected(
        nodes in 1usize..8,
        off_by in 1usize..3,
        entries in prop::collection::vec(0.0f64..5.0, 81),
    ) {
        // Wrong side length (nodes + 1 ± off_by).
        let too_small = matrix(nodes.saturating_sub(off_by), &entries);
        let model = NetworkModel::Matrix { delays: too_small };
        prop_assert!(model.validate(nodes).is_err());
        let too_big = matrix(nodes + off_by, &entries);
        prop_assert!(NetworkModel::Matrix { delays: too_big }.validate(nodes).is_err());
        // Ragged: one row one entry short.
        let mut ragged = matrix(nodes, &entries);
        let victim = off_by % ragged.len();
        ragged[victim].pop();
        prop_assert!(NetworkModel::Matrix { delays: ragged }.validate(nodes).is_err());
    }

    /// Poisoning any single entry (negative, NaN or infinite) produces
    /// `ConfigError::InvalidEntry` carrying exactly that entry's flat
    /// index.
    #[test]
    fn poisoned_entries_are_reported_with_their_index(
        nodes in 1usize..7,
        row in 0usize..7,
        col in 0usize..7,
        poison_sel in 0usize..3,
        entries in prop::collection::vec(0.0f64..5.0, 81),
    ) {
        let side = nodes + 1;
        let (row, col) = (row % side, col % side);
        let mut delays = matrix(nodes, &entries);
        let poison = [-1.5, f64::NAN, f64::INFINITY][poison_sel];
        delays[row][col] = poison;
        let model = NetworkModel::Matrix { delays };
        match model.validate(nodes) {
            Err(ConfigError::InvalidEntry { what, index, value, .. }) => {
                prop_assert_eq!(what, "network delay matrix");
                prop_assert_eq!(index, row * side + col);
                prop_assert!(value.is_nan() == poison.is_nan());
                if !poison.is_nan() {
                    prop_assert_eq!(value, poison);
                }
            }
            other => prop_assert!(false, "expected InvalidEntry, got {:?}", other),
        }
    }

    /// `sample_delay` returns exactly the matrix entry for every
    /// (src, dst) pair — nodes and the process-manager endpoint alike —
    /// and consumes no randomness doing it.
    #[test]
    fn matrix_sampling_matches_every_pair(
        nodes in 1usize..7,
        entries in prop::collection::vec(0.0f64..5.0, 81),
        seed in any::<u64>(),
    ) {
        use sda_sim::rng::RngFactory;
        let delays = matrix(nodes, &entries);
        let model = NetworkModel::Matrix { delays: delays.clone() };
        prop_assert!(model.validate(nodes).is_ok());
        let mut rng = RngFactory::new(seed).stream("net-prop");
        let endpoint = |i: usize| -> Option<NodeId> {
            (i < nodes).then(|| NodeId::new(i as u32))
        };
        for (from, row) in delays.iter().enumerate() {
            for (to, &want) in row.iter().enumerate() {
                let got = model.sample_delay(endpoint(from), endpoint(to), &mut rng);
                prop_assert_eq!(got.to_bits(), want.to_bits(), "pair ({}, {})", from, to);
                prop_assert!(got >= 0.0);
            }
        }
        // Determinism doubles as a no-randomness check: a fresh stream
        // yields the same values, so the matrix path drew nothing.
        let mut rng2 = RngFactory::new(seed.wrapping_add(1)).stream("net-prop-b");
        for (from, row) in delays.iter().enumerate() {
            for (to, &want) in row.iter().enumerate() {
                prop_assert_eq!(
                    model.sample_delay(endpoint(from), endpoint(to), &mut rng2).to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    /// The non-matrix models: `Zero` is exactly free, `Constant` is its
    /// delay, `Exponential` averages its mean — all non-negative.
    #[test]
    fn scalar_models_expectations(delay in 0.0f64..4.0, seed in any::<u64>()) {
        use sda_sim::rng::RngFactory;
        prop_assert_eq!(NetworkModel::Zero.expected_hop_delay(), 0.0);
        let mut rng = RngFactory::new(seed).stream("net-scalar");
        prop_assert_eq!(
            NetworkModel::Zero.sample_delay(None, Some(NodeId::new(0)), &mut rng),
            0.0
        );
        let c = NetworkModel::Constant { delay };
        prop_assert!(c.validate(3).is_ok());
        prop_assert_eq!(c.expected_hop_delay().to_bits(), delay.to_bits());
        prop_assert_eq!(
            c.sample_delay(Some(NodeId::new(1)), None, &mut rng).to_bits(),
            delay.to_bits()
        );
        prop_assume!(delay > 0.01);
        let e = NetworkModel::Exponential { mean: delay };
        prop_assert!(e.validate(3).is_ok());
        prop_assert_eq!(e.expected_hop_delay().to_bits(), delay.to_bits());
        prop_assert!(e.sample_delay(None, None, &mut rng) >= 0.0);
    }
}
