//! Property-based tests: every discipline is a stable sort by its key,
//! with elevated jobs strictly first.

use proptest::prelude::*;

use sda_core::{PriorityClass, TaskId};
use sda_sched::{Job, Policy, ReadyQueue};

#[derive(Debug, Clone)]
struct JobSpec {
    deadline: f64,
    pex: f64,
    elevated: bool,
}

fn job_specs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (0.0f64..100.0, 0.1f64..10.0, any::<bool>()).prop_map(|(deadline, pex, elevated)| {
            JobSpec {
                // Quantize so key ties happen and FIFO order is exercised.
                deadline: (deadline * 2.0).floor() / 2.0,
                pex: (pex * 2.0).floor() / 2.0,
                elevated,
            }
        }),
        0..150,
    )
}

fn key(policy: Policy, j: &Job) -> f64 {
    match policy {
        Policy::Fcfs => 0.0,
        Policy::EarliestDeadlineFirst => j.deadline,
        Policy::ShortestJobFirst => j.pex,
        Policy::MinimumLaxityFirst => j.deadline - j.pex,
    }
}

proptest! {
    /// Pop order equals a stable sort by (class, key, arrival order).
    #[test]
    fn pop_order_is_stable_key_sort(specs in job_specs(), policy_idx in 0usize..4) {
        let policy = Policy::ALL[policy_idx];
        let mut q = ReadyQueue::new(policy);
        let mut reference: Vec<(u8, f64, usize)> = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let mut job = Job::local(TaskId::new(i as u64), i as f64, s.pex, s.deadline);
            job.pex = s.pex;
            if s.elevated {
                job.priority = PriorityClass::Elevated;
            }
            reference.push((u8::from(!s.elevated), key(policy, &job), i));
            q.push(job);
        }
        reference.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let popped: Vec<usize> = q
            .drain_ordered()
            .iter()
            .map(|j| j.enqueue_time as usize)
            .collect();
        let expect: Vec<usize> = reference.iter().map(|r| r.2).collect();
        prop_assert_eq!(popped, expect);
    }

    /// Interleaving pushes and pops never loses or duplicates a job.
    #[test]
    fn conservation_under_interleaving(
        ops in prop::collection::vec((any::<bool>(), 0.0f64..50.0), 0..300),
        policy_idx in 0usize..4,
    ) {
        let mut q = ReadyQueue::new(Policy::ALL[policy_idx]);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for (i, (push, dl)) in ops.iter().enumerate() {
            if *push {
                q.push(Job::local(TaskId::new(i as u64), 0.0, 1.0, *dl));
                pushed += 1;
            } else if q.pop().is_some() {
                popped += 1;
            }
        }
        popped += q.drain_ordered().len() as u64;
        prop_assert_eq!(pushed, popped);
        prop_assert!(q.is_empty());
    }

    /// Mass cancellation (a node crash wiping its queue): `purge_into`
    /// returns every queued job exactly once in service order, leaves
    /// the queue empty, and vacates every slab slot for verbatim reuse
    /// — refilling to the same occupancy never grows the slab.
    #[test]
    fn purge_returns_all_jobs_and_frees_all_slots(
        specs in job_specs(),
        policy_idx in 0usize..4,
    ) {
        let policy = Policy::ALL[policy_idx];
        let mut q = ReadyQueue::new(policy);
        let mut twin = ReadyQueue::new(policy);
        for (i, s) in specs.iter().enumerate() {
            let mut job = Job::local(TaskId::new(i as u64), i as f64, s.pex, s.deadline);
            job.pex = s.pex;
            if s.elevated {
                job.priority = PriorityClass::Elevated;
            }
            q.push(job);
            twin.push(job);
        }
        let n = q.len();
        let capacity = q.slab_capacity();
        let mut purged = Vec::new();
        q.purge_into(&mut purged);
        prop_assert_eq!(purged.len(), n, "every queued job purged exactly once");
        prop_assert!(q.is_empty());
        // Service order: identical to what popping would have yielded.
        let drained = twin.drain_ordered();
        let purged_ids: Vec<u64> = purged.iter().map(|j| j.enqueue_time as u64).collect();
        let drained_ids: Vec<u64> = drained.iter().map(|j| j.enqueue_time as u64).collect();
        prop_assert_eq!(purged_ids, drained_ids, "purge order is service order");
        // Every slot is back on the free list: refilling to the same
        // occupancy reuses them without growing the slab.
        for job in purged {
            q.push(job);
        }
        prop_assert_eq!(q.slab_capacity(), capacity, "purged slots must be reused");
    }

    /// An elevated job is never popped after a normal job that was
    /// already queued when it arrived.
    #[test]
    fn elevated_jobs_never_wait_behind_normals(specs in job_specs()) {
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        for (i, s) in specs.iter().enumerate() {
            let mut job = Job::local(TaskId::new(i as u64), 0.0, 1.0, s.deadline);
            if s.elevated {
                job.priority = PriorityClass::Elevated;
            }
            q.push(job);
        }
        let order = q.drain_ordered();
        let first_normal = order.iter().position(|j| j.priority == PriorityClass::Normal);
        if let Some(fn_idx) = first_normal {
            for j in &order[fn_idx..] {
                prop_assert_eq!(
                    j.priority,
                    PriorityClass::Normal,
                    "elevated job after a normal one"
                );
            }
        }
    }
}
