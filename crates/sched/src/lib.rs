//! # sda-sched — non-preemptive local real-time schedulers
//!
//! Each node of the paper's system model runs its own scheduler over a
//! single server, with **no preemption** and no cross-node coordination
//! (§3.2, §4.1). This crate provides the ready-queue disciplines the
//! paper's experiments use:
//!
//! * **earliest-deadline-first** (the baseline local policy),
//! * **minimum-laxity-first** (§4.3's robustness variant),
//! * FCFS and shortest-job-first for calibration and comparison.
//!
//! All disciplines respect the two-level class priority of the
//! Globals First (GF) strategy: jobs whose
//! [`PriorityClass`](sda_core::PriorityClass) is `Elevated` are served
//! strictly before `Normal` jobs, with the discipline's own order
//! preserved *within* each class (paper §5.1). When no elevated jobs
//! exist — every non-GF experiment — this is exactly the plain
//! discipline.
//!
//! ```
//! use sda_sched::{Job, Policy, ReadyQueue};
//! use sda_core::TaskId;
//!
//! let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
//! q.push(Job::local(TaskId::new(1), 0.0, 1.0, 9.0));
//! q.push(Job::local(TaskId::new(2), 0.0, 1.0, 4.0));
//! assert_eq!(q.pop().unwrap().deadline, 4.0); // earlier deadline first
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod job;
mod queue;

pub use job::{Job, JobOrigin};
pub use queue::{Policy, ReadyQueue};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// The sharded engine moves each node's scheduler state — its
    /// [`ReadyQueue`] and the [`Job`]s inside — onto a shard worker
    /// thread. Pin the `Send`/`Sync` auto-traits so a future field (an
    /// `Rc`, a raw pointer, a thread-bound cache) can't silently make
    /// node state unshippable and break the parallel engine at a
    /// distance.
    #[test]
    fn scheduler_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Job>();
        assert_send_sync::<JobOrigin>();
        assert_send_sync::<Policy>();
        assert_send_sync::<ReadyQueue>();
    }
}
