//! The unit of work a node's scheduler manages.

use sda_core::{PriorityClass, SubtaskRef, TaskClass, TaskId};

/// Where a job came from: a node-local task, or one subtask of a global
/// task (in which case it carries the reference the process manager needs
/// to advance the task's precedence graph on completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobOrigin {
    /// Generated at this node; lives and dies here.
    Local {
        /// The owning local task.
        task: TaskId,
    },
    /// One simple subtask of a global task.
    Global {
        /// The owning global task.
        task: TaskId,
        /// Which subtask within the task's [`TaskRun`](sda_core::TaskRun).
        subtask: SubtaskRef,
    },
}

impl JobOrigin {
    /// The owning task's id, regardless of class.
    pub fn task(&self) -> TaskId {
        match *self {
            JobOrigin::Local { task } | JobOrigin::Global { task, .. } => task,
        }
    }

    /// The task class this origin implies.
    pub fn class(&self) -> TaskClass {
        match self {
            JobOrigin::Local { .. } => TaskClass::Local,
            JobOrigin::Global { .. } => TaskClass::Global,
        }
    }
}

/// One schedulable unit of work at a node.
///
/// `deadline` is the *virtual* deadline assigned by the SDA strategy (for
/// global subtasks) or the natural deadline (for local tasks); the
/// scheduler never sees anything else — that is the whole point of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Origin (local task or global subtask) with owning-task bookkeeping.
    pub origin: JobOrigin,
    /// Scheduling class; `Elevated` under GF.
    pub priority: PriorityClass,
    /// Arrival time at this node's queue.
    pub enqueue_time: f64,
    /// Real service demand (simulation-only knowledge).
    pub service: f64,
    /// Predicted service demand; what MLF/SJF may consult.
    pub pex: f64,
    /// Virtual (or natural) absolute deadline used for ordering.
    pub deadline: f64,
}

impl Job {
    /// Convenience constructor for a local task's job with perfect
    /// prediction and normal priority.
    pub fn local(task: TaskId, enqueue_time: f64, service: f64, deadline: f64) -> Job {
        Job {
            origin: JobOrigin::Local { task },
            priority: PriorityClass::Normal,
            enqueue_time,
            service,
            pex: service,
            deadline,
        }
    }

    /// Convenience constructor for a global subtask's job.
    pub fn global(
        task: TaskId,
        subtask: SubtaskRef,
        enqueue_time: f64,
        service: f64,
        pex: f64,
        deadline: f64,
        priority: PriorityClass,
    ) -> Job {
        Job {
            origin: JobOrigin::Global { task, subtask },
            priority,
            enqueue_time,
            service,
            pex,
            deadline,
        }
    }

    /// The task class of the owning task.
    pub fn class(&self) -> TaskClass {
        self.origin.class()
    }

    /// Laxity at time `now`: `deadline − now − pex`. Negative laxity
    /// means the job cannot (predictedly) finish in time even if started
    /// immediately.
    pub fn laxity(&self, now: f64) -> f64 {
        self.deadline - now - self.pex
    }

    /// Whether the job's deadline has already passed at `now`.
    pub fn is_tardy(&self, now: f64) -> bool {
        now > self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_accessors() {
        let local = JobOrigin::Local {
            task: TaskId::new(7),
        };
        assert_eq!(local.task(), TaskId::new(7));
        assert_eq!(local.class(), TaskClass::Local);
    }

    #[test]
    fn local_constructor_defaults() {
        let j = Job::local(TaskId::new(1), 2.0, 1.5, 9.0);
        assert_eq!(j.class(), TaskClass::Local);
        assert_eq!(j.priority, PriorityClass::Normal);
        assert_eq!(j.pex, 1.5, "perfect prediction by default");
    }

    #[test]
    fn laxity_and_tardiness() {
        let j = Job::local(TaskId::new(1), 0.0, 2.0, 10.0);
        assert_eq!(j.laxity(0.0), 8.0);
        assert_eq!(j.laxity(9.0), -1.0);
        assert!(!j.is_tardy(10.0));
        assert!(j.is_tardy(10.1));
    }
}
