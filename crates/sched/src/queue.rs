//! Ready-queue disciplines.

use std::fmt;

use serde::{Deserialize, Serialize};

use sda_core::PriorityClass;
use sda_sim::pq::{key_from_f64, MinHeap};

use crate::job::Job;

/// The scheduling discipline a node applies to its ready queue.
///
/// All disciplines here are *non-preemptive* and reduce to a static
/// per-job key (ties broken FIFO):
///
/// | Policy | Key | Notes |
/// |---|---|---|
/// | `Fcfs` | enqueue order | calibration baseline (M/M/1 theory applies) |
/// | `EarliestDeadlineFirst` | `deadline` | the paper's default local policy |
/// | `ShortestJobFirst` | `pex` | size-based comparison point |
/// | `MinimumLaxityFirst` | `deadline − pex` | laxity at dispatch: since every queued job's laxity decreases at the same rate, ordering by laxity at any instant equals ordering by this static key |
///
/// Why MLF's key is static: non-preemptive MLF picks, at dispatch time
/// `t`, the job minimizing `dl − t − pex`. The `−t` term is common to all
/// candidates, so the argmin is the job minimizing `dl − pex` — which
/// never changes while jobs wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First come, first served.
    Fcfs,
    /// Earliest (virtual) deadline first — the paper's baseline.
    EarliestDeadlineFirst,
    /// Shortest predicted job first.
    ShortestJobFirst,
    /// Minimum laxity (`dl − now − pex`) first, evaluated at dispatch.
    MinimumLaxityFirst,
}

impl Policy {
    /// All disciplines, for sweeps.
    pub const ALL: [Policy; 4] = [
        Policy::Fcfs,
        Policy::EarliestDeadlineFirst,
        Policy::ShortestJobFirst,
        Policy::MinimumLaxityFirst,
    ];

    /// Short display name (`FCFS`, `EDF`, `SJF`, `MLF`).
    pub fn short_name(&self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::EarliestDeadlineFirst => "EDF",
            Policy::ShortestJobFirst => "SJF",
            Policy::MinimumLaxityFirst => "MLF",
        }
    }

    /// The static ordering key the discipline assigns to a job (smaller
    /// pops first within a priority class). Exposed so preemption logic
    /// can compare an in-service job against a queued candidate.
    pub fn sort_key(&self, job: &Job) -> f64 {
        match self {
            Policy::Fcfs => 0.0, // sequence number alone decides
            Policy::EarliestDeadlineFirst => job.deadline,
            Policy::ShortestJobFirst => job.pex,
            Policy::MinimumLaxityFirst => job.deadline - job.pex,
        }
    }

    /// Whether `candidate` would be served strictly before `incumbent`
    /// under this discipline (elevated class first, then the key;
    /// FIFO ties do **not** preempt).
    pub fn beats(&self, candidate: &Job, incumbent: &Job) -> bool {
        let rank = |j: &Job| match j.priority {
            sda_core::PriorityClass::Elevated => 0u8,
            sda_core::PriorityClass::Normal => 1u8,
        };
        (rank(candidate), self.sort_key(candidate)) < (rank(incumbent), self.sort_key(incumbent))
    }

    fn key(&self, job: &Job) -> f64 {
        self.sort_key(job)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Packs the full service order — class rank (1 bit), discipline key
/// (64 order-preserving float bits), FIFO sequence (63 bits) — into one
/// `u128` so the heap compares a single integer per sift step. The heap
/// sifts only `(key, slot)` records over the [`Job`] slab; whole jobs
/// never move after being enqueued.
#[inline]
fn pack_key(class_rank: u8, key: f64, seq: u64) -> u128 {
    debug_assert!(seq < (1 << 63), "ready-queue sequence overflow");
    (u128::from(class_rank) << 127) | (u128::from(key_from_f64(key)) << 63) | u128::from(seq)
}

/// A node's ready queue: a heap of packed `(class, key, seq)` keys over
/// a [`Job`] slab, under a [`Policy`], serving `Elevated` jobs strictly
/// before `Normal` ones and breaking ties FIFO.
///
/// Jobs can stay *slab-resident* across their whole node lifetime:
/// [`ReadyQueue::pop_slot`] hands out the slot index of the next job
/// without moving the payload, [`ReadyQueue::job_mut`] mutates it in
/// place (e.g. to burn down remaining service on preemption),
/// [`ReadyQueue::requeue`] re-enters a checked-out slot under a fresh
/// FIFO sequence, and [`ReadyQueue::release`] finally vacates the slot.
/// Dispatch and preemption therefore move indices, not owned `Job`
/// payloads.
///
/// # Examples
///
/// ```
/// use sda_sched::{Job, Policy, ReadyQueue};
/// use sda_core::TaskId;
///
/// let mut q = ReadyQueue::new(Policy::MinimumLaxityFirst);
/// // laxity keys: 9−3 = 6 vs 8−1 = 7 → the first job pops first.
/// let tight = Job::local(TaskId::new(1), 0.0, 3.0, 9.0);
/// let loose = Job::local(TaskId::new(2), 0.0, 1.0, 8.0);
/// q.push(loose);
/// q.push(tight);
/// assert_eq!(q.pop().unwrap().deadline, 9.0);
/// ```
pub struct ReadyQueue {
    policy: Policy,
    heap: MinHeap<u32>,
    /// Slab of queued jobs; the heap payload indexes into it. A slot is
    /// `None` exactly while it sits on the free list.
    slots: Vec<Option<Job>>,
    /// Vacant slab slots available for reuse.
    free: Vec<u32>,
    seq: u64,
}

impl ReadyQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: Policy) -> ReadyQueue {
        ReadyQueue {
            policy,
            heap: MinHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// The discipline in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    #[inline]
    fn heap_key(&self, job: &Job) -> u128 {
        let class_rank = match job.priority {
            PriorityClass::Elevated => 0,
            PriorityClass::Normal => 1,
        };
        pack_key(class_rank, self.policy.key(job), self.seq)
    }

    /// Enqueues a job.
    pub fn push(&mut self, job: Job) {
        let key = self.heap_key(&job);
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(job);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX queued jobs");
                self.slots.push(Some(job));
                slot
            }
        };
        self.heap.push(key, slot);
    }

    /// Removes and returns the next job to serve.
    pub fn pop(&mut self) -> Option<Job> {
        let slot = self.pop_slot()?;
        Some(self.release(slot))
    }

    /// Removes the next heap entry and returns its *slot index*, leaving
    /// the job slab-resident (checked out: not in the heap, not on the
    /// free list). The caller later either [`ReadyQueue::release`]s the
    /// slot or [`ReadyQueue::requeue`]s it.
    pub fn pop_slot(&mut self) -> Option<u32> {
        let (_, slot) = self.heap.pop()?;
        debug_assert!(self.slots[slot as usize].is_some());
        Some(slot)
    }

    /// The job parked in a checked-out slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn job(&self, slot: u32) -> &Job {
        self.slots[slot as usize]
            .as_ref()
            .expect("job() on a vacant slot")
    }

    /// Mutable access to a checked-out slot's job — e.g. to burn down
    /// remaining service before a preemption requeue.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn job_mut(&mut self, slot: u32) -> &mut Job {
        self.slots[slot as usize]
            .as_mut()
            .expect("job_mut() on a vacant slot")
    }

    /// Re-enters a checked-out slot into the heap under a fresh FIFO
    /// sequence, re-reading the (possibly mutated) job's ordering key.
    /// Exactly equivalent to popping the job and pushing it back, minus
    /// the payload round trip.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn requeue(&mut self, slot: u32) {
        let key = self.heap_key(self.job(slot));
        self.seq += 1;
        self.heap.push(key, slot);
    }

    /// Vacates a checked-out slot, returning the job that occupied it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn release(&mut self, slot: u32) -> Job {
        let job = self.slots[slot as usize]
            .take()
            .expect("release() on a vacant slot");
        self.free.push(slot);
        job
    }

    /// The job that would be served next, without removing it.
    pub fn peek(&self) -> Option<&Job> {
        let (_, &slot) = self.heap.peek()?;
        self.slots[slot as usize].as_ref()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of slab slots ever grown (occupied + free). Exposed so
    /// tests can prove mass cancellation recycles slots instead of
    /// growing the slab.
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Drains the queue, returning the jobs in service order.
    pub fn drain_ordered(&mut self) -> Vec<Job> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(j) = self.pop() {
            out.push(j);
        }
        out
    }

    /// Mass cancellation: moves every queued job into `out` (service
    /// order) and vacates its slab slot. The slab and heap keep their
    /// capacity and every vacated slot lands on the free list, so a node
    /// failure that wipes the queue allocates nothing once `out` has
    /// capacity — and the freed slots are reused verbatim when the node
    /// rejoins.
    pub fn purge_into(&mut self, out: &mut Vec<Job>) {
        while let Some(slot) = self.pop_slot() {
            out.push(self.release(slot));
        }
    }
}

impl fmt::Debug for ReadyQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadyQueue")
            .field("policy", &self.policy)
            .field("len", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::{SubtaskRef, TaskId};

    fn job(deadline: f64, pex: f64) -> Job {
        let mut j = Job::local(TaskId::new(0), 0.0, pex, deadline);
        j.pex = pex;
        j
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        q.push(job(5.0, 1.0));
        q.push(job(2.0, 1.0));
        q.push(job(8.0, 1.0));
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.deadline).collect();
        assert_eq!(order, vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let mut q = ReadyQueue::new(Policy::Fcfs);
        q.push(job(5.0, 1.0));
        q.push(job(2.0, 1.0));
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.deadline).collect();
        assert_eq!(order, vec![5.0, 2.0]);
    }

    #[test]
    fn sjf_orders_by_pex() {
        let mut q = ReadyQueue::new(Policy::ShortestJobFirst);
        q.push(job(1.0, 3.0));
        q.push(job(2.0, 1.0));
        q.push(job(3.0, 2.0));
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.pex).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mlf_orders_by_static_laxity_key() {
        let mut q = ReadyQueue::new(Policy::MinimumLaxityFirst);
        q.push(job(9.0, 3.0)); // key 6
        q.push(job(8.0, 1.0)); // key 7
        q.push(job(7.0, 2.5)); // key 4.5
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.deadline).collect();
        assert_eq!(order, vec![7.0, 9.0, 8.0]);
    }

    #[test]
    fn ties_break_fifo_for_determinism() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        for i in 0..10 {
            let mut j = job(5.0, 1.0);
            j.enqueue_time = f64::from(i);
            q.push(j);
        }
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.enqueue_time).collect();
        assert_eq!(order, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn elevated_jobs_always_first_with_edf_within_class() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        q.push(job(1.0, 1.0)); // normal, earliest deadline overall
        let mut g1 = Job::global(
            TaskId::new(9),
            subtask_ref(),
            0.0,
            1.0,
            1.0,
            50.0,
            PriorityClass::Elevated,
        );
        let mut g2 = g1;
        g1.deadline = 50.0;
        g2.deadline = 40.0;
        q.push(g1);
        q.push(g2);
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.deadline).collect();
        // Elevated first (EDF within: 40 before 50), then the local.
        assert_eq!(order, vec![40.0, 50.0, 1.0]);
    }

    fn subtask_ref() -> SubtaskRef {
        // Obtain a real SubtaskRef by running a tiny TaskRun.
        use sda_core::{NodeId, SdaStrategy, TaskRun, TaskSpec};
        let spec = TaskSpec::simple(NodeId::new(0), 1.0, 1.0);
        let mut run = TaskRun::new(&spec, 0.0, 1.0).unwrap();
        run.start(&SdaStrategy::ud_ud(), 0.0)[0].subtask
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        q.push(job(3.0, 1.0));
        q.push(job(1.0, 1.0));
        assert_eq!(q.peek().unwrap().deadline, 1.0);
        assert_eq!(q.pop().unwrap().deadline, 1.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(Policy::ALL.len(), 4);
        assert_eq!(Policy::EarliestDeadlineFirst.to_string(), "EDF");
        assert_eq!(Policy::MinimumLaxityFirst.short_name(), "MLF");
    }

    #[test]
    fn debug_shows_policy_and_len() {
        let q = ReadyQueue::new(Policy::Fcfs);
        let s = format!("{q:?}");
        assert!(s.contains("Fcfs"));
    }

    #[test]
    fn beats_respects_key_and_class() {
        let p = Policy::EarliestDeadlineFirst;
        let early = job(2.0, 1.0);
        let late = job(8.0, 1.0);
        assert!(p.beats(&early, &late));
        assert!(!p.beats(&late, &early));
        assert!(!p.beats(&early, &early), "ties do not preempt");
        let mut elevated = job(50.0, 1.0);
        elevated.priority = PriorityClass::Elevated;
        assert!(p.beats(&elevated, &early), "class outranks deadline");
        assert_eq!(p.sort_key(&early), 2.0);
        assert_eq!(Policy::MinimumLaxityFirst.sort_key(&early), 1.0);
    }

    #[test]
    fn slot_api_keeps_job_resident_across_checkout() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        q.push(job(5.0, 2.0));
        q.push(job(3.0, 1.0));
        let slot = q.pop_slot().unwrap();
        assert_eq!(q.job(slot).deadline, 3.0);
        assert_eq!(q.len(), 1, "checked-out job is not queued");
        // Mutate in place (preemption burns down remaining service).
        q.job_mut(slot).service = 0.25;
        q.requeue(slot);
        assert_eq!(q.len(), 2);
        // Still earliest deadline; payload reflects the mutation.
        let j = q.pop().unwrap();
        assert_eq!(j.deadline, 3.0);
        assert_eq!(j.service, 0.25);
        assert_eq!(q.pop().unwrap().deadline, 5.0);
    }

    #[test]
    fn requeue_assigns_fresh_fifo_sequence() {
        // A requeued job ties with a later push on key → FIFO falls back
        // to sequence, and the requeue must count as the newest arrival.
        let mut q = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        let mut a = job(5.0, 1.0);
        a.enqueue_time = 0.0;
        q.push(a);
        let slot = q.pop_slot().unwrap();
        let mut b = job(5.0, 1.0);
        b.enqueue_time = 1.0;
        q.push(b);
        q.requeue(slot); // same deadline, newer sequence → behind b
        let order: Vec<f64> = q.drain_ordered().iter().map(|j| j.enqueue_time).collect();
        assert_eq!(order, vec![1.0, 0.0]);
    }

    #[test]
    fn slot_release_matches_pop() {
        let mut q = ReadyQueue::new(Policy::ShortestJobFirst);
        q.push(job(1.0, 2.0));
        let slot = q.pop_slot().unwrap();
        let released = q.release(slot);
        assert_eq!(released.pex, 2.0);
        assert!(q.is_empty());
        // The slot is reusable.
        q.push(job(2.0, 3.0));
        assert_eq!(q.pop().unwrap().pex, 3.0);
    }

    #[test]
    fn mlf_equals_edf_when_pex_uniform() {
        // With identical pex, dl − pex ordering equals dl ordering.
        let mut mlf = ReadyQueue::new(Policy::MinimumLaxityFirst);
        let mut edf = ReadyQueue::new(Policy::EarliestDeadlineFirst);
        for dl in [5.0, 1.0, 3.0, 2.0, 4.0] {
            mlf.push(job(dl, 1.0));
            edf.push(job(dl, 1.0));
        }
        let a: Vec<f64> = mlf.drain_ordered().iter().map(|j| j.deadline).collect();
        let b: Vec<f64> = edf.drain_ordered().iter().map(|j| j.deadline).collect();
        assert_eq!(a, b);
    }
}
