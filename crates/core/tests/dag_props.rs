//! The equivalence/property suite pinning [`DagRun`]'s critical-path
//! deadline decomposition.
//!
//! Two families of seeded, fully deterministic properties:
//!
//! 1. **Stage-structured equivalence** — a random stage-structured task
//!    round-tripped through a `DagRun` (consecutive layers fully
//!    connected) must produce *bit-identical* submissions and deadlines
//!    to the [`FlatRun`] hot path, for every strategy family
//!    {UD, ED, EQS, EQF, EQF-AS} × {UD, DIV-1, GF}, across serial,
//!    fan-out and top-level-parallel shapes, with and without expected
//!    communication and feedback slack scaling.
//! 2. **DAG invariants** — random layered DAGs (cross-layer edges
//!    included) driven deadline-faithfully satisfy: every node submitted
//!    exactly once, fan-in fires only after all predecessors completed,
//!    virtual deadlines are nondecreasing along every precedence edge
//!    (hence along every topological path), and no assigned deadline
//!    exceeds the global deadline.
//!
//!    The monotonicity clause holds for every strategy whose deadline is
//!    anchored at the submission time (UD, EQS, EQF, EQF-AS, DIV-x, GF):
//!    a successor is submitted when its last predecessor completes, so
//!    its deadline can only move forward. ED is the one exception — its
//!    deadline (`dl(T) − Σ remaining pex`) ignores the submission time,
//!    and in a DAG a wide early wave can carry a *later* ED deadline
//!    than a deeper wave whose critical tail is longer (in a serial
//!    chain the suffix sums shrink monotonically, so the paper's setting
//!    never exposes this). The test therefore asserts monotonicity for
//!    all non-ED strategies and only the global-deadline bound for ED.

use sda_core::{
    DagRun, FlatRun, NodeId, ParallelStrategy, SdaStrategy, SerialStrategy, Submission,
};

/// A tiny xorshift64* generator so the properties are seeded and
/// reproducible without pulling RNG crates into `sda-core`'s dev-deps.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `lo..=hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

fn strategies() -> Vec<SdaStrategy> {
    let serials = [
        SerialStrategy::UltimateDeadline,
        SerialStrategy::EffectiveDeadline,
        SerialStrategy::EqualSlack,
        SerialStrategy::EqualFlexibility,
        SerialStrategy::EqualFlexibilityArtificial {
            artificial_stages: 2,
        },
    ];
    let parallels = [
        ParallelStrategy::UltimateDeadline,
        ParallelStrategy::Div { x: 1.0 },
        ParallelStrategy::GlobalsFirst,
    ];
    let mut out = Vec::new();
    for s in serials {
        for p in parallels {
            out.push(SdaStrategy::new(s, p));
        }
    }
    out
}

/// One random stage-structured task: per-stage member `(node, ex, pex)`.
struct StagedSpec {
    stages: Vec<Vec<(NodeId, f64, f64)>>,
    arrival: f64,
    deadline: f64,
    hop: f64,
    scale: f64,
}

impl StagedSpec {
    /// `widths`: candidates for each stage's member count.
    fn random(rng: &mut XorShift, widths: &[usize], behind_schedule: bool) -> StagedSpec {
        let stage_count = rng.range(1, 5);
        let mut stages = Vec::new();
        let mut total_pex = 0.0;
        for _ in 0..stage_count {
            let width = widths[rng.range(0, widths.len() - 1)];
            let members: Vec<(NodeId, f64, f64)> = (0..width)
                .map(|_| {
                    let node = NodeId::new(rng.range(0, 5) as u32);
                    let ex = 0.1 + 4.0 * rng.f64();
                    // Imperfect predictions exercise the pex path.
                    let pex = ex * (0.6 + 0.8 * rng.f64());
                    (node, ex, pex)
                })
                .collect();
            total_pex += members.iter().map(|&(_, _, pex)| pex).fold(0.0, f64::max);
            stages.push(members);
        }
        let arrival = 10.0 * rng.f64();
        // Behind-schedule tasks exercise the negative-slack branches.
        let slack = if behind_schedule {
            -2.0 * rng.f64()
        } else {
            total_pex * (0.2 + 2.0 * rng.f64())
        };
        StagedSpec {
            stages,
            arrival,
            deadline: arrival + total_pex + slack,
            hop: if rng.f64() < 0.5 {
                0.3 * rng.f64()
            } else {
                0.0
            },
            scale: if rng.f64() < 0.5 {
                0.3 + 0.7 * rng.f64()
            } else {
                1.0
            },
        }
    }

    fn fill_flat(&self, run: &mut FlatRun, serial_levels: bool, parallel_groups: bool) {
        run.reset();
        for stage in &self.stages {
            for &(node, ex, pex) in stage {
                run.push_subtask(node, ex, pex);
            }
            run.end_stage();
        }
        run.set_structure(serial_levels, parallel_groups);
        run.set_timing(self.arrival, self.deadline);
        run.set_expected_comm(self.hop);
        run.set_slack_scale(self.scale);
    }

    /// The DAG embedding: consecutive stages fully connected.
    fn fill_dag(&self, run: &mut DagRun) {
        run.reset();
        let mut prev: Vec<u32> = Vec::new();
        for stage in &self.stages {
            let ids: Vec<u32> = stage
                .iter()
                .map(|&(node, ex, pex)| run.push_node(node, ex, pex))
                .collect();
            for &from in &prev {
                for &to in &ids {
                    run.push_edge(from, to);
                }
            }
            prev = ids;
        }
        run.finalize();
        run.set_timing(self.arrival, self.deadline);
        run.set_expected_comm(self.hop);
        run.set_slack_scale(self.scale);
    }
}

fn assert_submissions_bit_equal(flat: &[Submission], dag: &[Submission], what: &str) {
    assert_eq!(flat.len(), dag.len(), "{what}: wave width diverged");
    for (f, d) in flat.iter().zip(dag) {
        assert_eq!(f.node, d.node, "{what}");
        assert_eq!(f.ex.to_bits(), d.ex.to_bits(), "{what}");
        assert_eq!(f.pex.to_bits(), d.pex.to_bits(), "{what}");
        assert_eq!(
            f.deadline.to_bits(),
            d.deadline.to_bits(),
            "{what}: deadline diverged ({} vs {})",
            f.deadline,
            d.deadline
        );
        assert_eq!(f.priority, d.priority, "{what}");
    }
}

/// Drives the flat and DAG runtimes in lock-step with the same FIFO
/// completion schedule and asserts bit-identical submissions throughout.
fn assert_flat_dag_equivalent(spec: &StagedSpec, strategy: &SdaStrategy, dt: f64, what: &str) {
    let serial_levels = spec.stages.len() > 1 || spec.stages[0].len() == 1;
    let parallel_groups = spec.stages.iter().any(|s| s.len() > 1);
    let mut flat = FlatRun::new();
    spec.fill_flat(&mut flat, serial_levels, parallel_groups);
    let mut dag = DagRun::new();
    spec.fill_dag(&mut dag);

    let mut now = spec.arrival;
    let mut flat_subs = Vec::new();
    let mut dag_subs = Vec::new();
    flat.start(strategy, now, &mut flat_subs);
    dag.start(strategy, now, &mut dag_subs);
    assert_submissions_bit_equal(&flat_subs, &dag_subs, what);
    loop {
        if flat_subs.is_empty() {
            break;
        }
        let (f, d) = (flat_subs.remove(0), dag_subs.remove(0));
        now += dt;
        let mut flat_more = Vec::new();
        let mut dag_more = Vec::new();
        let flat_done = flat.complete(f.subtask, strategy, now, &mut flat_more);
        let dag_done = dag.complete(d.subtask, strategy, now, &mut dag_more);
        assert_eq!(flat_done, dag_done, "{what}: completion status diverged");
        assert_submissions_bit_equal(&flat_more, &dag_more, what);
        flat_subs.extend(flat_more);
        dag_subs.extend(dag_more);
    }
    assert!(flat.is_finished() && dag.is_finished(), "{what}");
    // The two runtimes accumulate the critical path in opposite
    // directions (FlatRun folds stage maxima forward, DagRun's
    // reverse-topological pass sums backward), so the totals agree as
    // reals but not necessarily bit for bit.
    let (a, b) = (flat.critical_path_ex(), dag.critical_path_ex());
    assert!(
        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
        "{what}: critical-path ex diverged ({a} vs {b})"
    );
}

#[test]
fn stage_structured_serial_chains_match_flat_run_bit_exactly() {
    let mut rng = XorShift::new(0xDA6_0001);
    for strategy in strategies() {
        for case in 0..40 {
            let spec = StagedSpec::random(&mut rng, &[1], case % 5 == 4);
            let dt = 0.1 + 1.5 * rng.f64();
            assert_flat_dag_equivalent(
                &spec,
                &strategy,
                dt,
                &format!("serial case {case} under {strategy}"),
            );
        }
    }
}

#[test]
fn stage_structured_fan_outs_match_flat_run_bit_exactly() {
    let mut rng = XorShift::new(0xDA6_0002);
    for strategy in strategies() {
        for case in 0..40 {
            // Widths ≥ 2 so every stage is a genuine parallel group (a
            // width-1 stage inside a parallel-group pipeline would take
            // FlatRun's 1-branch PSP path, which DagRun deliberately
            // treats as a serial hand-off — see the DagRun docs).
            let spec = StagedSpec::random(&mut rng, &[2, 3, 4], case % 5 == 4);
            let dt = 0.1 + 1.5 * rng.f64();
            assert_flat_dag_equivalent(
                &spec,
                &strategy,
                dt,
                &format!("fan-out case {case} under {strategy}"),
            );
        }
    }
}

#[test]
fn top_level_parallel_fans_match_flat_run_bit_exactly() {
    let mut rng = XorShift::new(0xDA6_0003);
    for strategy in strategies() {
        for case in 0..30 {
            let mut spec = StagedSpec::random(&mut rng, &[2, 3, 4, 5], false);
            spec.stages.truncate(1);
            let dt = 0.1 + 1.5 * rng.f64();
            // A single parallel stage: FlatRun with serial_levels = false
            // vs the DAG antichain convention.
            let mut flat = FlatRun::new();
            spec.fill_flat(&mut flat, false, true);
            let mut dag = DagRun::new();
            spec.fill_dag(&mut dag);
            let mut now = spec.arrival;
            let mut flat_subs = Vec::new();
            let mut dag_subs = Vec::new();
            flat.start(&strategy, now, &mut flat_subs);
            dag.start(&strategy, now, &mut dag_subs);
            let what = format!("parallel case {case} under {strategy}");
            assert_submissions_bit_equal(&flat_subs, &dag_subs, &what);
            for (f, d) in flat_subs.iter().zip(&dag_subs) {
                now += dt;
                let mut sink = Vec::new();
                let a = flat.complete(f.subtask, &strategy, now, &mut sink);
                let b = dag.complete(d.subtask, &strategy, now, &mut sink);
                assert_eq!(a, b, "{what}");
                assert!(sink.is_empty(), "{what}");
            }
            assert!(flat.is_finished() && dag.is_finished(), "{what}");
        }
    }
}

/// A random layered DAG with guaranteed connectivity and optional
/// cross-layer edges, built directly on a [`DagRun`].
fn random_layered_dag(rng: &mut XorShift, run: &mut DagRun) {
    run.reset();
    let depth = rng.range(2, 6);
    let mut layers: Vec<Vec<u32>> = Vec::new();
    for _ in 0..depth {
        let width = rng.range(1, 4);
        let ids: Vec<u32> = (0..width)
            .map(|_| {
                let ex = 0.1 + 2.0 * rng.f64();
                run.push_node(NodeId::new(rng.range(0, 5) as u32), ex, ex)
            })
            .collect();
        layers.push(ids);
    }
    // Connectivity: every node has a predecessor in the previous layer,
    // every non-final node a successor in the next.
    for l in 1..depth {
        for &v in &layers[l] {
            let u = layers[l - 1][rng.range(0, layers[l - 1].len() - 1)];
            run.push_edge(u, v);
        }
        for &u in &layers[l - 1] {
            let v = layers[l][rng.range(0, layers[l].len() - 1)];
            run.push_edge(u, v);
        }
    }
    // Cross-layer (skip) edges.
    for i in 0..depth {
        for j in i + 2..depth {
            for &u in &layers[i] {
                for &v in &layers[j] {
                    if rng.f64() < 0.15 {
                        run.push_edge(u, v);
                    }
                }
            }
        }
    }
    run.finalize();
    let cp = run.critical_path_pex();
    let arrival = 5.0 * rng.f64();
    run.set_timing(arrival, arrival + cp * (1.5 + rng.f64()));
}

#[test]
fn random_dags_satisfy_lifecycle_and_deadline_invariants() {
    const EPS: f64 = 1e-9;
    let mut rng = XorShift::new(0xDA6_0004);
    let mut run = DagRun::new();
    for strategy in strategies() {
        for case in 0..25 {
            random_layered_dag(&mut rng, &mut run);
            let n = run.simple_count();
            let what = format!("dag case {case} under {strategy}");

            let mut submitted_at = vec![None::<f64>; n];
            let mut deadline_of = vec![f64::NAN; n];
            let mut record = |subs: &[Submission], run: &DagRun, what: &str| {
                for s in subs {
                    let i = s.subtask.index();
                    assert!(
                        submitted_at[i].is_none(),
                        "{what}: node {i} submitted twice"
                    );
                    submitted_at[i] = Some(s.deadline);
                    deadline_of[i] = s.deadline;
                    // Fan-in fires only after all predecessors completed.
                    for &p in run.predecessors(i as u32) {
                        assert!(
                            run.is_done(p),
                            "{what}: node {i} submitted before predecessor {p}"
                        );
                    }
                }
            };

            let mut pending: Vec<Submission> = Vec::new();
            let mut wave = Vec::new();
            run.start(&strategy, run.arrival(), &mut wave);
            record(&wave, &run, &what);
            pending.append(&mut wave);
            let mut now = run.arrival();
            let mut finished = false;
            while let Some(pos) = pending
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline))
                .map(|(i, _)| i)
            {
                let sub = pending.remove(pos);
                // Deadline-faithful drive: each subtask completes exactly
                // at its assigned virtual deadline (never earlier than
                // the current clock).
                now = now.max(sub.deadline);
                finished = run.complete(sub.subtask, &strategy, now, &mut wave);
                record(&wave, &run, &what);
                pending.append(&mut wave);
            }
            assert!(finished && run.is_finished(), "{what}: task not finished");

            // Every node submitted exactly once.
            assert!(
                submitted_at.iter().all(Option::is_some),
                "{what}: some node never submitted"
            );
            let global = run.global_deadline();
            for i in 0..n {
                // No assigned deadline past the end-to-end deadline.
                assert!(
                    deadline_of[i] <= global + EPS * global.abs().max(1.0),
                    "{what}: node {i} deadline {} exceeds global {global}",
                    deadline_of[i]
                );
                // Nondecreasing along every precedence edge (and hence
                // along every topological path) — see the module docs
                // for why ED is exempt.
                if strategy.serial != SerialStrategy::EffectiveDeadline {
                    for &s in run.successors(i as u32) {
                        assert!(
                            deadline_of[s as usize] >= deadline_of[i] - EPS,
                            "{what}: edge {i}→{s} decreasing deadlines ({} → {})",
                            deadline_of[i],
                            deadline_of[s as usize]
                        );
                    }
                }
            }
        }
    }
}
