//! Property-based tests for the deadline-assignment strategies.
//!
//! These check the algebraic invariants that the paper's definitions
//! imply, over randomized task shapes and timing parameters.

use proptest::prelude::*;

use sda_core::{
    Completion, NodeId, ParallelStrategy, PspInput, SdaStrategy, SerialStrategy, SspInput,
    Submission, TaskRun, TaskSpec,
};

const EPS: f64 = 1e-7;

fn pex_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, 1..12)
}

proptest! {
    /// EQS assigns every remaining stage the same slack share: the
    /// first-stage deadline minus (submit + pex) equals slack/(m-i+1).
    #[test]
    fn eqs_share_is_total_slack_over_count(
        pex in pex_vec(),
        submit in 0.0f64..100.0,
        slack in -5.0f64..50.0,
    ) {
        let total_pex: f64 = pex.iter().sum();
        let global_deadline = submit + total_pex + slack;
        let input = SspInput {
            submit_time: submit,
            global_deadline,
            pex_current: pex[0],
            pex_remaining_after: &pex[1..],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        let dl = SerialStrategy::EqualSlack.deadline(&input);
        let share = dl - submit - pex[0];
        prop_assert!((share - slack / pex.len() as f64).abs() < EPS);
    }

    /// EQF gives every stage the same *flexibility* (slack share divided
    /// by pex), equal to total slack over total pex.
    #[test]
    fn eqf_equalizes_flexibility(
        pex in pex_vec(),
        submit in 0.0f64..100.0,
        slack in -5.0f64..50.0,
    ) {
        let total_pex: f64 = pex.iter().sum();
        let global_deadline = submit + total_pex + slack;
        let input = SspInput {
            submit_time: submit,
            global_deadline,
            pex_current: pex[0],
            pex_remaining_after: &pex[1..],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        let dl = SerialStrategy::EqualFlexibility.deadline(&input);
        let fl = (dl - submit - pex[0]) / pex[0];
        prop_assert!((fl - slack / total_pex).abs() < 1e-6,
            "stage flexibility {fl} vs global {}", slack / total_pex);
    }

    /// For non-negative slack, every strategy's first-stage deadline lies
    /// in [submit + pex_1, dl(T)], and the orderings EQF ≤ ED ≤ UD,
    /// EQS ≤ ED hold.
    #[test]
    fn ssp_orderings_hold(
        pex in pex_vec(),
        submit in 0.0f64..100.0,
        slack in 0.0f64..50.0,
    ) {
        let total_pex: f64 = pex.iter().sum();
        let global_deadline = submit + total_pex + slack;
        let input = SspInput {
            submit_time: submit,
            global_deadline,
            pex_current: pex[0],
            pex_remaining_after: &pex[1..],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        let ud = SerialStrategy::UltimateDeadline.deadline(&input);
        let ed = SerialStrategy::EffectiveDeadline.deadline(&input);
        let eqs = SerialStrategy::EqualSlack.deadline(&input);
        let eqf = SerialStrategy::EqualFlexibility.deadline(&input);
        for dl in [ud, ed, eqs, eqf] {
            prop_assert!(dl >= submit + pex[0] - EPS, "deadline {dl} infeasibly early");
            prop_assert!(dl <= global_deadline + EPS, "deadline {dl} beyond global");
        }
        prop_assert!(eqf <= ed + EPS);
        prop_assert!(eqs <= ed + EPS);
        prop_assert!(ed <= ud + EPS);
    }

    /// The static plan of EQS/EQF covers the window exactly: consecutive
    /// deadlines are non-decreasing and the last one equals dl(T).
    #[test]
    fn ssp_plan_exhausts_window(
        pex in pex_vec(),
        arrival in 0.0f64..100.0,
        slack in 0.0f64..50.0,
    ) {
        let total_pex: f64 = pex.iter().sum();
        let global_deadline = arrival + total_pex + slack;
        for strategy in [SerialStrategy::EqualSlack, SerialStrategy::EqualFlexibility] {
            let plan = strategy.plan(arrival, global_deadline, &pex);
            prop_assert_eq!(plan.len(), pex.len());
            for w in plan.windows(2) {
                prop_assert!(w[0] <= w[1] + EPS);
            }
            prop_assert!((plan[plan.len() - 1] - global_deadline).abs() < 1e-6);
        }
    }

    /// DIV-x: deadline strictly after arrival, monotone decreasing in both
    /// x and n, and equal to UD when n·x = 1.
    #[test]
    fn div_x_properties(
        arrival in 0.0f64..100.0,
        window in 0.01f64..100.0,
        n in 1usize..20,
        x in 0.1f64..10.0,
    ) {
        let input = PspInput {
            arrival_time: arrival,
            global_deadline: arrival + window,
            branch_count: n,
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        let div = ParallelStrategy::div(x).unwrap();
        let dl = div.deadline(&input);
        prop_assert!(dl > arrival);
        prop_assert!(dl <= arrival + window + EPS || n as f64 * x < 1.0);

        let tighter = ParallelStrategy::div(x * 2.0).unwrap().deadline(&input);
        prop_assert!(tighter < dl);

        let wider_fan = ParallelStrategy::div(x).unwrap().deadline(&PspInput {
            branch_count: n + 1,
            ..input
        });
        prop_assert!(wider_fan < dl);
    }

    /// Driving a random serial chain through TaskRun with on-time
    /// completions keeps every assigned deadline within the global window
    /// and finishes after exactly m completions.
    #[test]
    fn taskrun_serial_chain_lifecycle(
        pex in pex_vec(),
        slack in 0.0f64..20.0,
    ) {
        let spec = TaskSpec::serial(
            pex.iter()
                .enumerate()
                .map(|(i, &p)| TaskSpec::simple(NodeId::new(i as u32 % 6), p, p))
                .collect(),
        );
        let total: f64 = pex.iter().sum();
        let deadline = total + slack;
        let strategy = SdaStrategy::eqf_div1();
        let mut run = TaskRun::new(&spec, 0.0, deadline).unwrap();
        let mut pending = run.start(&strategy, 0.0);
        let mut now = 0.0;
        let mut completions = 0;
        while let Some(sub) = pending.pop() {
            prop_assert!(sub.deadline <= deadline + EPS);
            now += sub.ex; // completes exactly on its execution time
            completions += 1;
            match run.complete(sub.subtask, &strategy, now) {
                Completion::Submitted(next) => pending.extend(next),
                Completion::Finished => break,
            }
        }
        prop_assert_eq!(completions, pex.len());
        prop_assert!(run.is_finished());
        // On-time completions with non-negative slack must finish by the
        // deadline.
        prop_assert!(now <= deadline + EPS);
    }

    /// A flat parallel task under any PSP strategy submits all branches at
    /// start with identical deadlines and finishes when the last branch
    /// completes.
    #[test]
    fn taskrun_parallel_fan_lifecycle(
        exs in prop::collection::vec(0.01f64..5.0, 1..10),
        slack in 0.0f64..20.0,
        x in 0.5f64..4.0,
    ) {
        let spec = TaskSpec::parallel(
            exs.iter()
                .enumerate()
                .map(|(i, &e)| TaskSpec::simple(NodeId::new(i as u32), e, e))
                .collect(),
        );
        let makespan = exs.iter().cloned().fold(0.0, f64::max);
        let deadline = makespan + slack;
        let strategy = SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::div(x).unwrap(),
        );
        let mut run = TaskRun::new(&spec, 0.0, deadline).unwrap();
        let subs: Vec<Submission> = run.start(&strategy, 0.0);
        prop_assert_eq!(subs.len(), exs.len());
        let first_dl = subs[0].deadline;
        prop_assert!(subs.iter().all(|s| (s.deadline - first_dl).abs() < EPS));

        let mut finished = false;
        for (i, sub) in subs.iter().enumerate() {
            let res = run.complete(sub.subtask, &strategy, sub.ex);
            if i + 1 == subs.len() {
                prop_assert_eq!(res, Completion::Finished);
                finished = true;
            } else {
                prop_assert_eq!(res, Completion::Submitted(vec![]));
            }
        }
        prop_assert!(finished);
    }

    /// Perfect-prediction, zero-queueing execution under EQS/EQF never
    /// violates a virtual deadline (each stage completes exactly when its
    /// predicted work is done, which is ≤ its assigned deadline when
    /// slack ≥ 0).
    #[test]
    fn on_time_execution_meets_virtual_deadlines(
        pex in pex_vec(),
        slack in 0.0f64..30.0,
    ) {
        let spec = TaskSpec::serial(
            pex.iter()
                .map(|&p| TaskSpec::simple(NodeId::new(0), p, p))
                .collect(),
        );
        let total: f64 = pex.iter().sum();
        for serial in [SerialStrategy::EqualSlack, SerialStrategy::EqualFlexibility] {
            let strategy = SdaStrategy::new(serial, ParallelStrategy::UltimateDeadline);
            let mut run = TaskRun::new(&spec, 0.0, total + slack).unwrap();
            let mut pending = run.start(&strategy, 0.0);
            let mut now = 0.0;
            while let Some(sub) = pending.pop() {
                now += sub.ex;
                prop_assert!(
                    now <= sub.deadline + EPS,
                    "virtual deadline violated: finish {now} vs dl {}",
                    sub.deadline
                );
                match run.complete(sub.subtask, &strategy, now) {
                    Completion::Submitted(next) => pending.extend(next),
                    Completion::Finished => break,
                }
            }
        }
    }
}
