//! Serial-parallel task structures.

use serde::{Deserialize, Serialize};

use crate::error::SpecError;
use crate::ids::NodeId;

/// A *simple subtask*: work at exactly one node (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleSpec {
    /// The node that executes this subtask.
    pub node: NodeId,
    /// Real execution time `ex`; hidden from strategies.
    pub ex: f64,
    /// Predicted execution time `pex`; what strategies may consult.
    pub pex: f64,
}

/// A serial-parallel global task structure.
///
/// The paper's notation `T = [T1 T2 … Tn]` (serial) and
/// `T = [T1 ∥ T2 ∥ … ∥ Tn]` (parallel) compose freely; a subtask that is
/// itself a composition is a *complex subtask*.
///
/// # Examples
///
/// ```
/// use sda_core::{NodeId, TaskSpec};
///
/// // [A (B ∥ C) D] — a pipeline with a parallel middle stage.
/// let t = TaskSpec::serial(vec![
///     TaskSpec::simple(NodeId::new(0), 1.0, 1.0),
///     TaskSpec::parallel(vec![
///         TaskSpec::simple(NodeId::new(1), 2.0, 2.0),
///         TaskSpec::simple(NodeId::new(2), 3.0, 3.0),
///     ]),
///     TaskSpec::simple(NodeId::new(3), 1.0, 1.0),
/// ]);
/// t.validate()?;
/// assert_eq!(t.simple_count(), 4);
/// assert_eq!(t.critical_path_ex(), 1.0 + 3.0 + 1.0);
/// assert_eq!(t.total_ex(), 7.0);
/// assert_eq!(t.depth(), 2);
/// # Ok::<(), sda_core::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskSpec {
    /// Work at a single node.
    Simple(SimpleSpec),
    /// Subtasks executed strictly in order.
    Serial(Vec<TaskSpec>),
    /// Subtasks started together; the composite finishes when all finish.
    Parallel(Vec<TaskSpec>),
}

impl TaskSpec {
    /// A simple subtask at `node` with real execution time `ex` and
    /// prediction `pex`.
    pub fn simple(node: NodeId, ex: f64, pex: f64) -> TaskSpec {
        TaskSpec::Simple(SimpleSpec { node, ex, pex })
    }

    /// A serial composition `[T1 T2 …]`.
    pub fn serial(children: Vec<TaskSpec>) -> TaskSpec {
        TaskSpec::Serial(children)
    }

    /// A parallel composition `[T1 ∥ T2 ∥ …]`.
    pub fn parallel(children: Vec<TaskSpec>) -> TaskSpec {
        TaskSpec::Parallel(children)
    }

    /// Checks structural validity: every composition non-empty, every
    /// `ex`/`pex` finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found in a depth-first walk.
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            TaskSpec::Simple(s) => {
                if !(s.ex.is_finite() && s.ex >= 0.0) {
                    return Err(SpecError::InvalidTime {
                        what: "ex",
                        value: s.ex,
                    });
                }
                if !(s.pex.is_finite() && s.pex >= 0.0) {
                    return Err(SpecError::InvalidTime {
                        what: "pex",
                        value: s.pex,
                    });
                }
                Ok(())
            }
            TaskSpec::Serial(children) | TaskSpec::Parallel(children) => {
                if children.is_empty() {
                    return Err(SpecError::EmptyComposite);
                }
                children.iter().try_for_each(TaskSpec::validate)
            }
        }
    }

    /// Number of simple subtasks in the tree.
    pub fn simple_count(&self) -> usize {
        match self {
            TaskSpec::Simple(_) => 1,
            TaskSpec::Serial(c) | TaskSpec::Parallel(c) => {
                c.iter().map(TaskSpec::simple_count).sum()
            }
        }
    }

    /// Nesting depth: `0` for a simple subtask, `1 + max(children)`
    /// otherwise.
    pub fn depth(&self) -> usize {
        match self {
            TaskSpec::Simple(_) => 0,
            TaskSpec::Serial(c) | TaskSpec::Parallel(c) => {
                1 + c.iter().map(TaskSpec::depth).max().unwrap_or(0)
            }
        }
    }

    /// Sum of real execution times over all simple subtasks — the total
    /// *work* of the task.
    pub fn total_ex(&self) -> f64 {
        match self {
            TaskSpec::Simple(s) => s.ex,
            TaskSpec::Serial(c) | TaskSpec::Parallel(c) => c.iter().map(TaskSpec::total_ex).sum(),
        }
    }

    /// Real execution time along the critical path: serial children add,
    /// parallel children take the maximum. This is the minimum end-to-end
    /// time with zero queueing.
    pub fn critical_path_ex(&self) -> f64 {
        match self {
            TaskSpec::Simple(s) => s.ex,
            TaskSpec::Serial(c) => c.iter().map(TaskSpec::critical_path_ex).sum(),
            TaskSpec::Parallel(c) => c.iter().map(TaskSpec::critical_path_ex).fold(0.0, f64::max),
        }
    }

    /// Predicted execution time of the subtask viewed as a unit: serial
    /// children add, parallel children take the maximum (an
    /// expected-makespan lower bound). This is the `pex` the SSP formulas
    /// see for *complex* subtasks.
    pub fn aggregate_pex(&self) -> f64 {
        match self {
            TaskSpec::Simple(s) => s.pex,
            TaskSpec::Serial(c) => c.iter().map(TaskSpec::aggregate_pex).sum(),
            TaskSpec::Parallel(c) => c.iter().map(TaskSpec::aggregate_pex).fold(0.0, f64::max),
        }
    }

    /// Whether the tree is purely serial over simple subtasks
    /// (`T = [T1 T2 … Tn]`, the SSP shape).
    pub fn is_flat_serial(&self) -> bool {
        match self {
            TaskSpec::Serial(c) => c.iter().all(|t| matches!(t, TaskSpec::Simple(_))),
            _ => false,
        }
    }

    /// Whether the tree is purely parallel over simple subtasks
    /// (`T = [T1 ∥ … ∥ Tn]`, the PSP shape).
    pub fn is_flat_parallel(&self) -> bool {
        match self {
            TaskSpec::Parallel(c) => c.iter().all(|t| matches!(t, TaskSpec::Simple(_))),
            _ => false,
        }
    }

    /// Iterates over the simple subtasks in depth-first order.
    pub fn simple_subtasks(&self) -> Vec<&SimpleSpec> {
        let mut out = Vec::with_capacity(self.simple_count());
        self.collect_simple(&mut out);
        out
    }

    fn collect_simple<'a>(&'a self, out: &mut Vec<&'a SimpleSpec>) {
        match self {
            TaskSpec::Simple(s) => out.push(s),
            TaskSpec::Serial(c) | TaskSpec::Parallel(c) => {
                for child in c {
                    child.collect_simple(out);
                }
            }
        }
    }

    /// Returns a copy with every `pex` replaced by `f(ex)` — used to model
    /// prediction error without touching the real execution times.
    pub fn map_pex(&self, f: &mut impl FnMut(f64) -> f64) -> TaskSpec {
        match self {
            TaskSpec::Simple(s) => TaskSpec::Simple(SimpleSpec {
                node: s.node,
                ex: s.ex,
                pex: f(s.ex),
            }),
            TaskSpec::Serial(c) => TaskSpec::Serial(c.iter().map(|t| t.map_pex(f)).collect()),
            TaskSpec::Parallel(c) => TaskSpec::Parallel(c.iter().map(|t| t.map_pex(f)).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(ex: f64) -> TaskSpec {
        TaskSpec::simple(NodeId::new(0), ex, ex)
    }

    #[test]
    fn flat_serial_shape() {
        let t = TaskSpec::serial(vec![leaf(1.0), leaf(2.0), leaf(3.0)]);
        assert!(t.is_flat_serial());
        assert!(!t.is_flat_parallel());
        assert_eq!(t.simple_count(), 3);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.total_ex(), 6.0);
        assert_eq!(t.critical_path_ex(), 6.0);
        assert_eq!(t.aggregate_pex(), 6.0);
    }

    #[test]
    fn flat_parallel_shape() {
        let t = TaskSpec::parallel(vec![leaf(1.0), leaf(2.0), leaf(3.0)]);
        assert!(t.is_flat_parallel());
        assert_eq!(t.total_ex(), 6.0);
        assert_eq!(t.critical_path_ex(), 3.0);
        assert_eq!(t.aggregate_pex(), 3.0);
    }

    #[test]
    fn nested_tree_measures() {
        let t = TaskSpec::serial(vec![
            leaf(1.0),
            TaskSpec::parallel(vec![
                leaf(2.0),
                TaskSpec::serial(vec![leaf(1.0), leaf(1.5)]),
            ]),
        ]);
        assert_eq!(t.simple_count(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.total_ex(), 5.5);
        assert_eq!(t.critical_path_ex(), 1.0 + 2.5);
        assert!(!t.is_flat_serial());
    }

    #[test]
    fn validation_catches_empty_and_bad_times() {
        assert_eq!(
            TaskSpec::serial(vec![]).validate(),
            Err(SpecError::EmptyComposite)
        );
        assert_eq!(
            TaskSpec::parallel(vec![]).validate(),
            Err(SpecError::EmptyComposite)
        );
        let bad = TaskSpec::simple(NodeId::new(0), -1.0, 1.0);
        assert!(matches!(
            bad.validate(),
            Err(SpecError::InvalidTime { what: "ex", .. })
        ));
        let bad = TaskSpec::simple(NodeId::new(0), 1.0, f64::NAN);
        assert!(matches!(
            bad.validate(),
            Err(SpecError::InvalidTime { what: "pex", .. })
        ));
        let nested_bad = TaskSpec::serial(vec![leaf(1.0), TaskSpec::parallel(vec![])]);
        assert_eq!(nested_bad.validate(), Err(SpecError::EmptyComposite));
    }

    #[test]
    fn simple_subtasks_depth_first_order() {
        let t = TaskSpec::serial(vec![
            leaf(1.0),
            TaskSpec::parallel(vec![leaf(2.0), leaf(3.0)]),
        ]);
        let exs: Vec<f64> = t.simple_subtasks().iter().map(|s| s.ex).collect();
        assert_eq!(exs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_pex_changes_only_predictions() {
        let t = TaskSpec::serial(vec![leaf(2.0), leaf(4.0)]);
        let noisy = t.map_pex(&mut |ex| ex * 1.5);
        assert_eq!(noisy.total_ex(), 6.0);
        assert_eq!(noisy.aggregate_pex(), 9.0);
    }

    #[test]
    fn zero_ex_is_valid() {
        assert!(leaf(0.0).validate().is_ok());
    }
}
