//! The serial subtask problem (SSP): strategies for `T = [T1 T2 … Tm]`
//! (paper §4).
//!
//! An SSP strategy determines the virtual deadline `dl(Ti)` **at the time
//! `Ti` is submitted** — i.e. when `T_{i−1}` completes. Slack left over by
//! early-finishing stages is therefore inherited automatically, and slack
//! "stolen" by tardy stages shrinks what follows ("the rich get richer,
//! the poor get poorer", §4.2.2).

use serde::{Deserialize, Serialize};

/// Everything an SSP strategy may look at when subtask `Ti` is submitted.
///
/// With `m` subtasks total and `Ti` the current one, the remaining
/// predicted work is `pex(Ti) + Σ pex_remaining_after`.
///
/// The paper's network is delay-free; the `comm_*` fields generalize the
/// inputs to a system with inter-node message delays. Both are expected
/// (not sampled) transit times — strategies *reserve* slack for them, the
/// realized delays show up through inheritance at the next submission.
/// Set both to `0.0` to recover the paper's formulas exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SspInput<'a> {
    /// Submission time of the current subtask — `ar(Ti)`. For `i = 1`
    /// this is the global task's arrival; otherwise `T_{i−1}`'s
    /// completion time.
    pub submit_time: f64,
    /// The global task's end-to-end deadline `dl(T)`.
    pub global_deadline: f64,
    /// Predicted execution time of the current subtask, `pex(Ti)`.
    pub pex_current: f64,
    /// Predicted execution times of the subtasks after the current one,
    /// `pex(T_{i+1}), …, pex(T_m)`.
    pub pex_remaining_after: &'a [f64],
    /// Expected communication delay between this submission and the
    /// start of `Ti`'s window at its node — the hand-off currently in
    /// flight. `0.0` in a delay-free network.
    pub comm_current: f64,
    /// Expected communication delay still to be paid *after* `Ti`
    /// completes: the remaining inter-stage hand-offs plus the final
    /// result return to the process manager. `0.0` in a delay-free
    /// network.
    pub comm_after: f64,
    /// Multiplier applied to the slack *share* a slack-dividing strategy
    /// (EQS, EQF, EQF-AS) hands the current subtask. `1.0` is neutral
    /// and reproduces the paper's formulas bit-exactly; the
    /// feedback-adaptive `ADAPT(base)` wrapper drives it below 1 under
    /// observed overload, tightening early-stage deadlines so global
    /// subtasks outrank local tasks while the system is behind. Only a
    /// *positive* share is scaled: a task already behind schedule has a
    /// negative share, which stays untouched — damping it would move the
    /// deadline *later*, demoting exactly the tasks the loop means to
    /// promote. UD and ED have no explicit slack share and ignore the
    /// multiplier entirely.
    pub slack_scale: f64,
}

impl SspInput<'_> {
    /// `Σ_{j>i} pex(Tj)` — predicted work strictly after the current
    /// subtask.
    pub fn pex_after(&self) -> f64 {
        self.pex_remaining_after.iter().sum()
    }

    /// `Σ_{j≥i} pex(Tj)` — predicted work including the current subtask.
    pub fn pex_including(&self) -> f64 {
        self.pex_current + self.pex_after()
    }

    /// Number of unfinished subtasks including the current one
    /// (`m − i + 1`).
    pub fn remaining_count(&self) -> usize {
        1 + self.pex_remaining_after.len()
    }

    /// Total expected communication still ahead of the task (the hand-off
    /// in flight plus everything after the current subtask).
    pub fn comm_total(&self) -> f64 {
        self.comm_current + self.comm_after
    }

    /// Total remaining slack at submission:
    /// `dl(T) − ar(Ti) − Σ_{j≥i} pex(Tj) − E[remaining communication]`.
    /// May be negative if the task is already behind.
    pub fn remaining_slack(&self) -> f64 {
        self.global_deadline
            - self.submit_time
            - self.pex_including()
            - self.comm_current
            - self.comm_after
    }
}

/// Applies a feedback slack multiplier to a slack share: positive shares
/// shrink by `scale`, non-positive shares pass through unchanged (a
/// behind-schedule share must stay as urgent as the open-loop formula
/// made it — damping it would *demote* the task). At `scale = 1.0` this
/// is the IEEE-754 identity on every input, so disabled feedback is
/// bit-exact.
#[inline]
pub(crate) fn scale_share(scale: f64, share: f64) -> f64 {
    if share > 0.0 {
        scale * share
    } else {
        share
    }
}

/// The four SSP strategies of paper §4 (definitions (1)–(4)).
///
/// | Strategy | Needs `pex`? | Formula for `dl(Ti)` |
/// |---|---|---|
/// | [`UltimateDeadline`](SerialStrategy::UltimateDeadline) | no | `dl(T)` |
/// | [`EffectiveDeadline`](SerialStrategy::EffectiveDeadline) | yes | `dl(T) − Σ_{j>i} pex(Tj)` |
/// | [`EqualSlack`](SerialStrategy::EqualSlack) | yes | `ar(Ti) + pex(Ti) + slack/(m−i+1)` |
/// | [`EqualFlexibility`](SerialStrategy::EqualFlexibility) | yes | `ar(Ti) + pex(Ti) + slack·pex(Ti)/Σ_{j≥i} pex(Tj)` |
///
/// where `slack = dl(T) − ar(Ti) − Σ_{j≥i} pex(Tj)` is the total remaining
/// slack at submission time.
///
/// # Examples
///
/// Reproducing the formulas on a 3-stage task (`pex = [2, 3, 5]`,
/// arrival 0, deadline 20 → slack 10):
///
/// ```
/// use sda_core::{SerialStrategy, SspInput};
///
/// let input = SspInput {
///     submit_time: 0.0,
///     global_deadline: 20.0,
///     pex_current: 2.0,
///     pex_remaining_after: &[3.0, 5.0],
///     comm_current: 0.0,
///     comm_after: 0.0,
///     slack_scale: 1.0,
/// };
/// assert_eq!(SerialStrategy::UltimateDeadline.deadline(&input), 20.0);
/// assert_eq!(SerialStrategy::EffectiveDeadline.deadline(&input), 12.0);
/// // EQS: 0 + 2 + 10/3
/// assert!((SerialStrategy::EqualSlack.deadline(&input) - (2.0 + 10.0 / 3.0)).abs() < 1e-12);
/// // EQF: 0 + 2 + 10·(2/10)
/// assert_eq!(SerialStrategy::EqualFlexibility.deadline(&input), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SerialStrategy {
    /// **UD** — every subtask inherits the global deadline. Needs no
    /// execution-time estimates, but hands all slack to early stages.
    UltimateDeadline,
    /// **ED** — global deadline minus the predicted work still to come
    /// after this subtask. The "latest possible start of the rest".
    EffectiveDeadline,
    /// **EQS** — divides the total remaining slack *equally* among the
    /// remaining subtasks.
    EqualSlack,
    /// **EQF** — divides the total remaining slack *in proportion to
    /// predicted execution times*, equalizing subtask flexibility
    /// (`sl/ex`). The paper's best-performing serial strategy.
    EqualFlexibility,
    /// **EQF-AS** — the paper's §7 future-work idea, implemented here:
    /// EQF with `artificial_stages` phantom stages appended, each
    /// carrying the mean remaining predicted execution time.
    ///
    /// The phantom stages hold back part of the slack from every real
    /// stage (the share becomes `pex_i / (Σ pex + a·mean_pex)`), which
    /// damps the slack variability that makes "the poor get poorer":
    /// tight tasks no longer hand early stages slack they cannot afford
    /// to lose. Slack reserved by phantoms is *not* lost — it returns
    /// through inheritance, because every later submission recomputes
    /// from the true remaining window. With `artificial_stages = 0` this
    /// is exactly EQF.
    EqualFlexibilityArtificial {
        /// Number of phantom stages `a ≥ 0` appended to the remaining
        /// chain.
        artificial_stages: u32,
    },
}

impl SerialStrategy {
    /// All four strategies, in the paper's presentation order.
    pub const ALL: [SerialStrategy; 4] = [
        SerialStrategy::UltimateDeadline,
        SerialStrategy::EffectiveDeadline,
        SerialStrategy::EqualSlack,
        SerialStrategy::EqualFlexibility,
    ];

    /// Short name as used in the paper's figures (`UD`, `ED`, `EQS`,
    /// `EQF`) or `EQF-AS<a>` for the artificial-stage extension.
    pub fn short_name(&self) -> String {
        match self {
            SerialStrategy::UltimateDeadline => "UD".to_string(),
            SerialStrategy::EffectiveDeadline => "ED".to_string(),
            SerialStrategy::EqualSlack => "EQS".to_string(),
            SerialStrategy::EqualFlexibility => "EQF".to_string(),
            SerialStrategy::EqualFlexibilityArtificial { artificial_stages } => {
                format!("EQF-AS{artificial_stages}")
            }
        }
    }

    /// Whether the strategy consults predicted execution times. (UD is the
    /// only one that does not.)
    pub fn uses_predictions(&self) -> bool {
        !matches!(self, SerialStrategy::UltimateDeadline)
    }

    /// Computes the virtual deadline `dl(Ti)` for the subtask described by
    /// `input`, per the paper's definitions (1)–(4), generalized to a
    /// network with expected communication delays:
    ///
    /// * UD ignores communication entirely (unchanged semantics — it uses
    ///   no estimates of any kind);
    /// * ED additionally subtracts the expected communication *after* the
    ///   current subtask (`dl(T) − Σ_{j>i} pex(Tj) − comm_after`);
    /// * EQS/EQF place the deadline after the in-flight hand-off
    ///   (`ar(Ti) + comm_current + pex(Ti) + share`) and divide only the
    ///   slack left once all expected transit is reserved (see
    ///   [`SspInput::remaining_slack`]).
    ///
    /// With both `comm` fields zero and `slack_scale = 1` this reduces
    /// bit-exactly to the paper's formulas (`1.0 · x` and `x ± 0.0` are
    /// IEEE-754 identities).
    ///
    /// Degenerate case: if every remaining `pex` is zero, EQF's
    /// proportional share is undefined (0/0); it falls back to EQS's equal
    /// division, which remains well-defined.
    pub fn deadline(&self, input: &SspInput<'_>) -> f64 {
        match self {
            SerialStrategy::UltimateDeadline => input.global_deadline,
            SerialStrategy::EffectiveDeadline => {
                input.global_deadline - input.pex_after() - input.comm_after
            }
            SerialStrategy::EqualSlack => {
                input.submit_time
                    + input.comm_current
                    + input.pex_current
                    + scale_share(
                        input.slack_scale,
                        input.remaining_slack() / input.remaining_count() as f64,
                    )
            }
            SerialStrategy::EqualFlexibility => {
                let total_pex = input.pex_including();
                if total_pex <= 0.0 {
                    // 0/0 share; divide slack equally instead.
                    return SerialStrategy::EqualSlack.deadline(input);
                }
                input.submit_time
                    + input.comm_current
                    + input.pex_current
                    + scale_share(
                        input.slack_scale,
                        input.remaining_slack() * (input.pex_current / total_pex),
                    )
            }
            SerialStrategy::EqualFlexibilityArtificial { artificial_stages } => {
                let total_pex = input.pex_including();
                if total_pex <= 0.0 {
                    return SerialStrategy::EqualSlack.deadline(input);
                }
                // Phantom stages carry the mean remaining pex, inflating
                // the denominator so each real stage's share shrinks.
                let mean_pex = total_pex / input.remaining_count() as f64;
                let inflated = total_pex + f64::from(*artificial_stages) * mean_pex;
                input.submit_time
                    + input.comm_current
                    + input.pex_current
                    + scale_share(
                        input.slack_scale,
                        input.remaining_slack() * (input.pex_current / inflated),
                    )
            }
        }
    }

    /// Plans deadlines for *all* stages ahead of time, assuming each stage
    /// completes exactly at its predicted time (`ar(T_{i+1}) = dl(Ti)`
    /// does **not** hold; we assume completion at the assigned share).
    ///
    /// This static schedule is what the dynamic rule produces when every
    /// prediction is perfect and no queueing occurs; it is exposed for
    /// planning tools, tests and examples. The dynamic path — recomputing
    /// at every completion — is [`SerialStrategy::deadline`].
    ///
    /// Returns one virtual deadline per stage; the last equals the global
    /// deadline for EQS/EQF/ED+last-stage and UD trivially.
    pub fn plan(&self, arrival: f64, global_deadline: f64, pex: &[f64]) -> Vec<f64> {
        let mut deadlines = Vec::with_capacity(pex.len());
        let mut submit = arrival;
        for (i, &p) in pex.iter().enumerate() {
            // Planning assumes the paper's delay-free network.
            let input = SspInput {
                submit_time: submit,
                global_deadline,
                pex_current: p,
                pex_remaining_after: &pex[i + 1..],
                comm_current: 0.0,
                comm_after: 0.0,
                slack_scale: 1.0,
            };
            let dl = self.deadline(&input);
            // The next stage is submitted when this one completes; in the
            // plan we assume completion exactly at the stage deadline for
            // slack-dividing strategies, and at submit + pex for UD/ED
            // (which do not define a per-stage slack share).
            submit = match self {
                SerialStrategy::EqualSlack
                | SerialStrategy::EqualFlexibility
                | SerialStrategy::EqualFlexibilityArtificial { .. } => dl,
                SerialStrategy::UltimateDeadline | SerialStrategy::EffectiveDeadline => submit + p,
            };
            deadlines.push(dl);
        }
        deadlines
    }
}

impl std::fmt::Display for SerialStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn input<'a>(submit: f64, dl: f64, pex_cur: f64, rest: &'a [f64]) -> SspInput<'a> {
        SspInput {
            submit_time: submit,
            global_deadline: dl,
            pex_current: pex_cur,
            pex_remaining_after: rest,
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        }
    }

    #[test]
    fn input_accessors() {
        let i = input(1.0, 10.0, 2.0, &[3.0, 4.0]);
        assert_eq!(i.pex_after(), 7.0);
        assert_eq!(i.pex_including(), 9.0);
        assert_eq!(i.remaining_count(), 3);
        assert_eq!(i.remaining_slack(), 0.0);
    }

    #[test]
    fn ud_ignores_everything_but_global_deadline() {
        let i = input(5.0, 42.0, 2.0, &[100.0]);
        assert_eq!(SerialStrategy::UltimateDeadline.deadline(&i), 42.0);
    }

    #[test]
    fn ed_subtracts_following_pex() {
        let i = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        assert_eq!(SerialStrategy::EffectiveDeadline.deadline(&i), 12.0);
        // Last stage: ED = UD.
        let last = input(15.0, 20.0, 5.0, &[]);
        assert_eq!(SerialStrategy::EffectiveDeadline.deadline(&last), 20.0);
    }

    #[test]
    fn eqs_divides_slack_equally() {
        // slack = 20 - 0 - 10 = 10, three stages → 10/3 each.
        let i = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        let dl = SerialStrategy::EqualSlack.deadline(&i);
        assert!((dl - (2.0 + 10.0 / 3.0)).abs() < EPS);
    }

    #[test]
    fn eqf_divides_slack_proportionally() {
        let i = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        let dl = SerialStrategy::EqualFlexibility.deadline(&i);
        assert!((dl - (2.0 + 10.0 * 0.2)).abs() < EPS);
        // The assigned flexibility is slack_share / pex = (10·0.2)/2 = 1.0
        // for every stage: check stage 2 at its planned submission.
        let i2 = input(4.0, 20.0, 3.0, &[5.0]);
        let dl2 = SerialStrategy::EqualFlexibility.deadline(&i2);
        // remaining slack = 20-4-8 = 8; share = 8·3/8 = 3; dl = 4+3+3 = 10
        // flexibility = 3/3 = 1.0 — equal, as the name promises.
        assert!((dl2 - 10.0).abs() < EPS);
    }

    #[test]
    fn last_stage_gets_global_deadline_under_eqs_eqf() {
        // With one remaining subtask, both EQS and EQF must assign exactly
        // dl(T): all remaining slack goes to it.
        let i = input(7.0, 20.0, 4.0, &[]);
        assert!((SerialStrategy::EqualSlack.deadline(&i) - 20.0).abs() < EPS);
        assert!((SerialStrategy::EqualFlexibility.deadline(&i) - 20.0).abs() < EPS);
    }

    #[test]
    fn negative_slack_pulls_deadlines_before_feasible_completion() {
        // Task is already late: submit 18, dl 20, work 9 → slack −7.
        let i = input(18.0, 20.0, 2.0, &[3.0, 4.0]);
        let eqs = SerialStrategy::EqualSlack.deadline(&i);
        assert!(eqs < 18.0 + 2.0, "deadline tighter than pex is allowed");
        let eqf = SerialStrategy::EqualFlexibility.deadline(&i);
        assert!(eqf < 18.0 + 2.0);
    }

    #[test]
    fn zero_pex_fallback_for_eqf() {
        let i = input(0.0, 10.0, 0.0, &[0.0, 0.0]);
        let eqf = SerialStrategy::EqualFlexibility.deadline(&i);
        let eqs = SerialStrategy::EqualSlack.deadline(&i);
        assert_eq!(eqf, eqs);
        assert!((eqs - 10.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn ud_dominates_ed_dominates_eqf_at_first_stage() {
        // With positive slack and positive following work, the first-stage
        // deadline satisfies EQF/EQS < ED < UD.
        let i = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        let ud = SerialStrategy::UltimateDeadline.deadline(&i);
        let ed = SerialStrategy::EffectiveDeadline.deadline(&i);
        let eqs = SerialStrategy::EqualSlack.deadline(&i);
        let eqf = SerialStrategy::EqualFlexibility.deadline(&i);
        assert!(eqf < ed && ed < ud);
        assert!(eqs < ed);
    }

    #[test]
    fn plan_last_deadline_is_global_for_slack_dividers() {
        let pex = [2.0, 3.0, 5.0];
        for s in [SerialStrategy::EqualSlack, SerialStrategy::EqualFlexibility] {
            let plan = s.plan(0.0, 20.0, &pex);
            assert_eq!(plan.len(), 3);
            assert!(
                (plan[2] - 20.0).abs() < EPS,
                "{s}: last planned deadline should exhaust the window, got {:?}",
                plan
            );
            // Monotone non-decreasing.
            assert!(plan.windows(2).all(|w| w[0] <= w[1] + EPS));
        }
    }

    #[test]
    fn plan_eqf_equalizes_flexibility() {
        let pex = [2.0, 3.0, 5.0];
        let plan = SerialStrategy::EqualFlexibility.plan(0.0, 20.0, &pex);
        // Slack per stage divided by pex should be constant (= total
        // slack / total pex = 10/10 = 1).
        let mut start = 0.0;
        for (i, &dl) in plan.iter().enumerate() {
            let fl = (dl - start - pex[i]) / pex[i];
            assert!((fl - 1.0).abs() < EPS, "stage {i} flexibility {fl}");
            start = dl;
        }
    }

    #[test]
    fn plan_ud_is_constant() {
        let plan = SerialStrategy::UltimateDeadline.plan(0.0, 9.0, &[1.0, 1.0]);
        assert_eq!(plan, vec![9.0, 9.0]);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(SerialStrategy::ALL.len(), 4);
        let names: Vec<String> = SerialStrategy::ALL.iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["UD", "ED", "EQS", "EQF"]);
        assert_eq!(SerialStrategy::EqualFlexibility.to_string(), "EQF");
        assert_eq!(
            SerialStrategy::EqualFlexibilityArtificial {
                artificial_stages: 2
            }
            .to_string(),
            "EQF-AS2"
        );
        assert!(!SerialStrategy::UltimateDeadline.uses_predictions());
        assert!(SerialStrategy::EffectiveDeadline.uses_predictions());
    }

    #[test]
    fn eqf_as_zero_phantoms_equals_eqf() {
        let i = input(3.0, 25.0, 2.0, &[3.0, 5.0]);
        let eqf = SerialStrategy::EqualFlexibility.deadline(&i);
        let as0 = SerialStrategy::EqualFlexibilityArtificial {
            artificial_stages: 0,
        }
        .deadline(&i);
        assert!((eqf - as0).abs() < EPS);
    }

    #[test]
    fn eqf_as_holds_back_slack() {
        // Phantom stages shrink the early share: AS2 < AS1 < EQF when
        // slack is positive.
        let i = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        let eqf = SerialStrategy::EqualFlexibility.deadline(&i);
        let as1 = SerialStrategy::EqualFlexibilityArtificial {
            artificial_stages: 1,
        }
        .deadline(&i);
        let as2 = SerialStrategy::EqualFlexibilityArtificial {
            artificial_stages: 2,
        }
        .deadline(&i);
        assert!(as2 < as1 && as1 < eqf, "{as2} < {as1} < {eqf}");
        // Still feasible: never earlier than submit + pex for positive slack.
        assert!(as2 >= 0.0 + 2.0 - EPS);
        // Exact value check: mean remaining pex = 10/3; inflated total
        // = 10 + 10/3; share = 10·(2/(40/3)) = 1.5 → dl = 3.5.
        assert!((as1 - 3.5).abs() < EPS, "got {as1}");
    }

    #[test]
    fn eqf_as_last_stage_keeps_reserve() {
        // With one real stage remaining and one phantom, the stage gets
        // half the remaining slack instead of all of it.
        let i = input(10.0, 20.0, 4.0, &[]);
        let as1 = SerialStrategy::EqualFlexibilityArtificial {
            artificial_stages: 1,
        }
        .deadline(&i);
        // slack = 6; share = 6·(4/8) = 3 → dl = 17.
        assert!((as1 - 17.0).abs() < EPS, "got {as1}");
    }

    #[test]
    fn comm_terms_reserve_slack_for_transit() {
        // 3 stages, pex [2, 3, 5], dl 24, one hop in flight (d = 1) and
        // three hops still ahead (2 hand-offs + result return, d = 1
        // each): divisible slack = 24 − 0 − 10 − 1 − 3 = 10, the same 10
        // the delay-free case had at dl 20.
        let comm = SspInput {
            submit_time: 0.0,
            global_deadline: 24.0,
            pex_current: 2.0,
            pex_remaining_after: &[3.0, 5.0],
            comm_current: 1.0,
            comm_after: 3.0,
            slack_scale: 1.0,
        };
        assert_eq!(comm.comm_total(), 4.0);
        assert!((comm.remaining_slack() - 10.0).abs() < EPS);
        // UD ignores communication entirely.
        assert_eq!(SerialStrategy::UltimateDeadline.deadline(&comm), 24.0);
        // ED backs off by the downstream work *and* downstream transit.
        assert_eq!(SerialStrategy::EffectiveDeadline.deadline(&comm), 13.0);
        // EQS/EQF shift by the in-flight hop and divide the net slack:
        // the delay-free values (2 + 10/3 and 4.0) each move up by 1.
        let eqs = SerialStrategy::EqualSlack.deadline(&comm);
        assert!((eqs - (1.0 + 2.0 + 10.0 / 3.0)).abs() < EPS);
        let eqf = SerialStrategy::EqualFlexibility.deadline(&comm);
        assert!((eqf - 5.0).abs() < EPS);
    }

    #[test]
    fn zero_comm_is_bit_identical_to_the_paper_formulas() {
        let no_comm = input(3.0, 25.0, 2.0, &[3.0, 5.0]);
        for s in [
            SerialStrategy::UltimateDeadline,
            SerialStrategy::EffectiveDeadline,
            SerialStrategy::EqualSlack,
            SerialStrategy::EqualFlexibility,
            SerialStrategy::EqualFlexibilityArtificial {
                artificial_stages: 2,
            },
        ] {
            // Hand-computed paper values (comm-free formulas).
            let expected: f64 = match s {
                SerialStrategy::UltimateDeadline => 25.0,
                SerialStrategy::EffectiveDeadline => 25.0 - 8.0,
                SerialStrategy::EqualSlack => 3.0 + 2.0 + 12.0 / 3.0,
                SerialStrategy::EqualFlexibility => 3.0 + 2.0 + 12.0 * 0.2,
                SerialStrategy::EqualFlexibilityArtificial { .. } => {
                    3.0 + 2.0 + 12.0 * (2.0 / (10.0 + 2.0 * (10.0 / 3.0)))
                }
            };
            assert_eq!(
                s.deadline(&no_comm).to_bits(),
                expected.to_bits(),
                "{s} with zero comm must reproduce the paper formula bit-exactly"
            );
        }
    }

    #[test]
    fn slack_scale_shrinks_only_the_slack_share() {
        // pex [2, 3, 5], dl 20, slack 10. At scale 0.5 the EQS share
        // halves (10/3 → 5/3) and EQF's 2.0 → 1.0; UD/ED are untouched.
        let mut i = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        i.slack_scale = 0.5;
        assert_eq!(SerialStrategy::UltimateDeadline.deadline(&i), 20.0);
        assert_eq!(SerialStrategy::EffectiveDeadline.deadline(&i), 12.0);
        let eqs = SerialStrategy::EqualSlack.deadline(&i);
        assert!((eqs - (2.0 + 5.0 / 3.0)).abs() < EPS, "{eqs}");
        let eqf = SerialStrategy::EqualFlexibility.deadline(&i);
        assert!((eqf - 3.0).abs() < EPS, "{eqf}");
        // A behind-schedule stage (negative remaining slack) is NOT
        // damped: scaling a negative share would move the deadline
        // *later*, demoting the task the loop means to promote.
        let mut late = input(18.0, 20.0, 2.0, &[3.0, 4.0]);
        late.slack_scale = 0.25;
        let mut late_base = late;
        late_base.slack_scale = 1.0;
        for s in [SerialStrategy::EqualSlack, SerialStrategy::EqualFlexibility] {
            assert!(late.remaining_slack() < 0.0);
            assert_eq!(
                s.deadline(&late).to_bits(),
                s.deadline(&late_base).to_bits(),
                "{s}: negative shares must pass through unscaled"
            );
        }
        // Scale 1 is the exact paper formula, bit for bit.
        let mut one = i;
        one.slack_scale = 1.0;
        let base = input(0.0, 20.0, 2.0, &[3.0, 5.0]);
        for s in [
            SerialStrategy::EqualSlack,
            SerialStrategy::EqualFlexibility,
            SerialStrategy::EqualFlexibilityArtificial {
                artificial_stages: 2,
            },
        ] {
            assert_eq!(s.deadline(&one).to_bits(), s.deadline(&base).to_bits());
        }
    }

    #[test]
    fn eqf_as_zero_pex_falls_back_to_eqs() {
        let i = input(0.0, 9.0, 0.0, &[0.0, 0.0]);
        let as2 = SerialStrategy::EqualFlexibilityArtificial {
            artificial_stages: 2,
        }
        .deadline(&i);
        assert!((as2 - 3.0).abs() < EPS);
    }
}
