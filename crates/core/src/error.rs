//! Errors for task-structure validation.

use std::fmt;

/// Error returned when a [`TaskSpec`](crate::TaskSpec) is structurally
/// invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A serial or parallel composite with no children.
    EmptyComposite,
    /// An execution-time or prediction value that is negative, NaN or
    /// infinite.
    InvalidTime {
        /// Which field was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyComposite => {
                write!(
                    f,
                    "serial/parallel composition must have at least one subtask"
                )
            }
            SpecError::InvalidTime { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let e = SpecError::EmptyComposite;
        assert!(e.to_string().starts_with("serial"));
        let e = SpecError::InvalidTime {
            what: "ex",
            value: -1.0,
        };
        assert!(e.to_string().contains("-1"));
    }
}
