//! The parallel subtask problem (PSP): strategies for
//! `T = [T1 ∥ T2 ∥ … ∥ Tn]` (paper §5).
//!
//! All branches are submitted together when the task (or the parallel
//! group inside a larger task) activates; the group finishes when the
//! *last* branch finishes, so a single tardy branch makes the whole task
//! tardy — the miss probability is amplified by the fan-out.

use serde::{Deserialize, Serialize};

use crate::ids::PriorityClass;

/// Everything a PSP strategy may look at when a parallel group activates.
///
/// The `comm_*` fields carry *expected* inter-node transit times for a
/// network with message delays (the paper's network is delay-free); both
/// zero recovers the paper's formulas bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PspInput {
    /// Activation time of the group — `ar(T)` for a top-level parallel
    /// task.
    pub arrival_time: f64,
    /// The group's (virtual) end-to-end deadline `dl(T)`.
    pub global_deadline: f64,
    /// Number of parallel branches `n`.
    pub branch_count: usize,
    /// Expected communication delay of the fan-out hand-offs currently in
    /// flight to the branch nodes. `0.0` in a delay-free network.
    pub comm_current: f64,
    /// Expected communication delay after the group completes (e.g. the
    /// result return of a top-level parallel task). For a group embedded
    /// in a larger task this is `0.0` — downstream transit is already
    /// reserved by the serial decomposition that produced the group's
    /// window.
    pub comm_after: f64,
    /// Multiplier applied to the per-branch window share DIV-x carves
    /// out. `1.0` is neutral (the paper's eq. (1) bit-exactly); the
    /// feedback-adaptive `ADAPT(base)` wrapper drives it below 1 under
    /// observed overload, pulling branch deadlines even earlier. Only a
    /// *positive* window share is scaled — a group activated past its
    /// window (negative share) keeps the open-loop deadline, since
    /// damping a negative share would push the deadline later and demote
    /// the group. UD and GF keep the group deadline and ignore it.
    pub slack_scale: f64,
}

impl PspInput {
    /// The window `dl(T) − ar(T)` available to the group.
    pub fn window(&self) -> f64 {
        self.global_deadline - self.arrival_time
    }

    /// The window net of expected communication:
    /// `dl(T) − ar(T) − comm_current − comm_after` — what is actually
    /// available for queueing and execution at the branch nodes.
    pub fn net_window(&self) -> f64 {
        self.window() - self.comm_current - self.comm_after
    }
}

/// The PSP strategies of paper §5.1.
///
/// | Strategy | `dl(Ti)` | Priority class |
/// |---|---|---|
/// | [`UltimateDeadline`](ParallelStrategy::UltimateDeadline) | `dl(T)` | normal |
/// | [`Div { x }`](ParallelStrategy::Div) | `ar(T) + [dl(T) − ar(T)]/(n·x)` | normal |
/// | [`GlobalsFirst`](ParallelStrategy::GlobalsFirst) | `dl(T)` | elevated |
///
/// DIV-x pulls virtual deadlines earlier as the fan-out `n` grows — "the
/// amount of priority promotion grows with the number of subtasks … it
/// adjusts automatically to the need". GF goes further: subtasks of
/// global tasks are always served before local tasks, with EDF order
/// preserved within each class.
///
/// # Examples
///
/// ```
/// use sda_core::{ParallelStrategy, PspInput};
///
/// let input = PspInput {
///     arrival_time: 10.0,
///     global_deadline: 22.0,
///     branch_count: 4,
///     comm_current: 0.0,
///     comm_after: 0.0,
///     slack_scale: 1.0,
/// };
/// assert_eq!(ParallelStrategy::UltimateDeadline.deadline(&input), 22.0);
/// // DIV-1: 10 + 12/4 = 13; DIV-2: 10 + 12/8 = 11.5
/// assert_eq!(ParallelStrategy::div(1.0)?.deadline(&input), 13.0);
/// assert_eq!(ParallelStrategy::div(2.0)?.deadline(&input), 11.5);
/// # Ok::<(), sda_core::SpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParallelStrategy {
    /// **UD** — branches inherit the group deadline and compete fairly
    /// with local tasks (the baseline that loses ≈3× more global
    /// deadlines than local ones in Fig. 4).
    UltimateDeadline,
    /// **DIV-x** — divide the group's window by `n·x`. Larger `x` means
    /// earlier virtual deadlines and higher effective priority.
    Div {
        /// The aggressiveness multiplier `x > 0` (paper uses 1 and 2).
        x: f64,
    },
    /// **GF** — keep the natural deadline but serve subtasks of global
    /// tasks strictly before local tasks. Not applicable to components
    /// that discard past-deadline work (paper §5.3).
    GlobalsFirst,
}

impl ParallelStrategy {
    /// Constructs DIV-x, validating `x > 0` and finite.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidTime`](crate::SpecError) if `x` is not
    /// positive and finite.
    pub fn div(x: f64) -> Result<ParallelStrategy, crate::SpecError> {
        if x.is_finite() && x > 0.0 {
            Ok(ParallelStrategy::Div { x })
        } else {
            Err(crate::SpecError::InvalidTime {
                what: "DIV-x multiplier",
                value: x,
            })
        }
    }

    /// Short name as used in the paper (`UD`, `DIV-1`, `DIV-2.5`, `GF`).
    pub fn short_name(&self) -> String {
        match self {
            ParallelStrategy::UltimateDeadline => "UD".to_string(),
            ParallelStrategy::Div { x } => {
                if (x - x.round()).abs() < 1e-9 {
                    format!("DIV-{}", x.round() as i64)
                } else {
                    format!("DIV-{x}")
                }
            }
            ParallelStrategy::GlobalsFirst => "GF".to_string(),
        }
    }

    /// The virtual deadline assigned to every branch of the group.
    ///
    /// Under communication delays DIV-x shifts the deadline past the
    /// in-flight fan-out hop and divides only the window net of expected
    /// transit (`ar + comm_current + net_window/(n·x)`); UD and GF keep
    /// the group deadline unchanged. With zero `comm` terms this is
    /// bit-exactly the paper's eq. (1).
    ///
    /// Note the DIV-x deadline is always later than the activation time
    /// (for a positive window), so a branch may still lose to a local task
    /// with an early enough deadline — the observation that motivates GF.
    pub fn deadline(&self, input: &PspInput) -> f64 {
        match self {
            ParallelStrategy::UltimateDeadline | ParallelStrategy::GlobalsFirst => {
                input.global_deadline
            }
            ParallelStrategy::Div { x } => {
                input.arrival_time
                    + input.comm_current
                    + crate::ssp::scale_share(
                        input.slack_scale,
                        input.net_window() / (input.branch_count as f64 * x),
                    )
            }
        }
    }

    /// The priority class branches carry: `Elevated` for GF, `Normal`
    /// otherwise.
    pub fn priority_class(&self) -> PriorityClass {
        match self {
            ParallelStrategy::GlobalsFirst => PriorityClass::Elevated,
            _ => PriorityClass::Normal,
        }
    }
}

impl std::fmt::Display for ParallelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn input(ar: f64, dl: f64, n: usize) -> PspInput {
        PspInput {
            arrival_time: ar,
            global_deadline: dl,
            branch_count: n,
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        }
    }

    #[test]
    fn window_is_relative_deadline() {
        assert_eq!(input(2.0, 10.0, 4).window(), 8.0);
    }

    #[test]
    fn ud_and_gf_keep_global_deadline() {
        let i = input(0.0, 10.0, 4);
        assert_eq!(ParallelStrategy::UltimateDeadline.deadline(&i), 10.0);
        assert_eq!(ParallelStrategy::GlobalsFirst.deadline(&i), 10.0);
    }

    #[test]
    fn div_x_formula_matches_paper_eq_1() {
        // dl(Ti) = [dl(T) − ar(T)]/(n·x) + ar(T)
        let i = input(5.0, 25.0, 4);
        let div1 = ParallelStrategy::div(1.0).unwrap();
        assert!((div1.deadline(&i) - 10.0).abs() < EPS);
        let div2 = ParallelStrategy::div(2.0).unwrap();
        assert!((div2.deadline(&i) - 7.5).abs() < EPS);
    }

    #[test]
    fn div_deadline_never_before_arrival() {
        // "…the virtual deadlines assigned to the subtasks are, however
        // big x is, later than the tasks' arrival time."
        let i = input(100.0, 200.0, 10);
        let div = ParallelStrategy::div(1e6).unwrap();
        assert!(div.deadline(&i) > 100.0);
    }

    #[test]
    fn div_monotone_in_x_and_n() {
        let i4 = input(0.0, 12.0, 4);
        let i6 = input(0.0, 12.0, 6);
        let d1 = ParallelStrategy::div(1.0).unwrap().deadline(&i4);
        let d2 = ParallelStrategy::div(2.0).unwrap().deadline(&i4);
        assert!(d2 < d1, "larger x → earlier deadline");
        let d1_n6 = ParallelStrategy::div(1.0).unwrap().deadline(&i6);
        assert!(d1_n6 < d1, "more branches → earlier deadline");
    }

    #[test]
    fn comm_terms_shift_and_shrink_div_windows() {
        // Fan-out hop d = 1 in flight, result return d = 1 ahead.
        let i = PspInput {
            arrival_time: 5.0,
            global_deadline: 25.0,
            branch_count: 4,
            comm_current: 1.0,
            comm_after: 1.0,
            slack_scale: 1.0,
        };
        assert_eq!(i.window(), 20.0);
        assert_eq!(i.net_window(), 18.0);
        // DIV-1: 5 + 1 + 18/4 = 10.5 (delay-free value was 10).
        let div1 = ParallelStrategy::div(1.0).unwrap();
        assert!((div1.deadline(&i) - 10.5).abs() < EPS);
        // UD and GF ignore the comm terms.
        assert_eq!(ParallelStrategy::UltimateDeadline.deadline(&i), 25.0);
        assert_eq!(ParallelStrategy::GlobalsFirst.deadline(&i), 25.0);
    }

    #[test]
    fn zero_comm_div_is_bit_identical_to_eq_1() {
        let i = input(5.0, 25.0, 4);
        let div1 = ParallelStrategy::div(1.0).unwrap();
        let paper: f64 = 5.0 + 20.0 / 4.0;
        assert_eq!(div1.deadline(&i).to_bits(), paper.to_bits());
    }

    #[test]
    fn slack_scale_shrinks_div_share_only() {
        let mut i = input(5.0, 25.0, 4);
        i.slack_scale = 0.5;
        // DIV-1: 5 + 0.5·(20/4) = 7.5 instead of 10.
        let div1 = ParallelStrategy::div(1.0).unwrap();
        assert!((div1.deadline(&i) - 7.5).abs() < EPS);
        // UD and GF ignore the scale.
        assert_eq!(ParallelStrategy::UltimateDeadline.deadline(&i), 25.0);
        assert_eq!(ParallelStrategy::GlobalsFirst.deadline(&i), 25.0);
        // Scale 1 reproduces eq. (1) bit-exactly.
        i.slack_scale = 1.0;
        assert_eq!(div1.deadline(&i).to_bits(), (5.0 + 20.0 / 4.0f64).to_bits());
        // A group activated past its window (negative share) is not
        // damped — scaling would move the branch deadline later.
        let mut late = input(30.0, 25.0, 4);
        late.slack_scale = 0.25;
        let mut late_base = late;
        late_base.slack_scale = 1.0;
        assert!(late.net_window() < 0.0);
        assert_eq!(
            div1.deadline(&late).to_bits(),
            div1.deadline(&late_base).to_bits(),
            "negative window shares must pass through unscaled"
        );
    }

    #[test]
    fn div_validation() {
        assert!(ParallelStrategy::div(0.0).is_err());
        assert!(ParallelStrategy::div(-1.0).is_err());
        assert!(ParallelStrategy::div(f64::NAN).is_err());
        assert!(ParallelStrategy::div(0.5).is_ok());
    }

    #[test]
    fn priority_classes() {
        assert_eq!(
            ParallelStrategy::GlobalsFirst.priority_class(),
            PriorityClass::Elevated
        );
        assert_eq!(
            ParallelStrategy::UltimateDeadline.priority_class(),
            PriorityClass::Normal
        );
        assert_eq!(
            ParallelStrategy::div(1.0).unwrap().priority_class(),
            PriorityClass::Normal
        );
    }

    #[test]
    fn names() {
        assert_eq!(ParallelStrategy::UltimateDeadline.short_name(), "UD");
        assert_eq!(ParallelStrategy::div(1.0).unwrap().short_name(), "DIV-1");
        assert_eq!(ParallelStrategy::div(2.5).unwrap().short_name(), "DIV-2.5");
        assert_eq!(ParallelStrategy::GlobalsFirst.to_string(), "GF");
    }
}
