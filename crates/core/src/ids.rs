//! Identifier newtypes and task classifications.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a processing node (a database server, compute engine,
/// network hop, … — every resource in the paper's model is a node).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its index.
    pub const fn new(index: u32) -> NodeId {
        NodeId(index)
    }

    /// The underlying index, e.g. for indexing a node vector.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(i: u32) -> NodeId {
        NodeId(i)
    }
}

/// Identifies a task instance (local task or global task).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskId(u64);

impl TaskId {
    /// Creates a task id from a raw counter value.
    pub const fn new(raw: u64) -> TaskId {
        TaskId(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// The two task classes of the paper's model.
///
/// *Local* tasks execute at exactly one node and are generated there;
/// *global* tasks span nodes and pass through the process manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// Single-node task generated locally at its node.
    Local,
    /// Multi-node serial-parallel task with an end-to-end deadline.
    Global,
}

impl fmt::Display for TaskClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskClass::Local => write!(f, "local"),
            TaskClass::Global => write!(f, "global"),
        }
    }
}

/// Scheduling priority class attached to a submitted subtask.
///
/// Under the Globals First (GF) strategy, subtasks of global tasks are
/// `Elevated`: a node serves every elevated job before any `Normal` job,
/// preserving EDF order *within* each class (paper §5.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum PriorityClass {
    /// Ordinary priority: competes purely by virtual deadline.
    #[default]
    Normal,
    /// Served strictly before all `Normal` jobs (GF).
    Elevated,
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityClass::Normal => write!(f, "normal"),
            PriorityClass::Elevated => write!(f, "elevated"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let n = NodeId::new(3);
        assert_eq!(n.index(), 3);
        assert_eq!(NodeId::from(3), n);
        assert_eq!(n.to_string(), "node3");
    }

    #[test]
    fn task_id_round_trips() {
        let t = TaskId::new(42);
        assert_eq!(t.raw(), 42);
        assert_eq!(t.to_string(), "task42");
    }

    #[test]
    fn priority_ordering_elevated_wins() {
        assert!(PriorityClass::Elevated > PriorityClass::Normal);
        assert_eq!(PriorityClass::default(), PriorityClass::Normal);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(TaskClass::Local.to_string(), "local");
        assert_eq!(TaskClass::Global.to_string(), "global");
        assert_eq!(PriorityClass::Elevated.to_string(), "elevated");
    }
}
