//! The combined SSP + PSP assigner for serial-parallel trees (paper §6).
//!
//! A global deadline is broken into virtual deadlines with the SSP
//! strategy at serial levels and the PSP strategy at parallel levels. When
//! a *complex* subtask activates, the virtual deadline it received is
//! recursively decomposed for its own children — at activation time, so
//! slack inheritance works across the whole tree.
//!
//! [`TaskRun`] is the runtime state of one in-flight global task: the
//! process manager drives it with [`TaskRun::start`] and
//! [`TaskRun::complete`], and it answers with newly submittable simple
//! subtasks, each carrying its assigned virtual deadline.

use serde::{Deserialize, Serialize};

use crate::adapt::AdaptiveSlack;
use crate::error::SpecError;
use crate::ids::{NodeId, PriorityClass};
use crate::psp::{ParallelStrategy, PspInput};
use crate::spec::TaskSpec;
use crate::ssp::{SerialStrategy, SspInput};
use crate::strategy::DeadlineAssigner;

/// A complete SDA strategy: one rule for serial levels, one for parallel
/// levels. The paper evaluates the four combinations UD-UD, UD-DIV1,
/// EQF-UD and EQF-DIV1 in §6.
///
/// The optional [`adapt`](SdaStrategy::adapt) wrapper turns the strategy
/// into `ADAPT(base)`: the simulator then feeds its windowed miss-ratio
/// estimate through [`AdaptiveSlack::scale`] into the
/// `slack_scale` input of every deadline computation (see
/// [`SspInput`](crate::SspInput)), shrinking slack shares under observed
/// overload. `None` (the default) is the paper's open-loop behavior,
/// bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdaStrategy {
    /// Strategy applied among the children of serial compositions.
    pub serial: SerialStrategy,
    /// Strategy applied among the children of parallel compositions.
    pub parallel: ParallelStrategy,
    /// Feedback-adaptive slack scaling (`ADAPT(base)`); `None` = the
    /// paper's open-loop strategies.
    pub adapt: Option<AdaptiveSlack>,
}

impl SdaStrategy {
    /// Combines a serial and a parallel strategy (open-loop, no
    /// adaptation).
    pub fn new(serial: SerialStrategy, parallel: ParallelStrategy) -> SdaStrategy {
        SdaStrategy {
            serial,
            parallel,
            adapt: None,
        }
    }

    /// Wraps `base` into `ADAPT(base)` with the given feedback
    /// configuration.
    pub fn adaptive(base: SdaStrategy, adapt: AdaptiveSlack) -> SdaStrategy {
        SdaStrategy {
            adapt: Some(adapt),
            ..base
        }
    }

    /// Whether this strategy closes the feedback loop.
    pub fn is_adaptive(&self) -> bool {
        self.adapt.is_some()
    }

    /// UD-UD: the do-nothing baseline of §6.
    pub fn ud_ud() -> SdaStrategy {
        SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::UltimateDeadline,
        )
    }

    /// UD-DIV1: PSP correction only.
    pub fn ud_div1() -> SdaStrategy {
        SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::Div { x: 1.0 },
        )
    }

    /// EQF-UD: SSP correction only.
    pub fn eqf_ud() -> SdaStrategy {
        SdaStrategy::new(
            SerialStrategy::EqualFlexibility,
            ParallelStrategy::UltimateDeadline,
        )
    }

    /// EQF-DIV1: both corrections — the paper's recommended combination.
    pub fn eqf_div1() -> SdaStrategy {
        SdaStrategy::new(
            SerialStrategy::EqualFlexibility,
            ParallelStrategy::Div { x: 1.0 },
        )
    }

    /// Compact name like `EQF-DIV1`, matching the paper's §6 labels;
    /// adaptive strategies render as `ADAPT(EQF-DIV1)`.
    pub fn short_name(&self) -> String {
        let base = format!(
            "{}-{}",
            self.serial.short_name(),
            self.parallel.short_name().replace('-', "")
        );
        if self.adapt.is_some() {
            format!("ADAPT({base})")
        } else {
            base
        }
    }
}

impl std::fmt::Display for SdaStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.short_name())
    }
}

/// Opaque reference to a simple subtask inside a [`TaskRun`],
/// [`FlatRun`](crate::FlatRun) or [`DagRun`](crate::DagRun).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubtaskRef(pub(crate) usize);

impl SubtaskRef {
    /// The runtime's internal index for this subtask. For
    /// [`FlatRun`](crate::FlatRun) this is the position in
    /// [`subtasks()`](crate::FlatRun::subtasks); for
    /// [`DagRun`](crate::DagRun) it is the node index returned by
    /// [`push_node`](crate::DagRun::push_node). Useful for external
    /// bookkeeping (tracing, property tests); pass the ref itself back
    /// to `complete`.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A simple subtask ready for submission to its node, with its assigned
/// virtual deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Submission {
    /// Which subtask this is; pass back to [`TaskRun::complete`].
    pub subtask: SubtaskRef,
    /// The node that must execute it.
    pub node: NodeId,
    /// Real execution time (the simulator's service demand; a real
    /// deployment would not know this).
    pub ex: f64,
    /// Predicted execution time.
    pub pex: f64,
    /// The assigned virtual deadline.
    pub deadline: f64,
    /// Scheduling class (elevated under Globals First).
    pub priority: PriorityClass,
}

/// Result of reporting a subtask completion.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// Zero or more successor subtasks became submittable. An empty vector
    /// means the task is still waiting on other in-flight branches.
    Submitted(Vec<Submission>),
    /// The whole global task just finished.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Pending,
    Active,
    Done,
}

#[derive(Debug, Clone)]
enum Kind {
    Simple {
        node: NodeId,
        ex: f64,
        pex: f64,
    },
    Serial {
        children: Vec<usize>,
        next: usize,
    },
    Parallel {
        children: Vec<usize>,
        remaining: usize,
    },
}

#[derive(Debug, Clone)]
struct RtNode {
    kind: Kind,
    parent: Option<usize>,
    state: State,
    /// The virtual window deadline assigned at activation.
    window_deadline: f64,
    /// Aggregate pex of the subtree (serial: sum; parallel: max).
    pex_agg: f64,
}

/// Runtime state of one in-flight global task: tracks which subtasks are
/// active, assigns virtual deadlines at activation time, and enforces the
/// serial-parallel precedence constraints.
///
/// See the [crate-level example](crate) for typical use. Drive it with:
///
/// 1. [`TaskRun::start`] once, at the task's arrival — returns the first
///    wave of submissions;
/// 2. [`TaskRun::complete`] for every finished subtask — returns follow-up
///    submissions or [`Completion::Finished`].
#[derive(Debug, Clone)]
pub struct TaskRun {
    arena: Vec<RtNode>,
    root: usize,
    arrival: f64,
    deadline: f64,
    started: bool,
    finished: bool,
    completed_simple: usize,
    total_simple: usize,
}

impl TaskRun {
    /// Builds the runtime state for `spec`, arriving at `arrival` with
    /// end-to-end deadline `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec fails [`TaskSpec::validate`].
    pub fn new(spec: &TaskSpec, arrival: f64, deadline: f64) -> Result<TaskRun, SpecError> {
        spec.validate()?;
        let mut arena = Vec::with_capacity(spec.simple_count() * 2);
        let root = Self::build(spec, None, &mut arena);
        let total_simple = spec.simple_count();
        Ok(TaskRun {
            arena,
            root,
            arrival,
            deadline,
            started: false,
            finished: false,
            completed_simple: 0,
            total_simple,
        })
    }

    fn build(spec: &TaskSpec, parent: Option<usize>, arena: &mut Vec<RtNode>) -> usize {
        let idx = arena.len();
        arena.push(RtNode {
            kind: Kind::Simple {
                node: NodeId::new(0),
                ex: 0.0,
                pex: 0.0,
            },
            parent,
            state: State::Pending,
            window_deadline: f64::NAN,
            pex_agg: spec.aggregate_pex(),
        });
        let kind = match spec {
            TaskSpec::Simple(s) => Kind::Simple {
                node: s.node,
                ex: s.ex,
                pex: s.pex,
            },
            TaskSpec::Serial(children) => {
                let ids = children
                    .iter()
                    .map(|c| Self::build(c, Some(idx), arena))
                    .collect();
                Kind::Serial {
                    children: ids,
                    next: 0,
                }
            }
            TaskSpec::Parallel(children) => {
                let ids: Vec<usize> = children
                    .iter()
                    .map(|c| Self::build(c, Some(idx), arena))
                    .collect();
                let n = ids.len();
                Kind::Parallel {
                    children: ids,
                    remaining: n,
                }
            }
        };
        arena[idx].kind = kind;
        idx
    }

    /// The task's arrival time.
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// The end-to-end deadline.
    pub fn global_deadline(&self) -> f64 {
        self.deadline
    }

    /// Whether every subtask has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// `(completed, total)` simple-subtask counts.
    pub fn progress(&self) -> (usize, usize) {
        (self.completed_simple, self.total_simple)
    }

    /// The virtual deadline assigned to a subtask, if it has activated.
    pub fn assigned_deadline(&self, subtask: SubtaskRef) -> Option<f64> {
        let node = &self.arena[subtask.0];
        if node.state == State::Pending {
            None
        } else {
            Some(node.window_deadline)
        }
    }

    /// Activates the task at `now`, returning the first submittable wave.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self, strategy: &dyn DeadlineAssigner, now: f64) -> Vec<Submission> {
        assert!(!self.started, "TaskRun::start called twice");
        self.started = true;
        let mut out = Vec::new();
        self.activate(self.root, strategy, now, self.deadline, &mut out);
        out
    }

    /// Reports that `subtask` finished at `now`; returns follow-up
    /// submissions, or [`Completion::Finished`] when the task is done.
    ///
    /// # Panics
    ///
    /// Panics if `subtask` is not currently active (double completion or a
    /// completion for a never-submitted subtask) or if the run never
    /// started.
    pub fn complete(
        &mut self,
        subtask: SubtaskRef,
        strategy: &dyn DeadlineAssigner,
        now: f64,
    ) -> Completion {
        assert!(self.started, "TaskRun::complete before start");
        let idx = subtask.0;
        assert!(
            matches!(self.arena[idx].kind, Kind::Simple { .. })
                && self.arena[idx].state == State::Active,
            "completion for a subtask that is not active: {subtask:?}"
        );
        self.arena[idx].state = State::Done;
        self.completed_simple += 1;

        let mut out = Vec::new();
        let mut cur = idx;
        loop {
            let Some(parent) = self.arena[cur].parent else {
                self.finished = true;
                return Completion::Finished;
            };
            match &mut self.arena[parent].kind {
                Kind::Serial { children, next } => {
                    *next += 1;
                    if *next < children.len() {
                        let child = children[*next];
                        let window = self.arena[parent].window_deadline;
                        let sub_dl =
                            self.serial_child_deadline(parent, child, strategy, now, window);
                        self.activate(child, strategy, now, sub_dl, &mut out);
                        return Completion::Submitted(out);
                    }
                    self.arena[parent].state = State::Done;
                    cur = parent;
                }
                Kind::Parallel { remaining, .. } => {
                    *remaining -= 1;
                    if *remaining > 0 {
                        return Completion::Submitted(out);
                    }
                    self.arena[parent].state = State::Done;
                    cur = parent;
                }
                Kind::Simple { .. } => unreachable!("simple node cannot be a parent"),
            }
        }
    }

    /// Computes the SSP deadline for `child` (a child of serial node
    /// `parent`) submitted at `now` within the parent's window.
    fn serial_child_deadline(
        &self,
        parent: usize,
        child: usize,
        strategy: &dyn DeadlineAssigner,
        now: f64,
        window_deadline: f64,
    ) -> f64 {
        let Kind::Serial { children, next } = &self.arena[parent].kind else {
            unreachable!("serial_child_deadline on non-serial parent");
        };
        debug_assert_eq!(children[*next], child);
        let pex_current = self.arena[child].pex_agg;
        let pex_rest: Vec<f64> = children[*next + 1..]
            .iter()
            .map(|&c| self.arena[c].pex_agg)
            .collect();
        // The nested runtime models the paper's delay-free network; the
        // communication-aware hot path is `FlatRun` (see
        // `FlatRun::set_expected_comm`).
        strategy.serial_deadline(&SspInput {
            submit_time: now,
            global_deadline: window_deadline,
            pex_current,
            pex_remaining_after: &pex_rest,
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        })
    }

    /// Activates node `idx` with virtual window `deadline` at time `now`,
    /// pushing any immediately submittable simple subtasks into `out`.
    fn activate(
        &mut self,
        idx: usize,
        strategy: &dyn DeadlineAssigner,
        now: f64,
        deadline: f64,
        out: &mut Vec<Submission>,
    ) {
        debug_assert_eq!(self.arena[idx].state, State::Pending, "double activation");
        self.arena[idx].state = State::Active;
        self.arena[idx].window_deadline = deadline;
        match self.arena[idx].kind.clone() {
            Kind::Simple { node, ex, pex } => {
                out.push(Submission {
                    subtask: SubtaskRef(idx),
                    node,
                    ex,
                    pex,
                    deadline,
                    // GF elevates every subtask of a global task over the
                    // locals at its node (paper §5.1); the class is thus a
                    // property of the whole strategy, not of the position
                    // in the tree.
                    priority: strategy.priority_class(),
                });
            }
            Kind::Serial { children, next } => {
                debug_assert_eq!(next, 0);
                let child = children[0];
                let sub_dl = self.serial_child_deadline(idx, child, strategy, now, deadline);
                self.activate(child, strategy, now, sub_dl, out);
            }
            Kind::Parallel { children, .. } => {
                let n = children.len();
                let branch_dl = strategy.parallel_deadline(&PspInput {
                    arrival_time: now,
                    global_deadline: deadline,
                    branch_count: n,
                    comm_current: 0.0,
                    comm_after: 0.0,
                    slack_scale: 1.0,
                });
                for child in children {
                    self.activate(child, strategy, now, branch_dl, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn leaf(node: u32, ex: f64) -> TaskSpec {
        TaskSpec::simple(NodeId::new(node), ex, ex)
    }

    fn drive_to_completion(
        run: &mut TaskRun,
        strategy: &SdaStrategy,
        mut now: f64,
        dt_per_subtask: f64,
    ) -> Vec<(f64, f64)> {
        // Completes submissions in FIFO order, `dt_per_subtask` apart.
        // Returns (deadline, completion_time) pairs.
        let mut pending: Vec<Submission> = run.start(strategy, now);
        let mut log = Vec::new();
        while let Some(sub) = pending.first().copied() {
            pending.remove(0);
            now += dt_per_subtask;
            log.push((sub.deadline, now));
            match run.complete(sub.subtask, strategy, now) {
                Completion::Submitted(more) => pending.extend(more),
                Completion::Finished => break,
            }
        }
        log
    }

    #[test]
    fn serial_chain_eqf_assigns_proportional_slack() {
        let spec = TaskSpec::serial(vec![leaf(0, 2.0), leaf(1, 3.0), leaf(2, 5.0)]);
        let mut run = TaskRun::new(&spec, 0.0, 20.0).unwrap();
        let subs = run.start(&SdaStrategy::eqf_ud(), 0.0);
        assert_eq!(subs.len(), 1);
        assert!((subs[0].deadline - 4.0).abs() < EPS); // 2 + 10·0.2
        assert_eq!(subs[0].node, NodeId::new(0));
    }

    #[test]
    fn serial_chain_completion_submits_next_with_inherited_slack() {
        let spec = TaskSpec::serial(vec![leaf(0, 1.0), leaf(1, 1.0)]);
        let mut run = TaskRun::new(&spec, 0.0, 4.0).unwrap();
        let strategy = SdaStrategy::eqf_ud();
        let first = run.start(&strategy, 0.0);
        // Stage 1: dl = 0 + 1 + 2·(1/2) = 2.
        assert!((first[0].deadline - 2.0).abs() < EPS);
        // Finish very early: stage 2 inherits all the slack.
        let Completion::Submitted(second) = run.complete(first[0].subtask, &strategy, 0.25) else {
            panic!("expected submissions");
        };
        assert_eq!(second.len(), 1);
        // Remaining slack = 4 − 0.25 − 1 = 2.75 all to the last stage.
        assert!((second[0].deadline - 4.0).abs() < EPS);
        let Completion::Finished = run.complete(second[0].subtask, &strategy, 1.5) else {
            panic!("expected finish");
        };
        assert!(run.is_finished());
    }

    #[test]
    fn parallel_fan_submits_all_at_once_and_finishes_on_last() {
        let spec = TaskSpec::parallel(vec![leaf(0, 1.0), leaf(1, 2.0), leaf(2, 3.0)]);
        let mut run = TaskRun::new(&spec, 10.0, 22.0).unwrap();
        let strategy = SdaStrategy::ud_div1();
        let subs = run.start(&strategy, 10.0);
        assert_eq!(subs.len(), 3);
        // DIV-1 with window 12, n=3: dl = 10 + 12/3 = 14 for every branch.
        for s in &subs {
            assert!((s.deadline - 14.0).abs() < EPS);
        }
        // Completing two branches yields empty submissions.
        assert_eq!(
            run.complete(subs[0].subtask, &strategy, 11.0),
            Completion::Submitted(vec![])
        );
        assert_eq!(
            run.complete(subs[1].subtask, &strategy, 12.0),
            Completion::Submitted(vec![])
        );
        assert_eq!(
            run.complete(subs[2].subtask, &strategy, 13.0),
            Completion::Finished
        );
    }

    #[test]
    fn gf_elevates_priority() {
        let spec = TaskSpec::parallel(vec![leaf(0, 1.0), leaf(1, 1.0)]);
        let mut run = TaskRun::new(&spec, 0.0, 10.0).unwrap();
        let gf = SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::GlobalsFirst,
        );
        let subs = run.start(&gf, 0.0);
        assert!(subs.iter().all(|s| s.priority == PriorityClass::Elevated));
        assert!(subs.iter().all(|s| (s.deadline - 10.0).abs() < EPS));
    }

    #[test]
    fn nested_serial_of_parallel_decomposes_recursively() {
        // [(A ∥ B) C]: serial window split by EQF, then the parallel
        // stage's window divided by DIV-1 among 2 branches.
        let spec = TaskSpec::serial(vec![
            TaskSpec::parallel(vec![leaf(0, 2.0), leaf(1, 2.0)]),
            leaf(2, 2.0),
        ]);
        let mut run = TaskRun::new(&spec, 0.0, 8.0).unwrap();
        let strategy = SdaStrategy::eqf_div1();
        let subs = run.start(&strategy, 0.0);
        // Serial level: stages have pex_agg = [2 (parallel max), 2];
        // slack = 8 − 4 = 4; EQF gives stage 1: dl = 0 + 2 + 4·(2/4) = 4.
        // Parallel level inside stage 1: window [0, 4], n = 2 →
        // branch dl = 0 + 4/2 = 2.
        assert_eq!(subs.len(), 2);
        for s in &subs {
            assert!((s.deadline - 2.0).abs() < EPS, "got {}", s.deadline);
        }
        // Finish both branches at t=3 (late vs virtual, fine for soft RT);
        // stage 2 then gets the remaining window.
        let _ = run.complete(subs[0].subtask, &strategy, 2.0);
        let Completion::Submitted(second) = run.complete(subs[1].subtask, &strategy, 3.0) else {
            panic!("expected submissions");
        };
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].node, NodeId::new(2));
        // Serial EQF at submit 3: remaining slack = 8−3−2 = 3, single
        // stage → dl = 8.
        assert!((second[0].deadline - 8.0).abs() < EPS);
    }

    #[test]
    fn parallel_of_serial_chains() {
        // [(A B) ∥ (C D)] — two pipelines racing.
        let spec = TaskSpec::parallel(vec![
            TaskSpec::serial(vec![leaf(0, 1.0), leaf(1, 1.0)]),
            TaskSpec::serial(vec![leaf(2, 1.0), leaf(3, 1.0)]),
        ]);
        let mut run = TaskRun::new(&spec, 0.0, 8.0).unwrap();
        let strategy = SdaStrategy::eqf_div1();
        let subs = run.start(&strategy, 0.0);
        // Each pipeline gets window dl = 0 + 8/2 = 4 (DIV-1, n=2), then
        // EQF inside: stage 1 dl = 0 + 1 + 2·(1/2) = 2.
        assert_eq!(subs.len(), 2);
        for s in &subs {
            assert!((s.deadline - 2.0).abs() < EPS);
        }
        // Finishing the first stage of pipeline 0 submits its stage 2.
        let Completion::Submitted(next) = run.complete(subs[0].subtask, &strategy, 1.0) else {
            panic!()
        };
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].node, NodeId::new(1));
        // EQF: remaining slack in window = 4−1−1 = 2 → dl = 1+1+2 = 4.
        assert!((next[0].deadline - 4.0).abs() < EPS);
    }

    #[test]
    fn single_simple_task_degenerates_to_global_deadline() {
        let spec = leaf(0, 2.0);
        let mut run = TaskRun::new(&spec, 1.0, 5.0).unwrap();
        let subs = run.start(&SdaStrategy::eqf_div1(), 1.0);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].deadline, 5.0);
        assert_eq!(
            run.complete(subs[0].subtask, &SdaStrategy::eqf_div1(), 3.0),
            Completion::Finished
        );
    }

    #[test]
    fn drive_whole_tree_to_completion() {
        let spec = TaskSpec::serial(vec![
            leaf(0, 1.0),
            TaskSpec::parallel(vec![
                leaf(1, 1.0),
                TaskSpec::serial(vec![leaf(2, 0.5), leaf(3, 0.5)]),
            ]),
            leaf(4, 1.0),
        ]);
        let mut run = TaskRun::new(&spec, 0.0, 20.0).unwrap();
        let log = drive_to_completion(&mut run, &SdaStrategy::eqf_div1(), 0.0, 0.5);
        assert!(run.is_finished());
        assert_eq!(run.progress(), (5, 5));
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn progress_and_assigned_deadline_queries() {
        let spec = TaskSpec::serial(vec![leaf(0, 1.0), leaf(1, 1.0)]);
        let mut run = TaskRun::new(&spec, 0.0, 4.0).unwrap();
        assert_eq!(run.progress(), (0, 2));
        let subs = run.start(&SdaStrategy::eqf_ud(), 0.0);
        assert!(run.assigned_deadline(subs[0].subtask).is_some());
        assert_eq!(run.arrival(), 0.0);
        assert_eq!(run.global_deadline(), 4.0);
        run.complete(subs[0].subtask, &SdaStrategy::eqf_ud(), 1.0);
        assert_eq!(run.progress(), (1, 2));
    }

    #[test]
    fn invalid_spec_rejected() {
        let bad = TaskSpec::serial(vec![]);
        assert!(TaskRun::new(&bad, 0.0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "start called twice")]
    fn double_start_panics() {
        let spec = leaf(0, 1.0);
        let mut run = TaskRun::new(&spec, 0.0, 2.0).unwrap();
        run.start(&SdaStrategy::ud_ud(), 0.0);
        run.start(&SdaStrategy::ud_ud(), 0.0);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn double_complete_panics() {
        let spec = TaskSpec::parallel(vec![leaf(0, 1.0), leaf(1, 1.0)]);
        let mut run = TaskRun::new(&spec, 0.0, 4.0).unwrap();
        let strategy = SdaStrategy::ud_ud();
        let subs = run.start(&strategy, 0.0);
        run.complete(subs[0].subtask, &strategy, 1.0);
        run.complete(subs[0].subtask, &strategy, 2.0);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(SdaStrategy::ud_ud().short_name(), "UD-UD");
        assert_eq!(SdaStrategy::ud_div1().short_name(), "UD-DIV1");
        assert_eq!(SdaStrategy::eqf_ud().short_name(), "EQF-UD");
        assert_eq!(SdaStrategy::eqf_div1().to_string(), "EQF-DIV1");
        let adaptive =
            SdaStrategy::adaptive(SdaStrategy::eqf_div1(), crate::AdaptiveSlack::default());
        assert!(adaptive.is_adaptive());
        assert_eq!(adaptive.short_name(), "ADAPT(EQF-DIV1)");
        assert!(!SdaStrategy::eqf_div1().is_adaptive());
    }

    #[test]
    fn ud_ud_assigns_global_deadline_everywhere() {
        let spec = TaskSpec::serial(vec![
            leaf(0, 1.0),
            TaskSpec::parallel(vec![leaf(1, 1.0), leaf(2, 1.0)]),
        ]);
        let mut run = TaskRun::new(&spec, 0.0, 9.0).unwrap();
        let strategy = SdaStrategy::ud_ud();
        let mut all: Vec<Submission> = run.start(&strategy, 0.0);
        let first = all[0];
        if let Completion::Submitted(next) = run.complete(first.subtask, &strategy, 1.0) {
            all.extend(next);
        }
        assert!(all.iter().all(|s| (s.deadline - 9.0).abs() < EPS));
    }
}
