//! # sda-core — subtask deadline assignment (the paper's contribution)
//!
//! In a distributed soft real-time system, a *global task* is a
//! serial-parallel composition of *subtasks*, each executing at one node.
//! Applications specify one **end-to-end deadline**; every node schedules
//! independently (typically earliest-deadline-first) and never coordinates
//! with its peers. The **subtask deadline assignment problem (SDA)** asks:
//! what *virtual deadline* should each subtask carry so that local
//! schedulers perceive its true urgency?
//!
//! Kao & Garcia-Molina (ICDCS '93) split SDA into two subproblems and
//! propose strategy families for each:
//!
//! * the **serial subtask problem** ([`SerialStrategy`]):
//!   Ultimate Deadline, Effective Deadline, Equal Slack, Equal Flexibility;
//! * the **parallel subtask problem** ([`ParallelStrategy`]):
//!   Ultimate Deadline, DIV-x, Globals First;
//! * the combined, recursive assigner for serial-parallel trees
//!   ([`TaskRun`] driving an [`SdaStrategy`]);
//! * beyond the paper, first-class **precedence DAGs** ([`DagRun`]):
//!   arbitrary fork–join structures with per-wave critical-path
//!   deadline decomposition that reduces bit-exactly to the
//!   stage-structured rules on layered tasks;
//! * beyond the paper, the **feedback-adaptive wrapper** `ADAPT(base)`
//!   ([`AdaptiveSlack`]): a windowed miss-ratio signal, threaded through
//!   [`SspInput::slack_scale`]/[`PspInput::slack_scale`], shrinks the
//!   slack share the slack-dividing strategies hand each stage while the
//!   system is observably overloaded — closing the loop the open-loop
//!   strategies leave open under bursty, non-stationary arrivals.
//!
//! This crate is pure and deterministic: no clocks, no RNG, no I/O. The
//! simulation crates (`sda-system`, `sda-workload`) drive it; it is equally
//! usable inside a real process manager.
//!
//! ## Example: dynamic serial decomposition
//!
//! ```
//! use sda_core::{NodeId, SdaStrategy, SerialStrategy, ParallelStrategy,
//!                TaskRun, TaskSpec, Completion};
//!
//! // [T1 T2] — two stages on different nodes, pex 1.0 each.
//! let spec = TaskSpec::serial(vec![
//!     TaskSpec::simple(NodeId::new(0), 1.0, 1.0),
//!     TaskSpec::simple(NodeId::new(1), 1.0, 1.0),
//! ]);
//! let strategy = SdaStrategy::new(SerialStrategy::EqualFlexibility,
//!                                 ParallelStrategy::UltimateDeadline);
//!
//! // Arrives at t=0 with end-to-end deadline 4 (2 ex + 2 slack).
//! let mut run = TaskRun::new(&spec, 0.0, 4.0)?;
//! let first = run.start(&strategy, 0.0);
//! assert_eq!(first.len(), 1);
//! // EQF gives stage 1 half the slack: dl = 0 + 1 + 2·(1/2) = 2.
//! assert!((first[0].deadline - 2.0).abs() < 1e-12);
//!
//! // Stage 1 finishes *early* at t=0.5; stage 2 inherits the leftover.
//! match run.complete(first[0].subtask, &strategy, 0.5) {
//!     Completion::Submitted(subs) => {
//!         assert!((subs[0].deadline - 4.0).abs() < 1e-12);
//!     }
//!     Completion::Finished => unreachable!(),
//! }
//! # Ok::<(), sda_core::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod adapt;
mod assign;
mod attr;
mod dag;
mod error;
mod flat;
mod ids;
mod psp;
mod spec;
mod ssp;
mod strategy;

pub use adapt::AdaptiveSlack;
pub use assign::{Completion, SdaStrategy, Submission, SubtaskRef, TaskRun};
pub use attr::TaskAttributes;
pub use dag::DagRun;
pub use error::SpecError;
pub use flat::FlatRun;
pub use ids::{NodeId, PriorityClass, TaskClass, TaskId};
pub use psp::{ParallelStrategy, PspInput};
pub use spec::{SimpleSpec, TaskSpec};
pub use ssp::{SerialStrategy, SspInput};
pub use strategy::DeadlineAssigner;
