//! Feedback-adaptive deadline assignment — the `ADAPT(base)` wrapper.
//!
//! The paper's strategies are *open-loop*: the slack a subtask receives
//! depends only on the task's own state. Under transient overload
//! (bursty or phased arrivals) that leaves performance on the table —
//! when queues are long, early stages burn slack waiting and the
//! remaining stages inherit deficits ("the poor get poorer", §4.2.2).
//! "Adaptive Fixed Priority End-To-End Imprecise Scheduling" (see
//! PAPERS.md) argues end-to-end slack policies should react to observed
//! load; `ADAPT(base)` closes the loop:
//!
//! 1. the system maintains a **windowed miss-ratio estimate** — an EWMA
//!    over task completions, O(1) per completion, no allocation (see
//!    `sda_system`'s `Feedback`);
//! 2. at every stage activation the estimate is mapped through
//!    [`AdaptiveSlack::scale`] to a slack multiplier in `[floor, 1]`;
//! 3. the multiplier rides into the base strategy through
//!    [`SspInput::slack_scale`](crate::SspInput) /
//!    [`PspInput::slack_scale`](crate::PspInput), where the
//!    slack-dividing rules (EQS, EQF, EQF-AS, DIV-x) shrink the share
//!    they hand the current stage — *positive* shares only, so a
//!    behind-schedule stage keeps its full open-loop urgency; UD, ED
//!    and GF are unaffected.
//!
//! The effect is a dynamic version of EQF-AS's slack hold-back: while
//! the observed miss ratio is high, early stages get tighter virtual
//! deadlines, which promotes global subtasks over local tasks in every
//! node's EDF queue exactly when the system is behind; when the system
//! is calm the multiplier returns to 1 and the base strategy's paper
//! semantics resume. Because the feedback only ever *rescales the slack
//! share*, a disabled wrapper (`scale = 1`) is bit-identical to the
//! base strategy.

use serde::{Deserialize, Serialize};

use crate::error::SpecError;

/// Configuration of the `ADAPT(base)` feedback loop: how strongly the
/// observed miss pressure shrinks slack shares, and how far it may go.
///
/// `scale(p) = clamp(1 − gain · p, floor, 1)` for pressure `p ∈ [0, 1]`.
///
/// ```
/// use sda_core::AdaptiveSlack;
///
/// let a = AdaptiveSlack::new(1.0, 0.25)?;
/// assert_eq!(a.scale(0.0), 1.0);      // calm system: paper semantics
/// assert_eq!(a.scale(0.5), 0.5);      // half the completions missing
/// assert_eq!(a.scale(1.0), 0.25);     // saturated: clamped at the floor
/// # Ok::<(), sda_core::SpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSlack {
    /// Feedback gain `g ≥ 0`: how aggressively pressure shrinks the
    /// slack share. 0 disables the loop (always scale 1).
    pub gain: f64,
    /// Lower clamp on the scale, in `[0, 1]` — prevents the loop from
    /// collapsing virtual deadlines to the infeasible `submit + pex`.
    pub floor: f64,
}

impl AdaptiveSlack {
    /// Constructs the wrapper configuration, validating `gain ≥ 0`
    /// (finite) and `0 ≤ floor ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidTime`] naming the bad parameter.
    pub fn new(gain: f64, floor: f64) -> Result<AdaptiveSlack, SpecError> {
        if !(gain.is_finite() && gain >= 0.0) {
            return Err(SpecError::InvalidTime {
                what: "adaptive slack gain",
                value: gain,
            });
        }
        if !(floor.is_finite() && (0.0..=1.0).contains(&floor)) {
            return Err(SpecError::InvalidTime {
                what: "adaptive slack floor",
                value: floor,
            });
        }
        Ok(AdaptiveSlack { gain, floor })
    }

    /// Maps the observed miss pressure (a windowed miss ratio in
    /// `[0, 1]`) to the slack multiplier threaded through
    /// [`SspInput::slack_scale`](crate::SspInput). Out-of-range
    /// pressures are clamped first, so a transient estimator glitch can
    /// never invert the loop.
    #[inline]
    pub fn scale(&self, pressure: f64) -> f64 {
        let p = pressure.clamp(0.0, 1.0);
        (1.0 - self.gain * p).clamp(self.floor, 1.0)
    }
}

impl Default for AdaptiveSlack {
    /// Gain 1, floor 0.25 — under total overload early stages keep a
    /// quarter of their paper-formula slack share.
    fn default() -> Self {
        AdaptiveSlack {
            gain: 1.0,
            floor: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_monotone_and_clamped() {
        let a = AdaptiveSlack::default();
        assert_eq!(a.scale(0.0), 1.0);
        assert_eq!(a.scale(-3.0), 1.0, "negative pressure clamps to calm");
        assert_eq!(a.scale(2.0), 0.25, "pressure clamps to 1 before mapping");
        let mut last = 1.0;
        for i in 0..=10 {
            let s = a.scale(f64::from(i) / 10.0);
            assert!(s <= last + 1e-15);
            assert!((0.25..=1.0).contains(&s));
            last = s;
        }
    }

    #[test]
    fn zero_gain_disables_the_loop() {
        let a = AdaptiveSlack::new(0.0, 0.5).unwrap();
        for p in [0.0, 0.3, 1.0] {
            assert_eq!(a.scale(p), 1.0);
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(AdaptiveSlack::new(-1.0, 0.5).is_err());
        assert!(AdaptiveSlack::new(f64::NAN, 0.5).is_err());
        assert!(AdaptiveSlack::new(1.0, -0.1).is_err());
        assert!(AdaptiveSlack::new(1.0, 1.5).is_err());
        assert!(AdaptiveSlack::new(2.0, 0.0).is_ok());
    }
}
