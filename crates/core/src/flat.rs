//! Arena-friendly runtime for stage-structured global tasks.
//!
//! [`TaskRun`](crate::TaskRun) handles arbitrary serial-parallel trees
//! but pays for the generality: every task allocates a fresh node arena
//! of nested `Vec`s, and every completion allocates submission vectors.
//! The workload generator only ever produces *stage-structured* tasks —
//! a serial sequence of stages, each stage either one bare subtask or a
//! parallel group — so the steady-state hot path uses [`FlatRun`]
//! instead: one flat `Vec` of subtasks plus stage offsets, fully
//! recyclable, writing submissions into caller-provided buffers.
//!
//! A `FlatRun` is designed to live in a pool (see `sda-system`'s task
//! slab): [`FlatRun::reset`] clears the task without releasing capacity,
//! so after warm-up a recycled run performs **zero heap allocations** per
//! task lifecycle.
//!
//! The deadline decomposition is bit-identical to driving a [`TaskRun`]
//! over the equivalent nested [`TaskSpec`](crate::TaskSpec): serial
//! levels apply the SSP rule over per-stage aggregate `pex` (parallel
//! stages aggregate by max), parallel groups apply the PSP rule within
//! the stage window, and submissions are emitted in the same order.

use crate::assign::{Submission, SubtaskRef};
use crate::ids::NodeId;
use crate::psp::PspInput;
use crate::spec::SimpleSpec;
use crate::ssp::SspInput;
use crate::strategy::DeadlineAssigner;

/// Runtime state of one in-flight stage-structured global task, stored
/// flat for recycling.
///
/// # Life cycle
///
/// 1. [`FlatRun::reset`], then for each stage: [`FlatRun::push_subtask`]
///    calls followed by [`FlatRun::end_stage`]; finally
///    [`FlatRun::set_structure`] and [`FlatRun::set_timing`]
///    (the workload generator does all of this);
/// 2. [`FlatRun::start`] once at arrival — appends the first submittable
///    wave to the output buffer;
/// 3. [`FlatRun::complete`] per finished subtask — appends follow-up
///    submissions, returns `true` when the whole task just finished.
///
/// # Examples
///
/// ```
/// use sda_core::{FlatRun, NodeId, SdaStrategy};
///
/// // A two-stage serial chain, pex 1.0 each, deadline 4.
/// let mut run = FlatRun::new();
/// run.reset();
/// run.push_subtask(NodeId::new(0), 1.0, 1.0);
/// run.end_stage();
/// run.push_subtask(NodeId::new(1), 1.0, 1.0);
/// run.end_stage();
/// run.set_structure(true, false);
/// run.set_timing(0.0, 4.0);
///
/// let strategy = SdaStrategy::eqf_ud();
/// let mut subs = Vec::new();
/// run.start(&strategy, 0.0, &mut subs);
/// assert_eq!(subs.len(), 1);
/// // EQF gives stage 1 half the slack: dl = 0 + 1 + 2·(1/2) = 2.
/// assert!((subs[0].deadline - 2.0).abs() < 1e-12);
///
/// let first = subs[0].subtask;
/// subs.clear();
/// let finished = run.complete(first, &strategy, 0.5, &mut subs);
/// // Stage 2 inherits the leftover slack: dl = 4.
/// assert!(!finished);
/// assert!((subs[0].deadline - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FlatRun {
    /// All simple subtasks, in stage order.
    subtasks: Vec<SimpleSpec>,
    /// `stage_ends[s]` is the end index (exclusive) of stage `s`.
    stage_ends: Vec<u32>,
    /// Aggregate predicted execution time per stage (parallel stages
    /// aggregate by max, exactly like `TaskSpec::aggregate_pex`).
    stage_pex: Vec<f64>,
    /// Per-subtask completion flags (guards double completion).
    done: Vec<bool>,
    arrival: f64,
    deadline: f64,
    /// Whether the SSP rule applies across stages (false only for a
    /// task that is a single top-level parallel group).
    serial_levels: bool,
    /// Whether each stage is a parallel *group* (PSP applies within it),
    /// as opposed to a bare subtask.
    parallel_groups: bool,
    current_stage: usize,
    remaining_in_stage: u32,
    completed: u32,
    started: bool,
    finished: bool,
    /// Expected one-hop communication delay of the network the task runs
    /// over (0.0 = the paper's delay-free network). Feeds the `comm_*`
    /// fields of [`SspInput`]/[`PspInput`] so slack-dividing strategies
    /// reserve slack for transit.
    expected_hop_comm: f64,
    /// Feedback-driven multiplier on the slack share of every stage
    /// activation (1.0 = the paper's open-loop formulas). Stamped by the
    /// system model from its windowed miss-ratio estimate when the
    /// strategy is `ADAPT(base)`; feeds the `slack_scale` field of
    /// [`SspInput`]/[`PspInput`].
    slack_scale: f64,
}

impl Default for FlatRun {
    /// An empty run — identical to a freshly [`reset`](FlatRun::reset)
    /// one (in particular `slack_scale` starts at its neutral 1.0).
    fn default() -> FlatRun {
        FlatRun {
            subtasks: Vec::new(),
            stage_ends: Vec::new(),
            stage_pex: Vec::new(),
            done: Vec::new(),
            arrival: 0.0,
            deadline: 0.0,
            serial_levels: true,
            parallel_groups: false,
            current_stage: 0,
            remaining_in_stage: 0,
            completed: 0,
            started: false,
            finished: false,
            expected_hop_comm: 0.0,
            slack_scale: 1.0,
        }
    }
}

impl FlatRun {
    /// An empty run with no storage committed.
    pub fn new() -> FlatRun {
        FlatRun::default()
    }

    /// Clears the run for refilling, retaining all capacity — the pool
    /// recycling entry point.
    pub fn reset(&mut self) {
        self.subtasks.clear();
        self.stage_ends.clear();
        self.stage_pex.clear();
        self.done.clear();
        self.arrival = 0.0;
        self.deadline = 0.0;
        self.serial_levels = true;
        self.parallel_groups = false;
        self.current_stage = 0;
        self.remaining_in_stage = 0;
        self.completed = 0;
        self.started = false;
        self.finished = false;
        self.expected_hop_comm = 0.0;
        self.slack_scale = 1.0;
    }

    /// Appends one subtask to the stage currently being built.
    pub fn push_subtask(&mut self, node: NodeId, ex: f64, pex: f64) {
        debug_assert!(ex.is_finite() && ex >= 0.0, "invalid ex {ex}");
        debug_assert!(pex.is_finite() && pex >= 0.0, "invalid pex {pex}");
        self.subtasks.push(SimpleSpec { node, ex, pex });
        self.done.push(false);
    }

    /// Closes the stage currently being built (it must be non-empty) and
    /// records its aggregate `pex`.
    pub fn end_stage(&mut self) {
        let start = self.stage_ends.last().copied().unwrap_or(0) as usize;
        let end = self.subtasks.len();
        assert!(end > start, "end_stage on an empty stage");
        // Parallel groups aggregate pex by max (TaskSpec::aggregate_pex);
        // a bare stage's fold over one non-negative value is its pex.
        let agg = self.subtasks[start..end]
            .iter()
            .map(|s| s.pex)
            .fold(0.0, f64::max);
        self.stage_pex.push(agg);
        self.stage_ends
            .push(u32::try_from(end).expect("more than u32::MAX subtasks in one task"));
    }

    /// Declares the structure: whether the SSP rule applies across stages
    /// and whether each stage is a parallel group (PSP within stages).
    pub fn set_structure(&mut self, serial_levels: bool, parallel_groups: bool) {
        self.serial_levels = serial_levels;
        self.parallel_groups = parallel_groups;
    }

    /// Sets arrival time and end-to-end deadline.
    pub fn set_timing(&mut self, arrival: f64, deadline: f64) {
        self.arrival = arrival;
        self.deadline = deadline;
    }

    /// Declares the expected one-hop communication delay of the network
    /// this task will traverse. Every hand-off (initial fan-out,
    /// inter-stage forwarding, result return) is expected to cost this
    /// much; deadline decomposition reserves slack accordingly. Reset
    /// (and default) is `0.0`, which reproduces the paper's delay-free
    /// deadlines bit-exactly.
    pub fn set_expected_comm(&mut self, per_hop: f64) {
        debug_assert!(
            per_hop.is_finite() && per_hop >= 0.0,
            "invalid expected hop delay {per_hop}"
        );
        self.expected_hop_comm = per_hop;
    }

    /// The declared expected one-hop communication delay.
    pub fn expected_comm(&self) -> f64 {
        self.expected_hop_comm
    }

    /// Declares the feedback-driven slack-share multiplier in force for
    /// the *next* stage activation (the system model re-stamps it before
    /// every [`FlatRun::start`]/[`FlatRun::complete`] under an
    /// `ADAPT(base)` strategy, so the loop reacts to the live miss-ratio
    /// estimate). The default — and the value after [`FlatRun::reset`] —
    /// is `1.0`, which reproduces the open-loop deadlines bit-exactly.
    pub fn set_slack_scale(&mut self, scale: f64) {
        debug_assert!(
            scale.is_finite() && scale > 0.0,
            "invalid slack scale {scale}"
        );
        self.slack_scale = scale;
    }

    /// The slack-share multiplier currently in force.
    pub fn slack_scale(&self) -> f64 {
        self.slack_scale
    }

    /// The task's arrival time.
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// The end-to-end deadline.
    pub fn global_deadline(&self) -> f64 {
        self.deadline
    }

    /// Whether every subtask has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// `(completed, total)` simple-subtask counts.
    pub fn progress(&self) -> (usize, usize) {
        (self.completed as usize, self.subtasks.len())
    }

    /// Number of simple subtasks.
    pub fn simple_count(&self) -> usize {
        self.subtasks.len()
    }

    /// Number of serial stages.
    pub fn stage_count(&self) -> usize {
        self.stage_ends.len()
    }

    /// All subtasks in stage order.
    pub fn subtasks(&self) -> &[SimpleSpec] {
        &self.subtasks
    }

    /// The subtasks of stage `s`.
    pub fn stage(&self, s: usize) -> &[SimpleSpec] {
        let (start, end) = self.stage_bounds(s);
        &self.subtasks[start..end]
    }

    #[inline]
    fn stage_bounds(&self, s: usize) -> (usize, usize) {
        let start = if s == 0 {
            0
        } else {
            self.stage_ends[s - 1] as usize
        };
        (start, self.stage_ends[s] as usize)
    }

    /// Sum of real execution times over all subtasks.
    pub fn total_ex(&self) -> f64 {
        self.subtasks.iter().map(|s| s.ex).sum()
    }

    /// Real execution time along the critical path: stages add, branches
    /// within a stage take the maximum — identical arithmetic (and fold
    /// order) to `TaskSpec::critical_path_ex` on the nested equivalent.
    pub fn critical_path_ex(&self) -> f64 {
        let mut total = 0.0;
        let mut start = 0usize;
        for &end in &self.stage_ends {
            let end = end as usize;
            let stage_max = self.subtasks[start..end]
                .iter()
                .map(|s| s.ex)
                .fold(0.0, f64::max);
            total += stage_max;
            start = end;
        }
        total
    }

    /// Activates the task at `now`, appending the first submittable wave
    /// to `out` (which is *not* cleared first).
    ///
    /// # Panics
    ///
    /// Panics if called twice, or on an empty (never filled) run.
    pub fn start<A: DeadlineAssigner + ?Sized>(
        &mut self,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        assert!(!self.started, "FlatRun::start called twice");
        assert!(
            !self.stage_ends.is_empty(),
            "FlatRun::start on an empty task"
        );
        self.started = true;
        self.activate_stage(0, strategy, now, out);
    }

    /// Reports that `subtask` finished at `now`, appending any follow-up
    /// submissions to `out`. Returns `true` when the whole task just
    /// finished.
    ///
    /// # Panics
    ///
    /// Panics if the run never started, if `subtask` is not in the
    /// currently active stage, or on double completion.
    pub fn complete<A: DeadlineAssigner + ?Sized>(
        &mut self,
        subtask: SubtaskRef,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) -> bool {
        assert!(self.started, "FlatRun::complete before start");
        let idx = subtask.0;
        let (start, end) = self.stage_bounds(self.current_stage);
        assert!(
            idx >= start && idx < end && !self.done[idx],
            "completion for a subtask that is not active: {subtask:?}"
        );
        self.done[idx] = true;
        self.completed += 1;
        self.remaining_in_stage -= 1;
        if self.remaining_in_stage > 0 {
            return false;
        }
        if self.current_stage + 1 == self.stage_ends.len() {
            self.finished = true;
            return true;
        }
        self.activate_stage(self.current_stage + 1, strategy, now, out);
        false
    }

    /// Re-issues a *lost* subtask of the currently active stage at `now`,
    /// appending exactly one replacement submission to `out`.
    ///
    /// The replacement deadline re-decomposes the **residual** budget:
    /// the SSP rule is re-applied at `now` over the current stage plus
    /// every stage still ahead (the same arithmetic stage activation
    /// used when the stage first opened, but
    /// with the clock advanced — so whatever slack the failure burned is
    /// charged to this and later stages under the strategy's own
    /// division rule). The straggler keeps the whole stage window: its
    /// siblings already carry their original deadlines (or are done), so
    /// there is nothing left to divide the window across.
    ///
    /// Completion bookkeeping is untouched — the subtask was outstanding
    /// before the loss and stays outstanding until [`FlatRun::complete`]
    /// is finally called for it.
    ///
    /// # Panics
    ///
    /// Panics if the run never started, or if `subtask` is not an
    /// uncompleted member of the currently active stage.
    pub fn reissue<A: DeadlineAssigner + ?Sized>(
        &mut self,
        subtask: SubtaskRef,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        assert!(self.started, "FlatRun::reissue before start");
        let idx = subtask.0;
        let stage = self.current_stage;
        let (start, end) = self.stage_bounds(stage);
        assert!(
            idx >= start && idx < end && !self.done[idx],
            "reissue for a subtask that is not active: {subtask:?}"
        );
        let hop = self.expected_hop_comm;
        let stage_dl = if self.serial_levels {
            strategy.serial_deadline(&SspInput {
                submit_time: now,
                global_deadline: self.deadline,
                pex_current: self.stage_pex[stage],
                pex_remaining_after: &self.stage_pex[stage + 1..],
                comm_current: hop,
                comm_after: hop * (self.stage_ends.len() - stage) as f64,
                slack_scale: self.slack_scale,
            })
        } else {
            self.deadline
        };
        let s = self.subtasks[idx];
        out.push(Submission {
            subtask: SubtaskRef(idx),
            node: s.node,
            ex: s.ex,
            pex: s.pex,
            deadline: stage_dl,
            priority: strategy.priority_class(),
        });
    }

    /// Activates stage `stage` at `now`: computes its window via the SSP
    /// rule (when serial levels apply), the branch deadline via the PSP
    /// rule (when the stage is a parallel group), and appends one
    /// submission per subtask.
    fn activate_stage<A: DeadlineAssigner + ?Sized>(
        &mut self,
        stage: usize,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        let (start, end) = self.stage_bounds(stage);
        let hop = self.expected_hop_comm;
        let stage_dl = if self.serial_levels {
            strategy.serial_deadline(&SspInput {
                submit_time: now,
                global_deadline: self.deadline,
                pex_current: self.stage_pex[stage],
                pex_remaining_after: &self.stage_pex[stage + 1..],
                // One hop is in flight to this stage; after it completes
                // there are (stage_count − 1 − stage) inter-stage
                // hand-offs plus the result return still to pay.
                comm_current: hop,
                comm_after: hop * (self.stage_ends.len() - stage) as f64,
                slack_scale: self.slack_scale,
            })
        } else {
            self.deadline
        };
        let branch_dl = if self.parallel_groups {
            strategy.parallel_deadline(&PspInput {
                arrival_time: now,
                global_deadline: stage_dl,
                branch_count: end - start,
                comm_current: hop,
                // For a group inside a serial decomposition the window
                // already reserves downstream transit; a top-level
                // parallel task still owes its result return.
                comm_after: if self.serial_levels { 0.0 } else { hop },
                slack_scale: self.slack_scale,
            })
        } else {
            stage_dl
        };
        let priority = strategy.priority_class();
        for idx in start..end {
            let s = self.subtasks[idx];
            out.push(Submission {
                subtask: SubtaskRef(idx),
                node: s.node,
                ex: s.ex,
                pex: s.pex,
                deadline: branch_dl,
                priority,
            });
        }
        self.current_stage = stage;
        self.remaining_in_stage = (end - start) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Completion, SdaStrategy, TaskRun};
    use crate::spec::TaskSpec;

    /// Builds the nested TaskSpec equivalent of a FlatRun's structure.
    fn nested_equivalent(run: &FlatRun, serial_levels: bool, parallel_groups: bool) -> TaskSpec {
        let stages: Vec<TaskSpec> = (0..run.stage_count())
            .map(|s| {
                let leaves: Vec<TaskSpec> = run
                    .stage(s)
                    .iter()
                    .map(|sub| TaskSpec::simple(sub.node, sub.ex, sub.pex))
                    .collect();
                if parallel_groups {
                    TaskSpec::parallel(leaves)
                } else {
                    leaves.into_iter().next().expect("bare stage has one leaf")
                }
            })
            .collect();
        if serial_levels {
            TaskSpec::serial(stages)
        } else {
            stages
                .into_iter()
                .next()
                .expect("parallel root is one stage")
        }
    }

    /// Drives a FlatRun and the equivalent TaskRun side by side with the
    /// same completion schedule and asserts bit-identical submissions.
    fn assert_matches_nested(
        run: &mut FlatRun,
        serial_levels: bool,
        parallel_groups: bool,
        strategy: &SdaStrategy,
        dt: f64,
    ) {
        let spec = nested_equivalent(run, serial_levels, parallel_groups);
        let mut nested =
            TaskRun::new(&spec, run.arrival(), run.global_deadline()).expect("valid spec");

        let mut now = run.arrival();
        let mut flat_subs = Vec::new();
        run.start(strategy, now, &mut flat_subs);
        let mut nested_subs = nested.start(strategy, now);
        loop {
            assert_eq!(flat_subs.len(), nested_subs.len());
            for (f, n) in flat_subs.iter().zip(&nested_subs) {
                assert_eq!(f.node, n.node);
                assert_eq!(f.ex.to_bits(), n.ex.to_bits());
                assert_eq!(f.pex.to_bits(), n.pex.to_bits());
                assert_eq!(f.deadline.to_bits(), n.deadline.to_bits(), "deadline");
                assert_eq!(f.priority, n.priority);
            }
            if flat_subs.is_empty() {
                break;
            }
            // Complete the first pending submission in FIFO order.
            let (f, n) = (flat_subs.remove(0), nested_subs.remove(0));
            now += dt;
            let mut more = Vec::new();
            let finished = run.complete(f.subtask, strategy, now, &mut more);
            flat_subs.extend(more);
            match nested.complete(n.subtask, strategy, now) {
                Completion::Submitted(subs) => {
                    assert!(!finished || subs.is_empty());
                    nested_subs.extend(subs);
                }
                Completion::Finished => {
                    assert!(finished, "nested finished but flat did not");
                    assert!(flat_subs.is_empty());
                    break;
                }
            }
        }
        assert_eq!(run.is_finished(), nested.is_finished());
    }

    fn serial_chain(pex: &[f64], deadline: f64) -> FlatRun {
        let mut run = FlatRun::new();
        run.reset();
        for (i, &p) in pex.iter().enumerate() {
            run.push_subtask(NodeId::new(i as u32), p, p);
            run.end_stage();
        }
        run.set_structure(true, false);
        run.set_timing(0.0, deadline);
        run
    }

    #[test]
    fn serial_chain_matches_task_run() {
        for strategy in [
            SdaStrategy::ud_ud(),
            SdaStrategy::eqf_ud(),
            SdaStrategy::eqf_div1(),
        ] {
            let mut run = serial_chain(&[2.0, 3.0, 5.0], 20.0);
            assert_matches_nested(&mut run, true, false, &strategy, 1.7);
        }
    }

    #[test]
    fn parallel_fan_matches_task_run() {
        for strategy in [SdaStrategy::ud_div1(), SdaStrategy::eqf_div1()] {
            let mut run = FlatRun::new();
            run.reset();
            for (i, ex) in [1.0, 2.0, 3.0].into_iter().enumerate() {
                run.push_subtask(NodeId::new(i as u32), ex, ex);
            }
            run.end_stage();
            run.set_structure(false, true);
            run.set_timing(10.0, 22.0);
            assert_matches_nested(&mut run, false, true, &strategy, 0.9);
        }
    }

    #[test]
    fn pipeline_of_fans_matches_task_run() {
        for strategy in [
            SdaStrategy::ud_ud(),
            SdaStrategy::ud_div1(),
            SdaStrategy::eqf_div1(),
        ] {
            let mut run = FlatRun::new();
            run.reset();
            let mut node = 0;
            for _stage in 0..3 {
                for ex in [0.5, 1.5] {
                    run.push_subtask(NodeId::new(node), ex, ex);
                    node += 1;
                }
                run.end_stage();
            }
            run.set_structure(true, true);
            run.set_timing(1.0, 25.0);
            assert_matches_nested(&mut run, true, true, &strategy, 0.6);
        }
    }

    #[test]
    fn measures_match_nested() {
        let mut run = FlatRun::new();
        run.reset();
        run.push_subtask(NodeId::new(0), 1.0, 1.0);
        run.push_subtask(NodeId::new(1), 2.5, 2.5);
        run.end_stage();
        run.push_subtask(NodeId::new(2), 0.5, 0.5);
        run.end_stage();
        run.set_structure(true, true);
        run.set_timing(0.0, 12.0);
        let spec = nested_equivalent(&run, true, true);
        assert_eq!(run.simple_count(), spec.simple_count());
        assert_eq!(run.total_ex().to_bits(), spec.total_ex().to_bits());
        assert_eq!(
            run.critical_path_ex().to_bits(),
            spec.critical_path_ex().to_bits()
        );
        assert_eq!(run.stage_count(), 2);
    }

    #[test]
    fn reset_recycles_without_state_leak() {
        let mut run = serial_chain(&[1.0, 1.0], 4.0);
        let strategy = SdaStrategy::eqf_ud();
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        run.reset();
        assert_eq!(run.simple_count(), 0);
        assert_eq!(run.stage_count(), 0);
        assert!(!run.is_finished());
        // Refill and run to completion: the recycled run behaves freshly.
        run.push_subtask(NodeId::new(0), 1.0, 1.0);
        run.end_stage();
        run.set_structure(true, false);
        run.set_timing(2.0, 5.0);
        subs.clear();
        run.start(&strategy, 2.0, &mut subs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].deadline, 5.0);
        let mut more = Vec::new();
        assert!(run.complete(subs[0].subtask, &strategy, 3.0, &mut more));
        assert!(run.is_finished());
        assert_eq!(run.progress(), (1, 1));
    }

    #[test]
    fn expected_comm_reserves_slack_per_stage() {
        // Two serial stages, pex 1 each, dl = 8, hop delay 0.5.
        // Remaining comm at stage 0: 0.5 in flight + 2·0.5 ahead = 1.5;
        // EQS slack = 8 − 0 − 2 − 1.5 = 4.5 → share 2.25;
        // dl(T1) = 0 + 0.5 + 1 + 2.25 = 3.75.
        let mut run = serial_chain(&[1.0, 1.0], 8.0);
        run.set_expected_comm(0.5);
        assert_eq!(run.expected_comm(), 0.5);
        let strategy = SdaStrategy::new(
            crate::SerialStrategy::EqualSlack,
            crate::ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert!(
            (subs[0].deadline - 3.75).abs() < 1e-12,
            "{}",
            subs[0].deadline
        );
        // Stage 2 (last): comm in flight 0.5, after = result return 0.5;
        // at t = 2: slack = 8 − 2 − 1 − 1 = 4 → dl = 2 + 0.5 + 1 + 4 = 7.5.
        let mut more = Vec::new();
        let finished = run.complete(subs[0].subtask, &strategy, 2.0, &mut more);
        assert!(!finished);
        assert!(
            (more[0].deadline - 7.5).abs() < 1e-12,
            "{}",
            more[0].deadline
        );
    }

    #[test]
    fn slack_scale_tightens_stage_deadlines() {
        // Two serial stages, pex 1 each, dl = 8 → slack 6. At scale 0.5
        // EQS hands stage 1 a share of 0.5·(6/2) = 1.5: dl = 2.5.
        let mut run = serial_chain(&[1.0, 1.0], 8.0);
        run.set_slack_scale(0.5);
        assert_eq!(run.slack_scale(), 0.5);
        let strategy = SdaStrategy::new(
            crate::SerialStrategy::EqualSlack,
            crate::ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert!(
            (subs[0].deadline - 2.5).abs() < 1e-12,
            "{}",
            subs[0].deadline
        );
        // Re-stamping before the next activation takes effect there:
        // back at scale 1, the last stage gets the full remaining slack.
        run.set_slack_scale(1.0);
        let mut more = Vec::new();
        let finished = run.complete(subs[0].subtask, &strategy, 2.0, &mut more);
        assert!(!finished);
        assert!(
            (more[0].deadline - 8.0).abs() < 1e-12,
            "{}",
            more[0].deadline
        );
    }

    #[test]
    fn reset_restores_neutral_slack_scale() {
        let mut run = serial_chain(&[1.0], 2.0);
        run.set_slack_scale(0.25);
        run.reset();
        assert_eq!(run.slack_scale(), 1.0);
        assert_eq!(FlatRun::new().slack_scale(), 1.0);
    }

    #[test]
    fn reset_clears_expected_comm() {
        let mut run = serial_chain(&[1.0], 2.0);
        run.set_expected_comm(1.25);
        run.reset();
        assert_eq!(run.expected_comm(), 0.0);
    }

    #[test]
    fn reissue_recomputes_residual_window_at_now() {
        // Two serial stages, pex 1 each, dl = 8. EQS at t = 0 gives
        // stage 1 dl = 0 + 1 + 3 = 4. Losing it and reissuing at t = 3
        // re-divides the residual slack 8 − 3 − 2 = 3 → share 1.5:
        // dl = 3 + 1 + 1.5 = 5.5.
        let mut run = serial_chain(&[1.0, 1.0], 8.0);
        let strategy = SdaStrategy::new(
            crate::SerialStrategy::EqualSlack,
            crate::ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert!((subs[0].deadline - 4.0).abs() < 1e-12);
        let lost = subs[0].subtask;
        let mut again = Vec::new();
        run.reissue(lost, &strategy, 3.0, &mut again);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].subtask, lost);
        assert_eq!(again[0].node, subs[0].node);
        assert!(
            (again[0].deadline - 5.5).abs() < 1e-12,
            "{}",
            again[0].deadline
        );
        // Bookkeeping untouched: the reissued subtask still completes
        // normally and advances the run.
        let mut more = Vec::new();
        assert!(!run.complete(lost, &strategy, 4.0, &mut more));
        assert_eq!(more.len(), 1);
        assert!(run.complete(more[0].subtask, &strategy, 6.0, &mut more));
        assert!(run.is_finished());
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn reissue_of_completed_subtask_panics() {
        let mut run = FlatRun::new();
        run.reset();
        run.push_subtask(NodeId::new(0), 1.0, 1.0);
        run.push_subtask(NodeId::new(1), 1.0, 1.0);
        run.end_stage();
        run.set_structure(false, true);
        run.set_timing(0.0, 4.0);
        let strategy = SdaStrategy::ud_ud();
        let mut out = Vec::new();
        run.start(&strategy, 0.0, &mut out);
        let mut more = Vec::new();
        run.complete(out[0].subtask, &strategy, 1.0, &mut more);
        run.reissue(out[0].subtask, &strategy, 2.0, &mut more);
    }

    #[test]
    #[should_panic(expected = "start called twice")]
    fn double_start_panics() {
        let mut run = serial_chain(&[1.0], 2.0);
        let mut out = Vec::new();
        run.start(&SdaStrategy::ud_ud(), 0.0, &mut out);
        run.start(&SdaStrategy::ud_ud(), 0.0, &mut out);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn double_complete_panics() {
        let mut run = FlatRun::new();
        run.reset();
        run.push_subtask(NodeId::new(0), 1.0, 1.0);
        run.push_subtask(NodeId::new(1), 1.0, 1.0);
        run.end_stage();
        run.set_structure(false, true);
        run.set_timing(0.0, 4.0);
        let strategy = SdaStrategy::ud_ud();
        let mut out = Vec::new();
        run.start(&strategy, 0.0, &mut out);
        let mut more = Vec::new();
        run.complete(out[0].subtask, &strategy, 1.0, &mut more);
        run.complete(out[0].subtask, &strategy, 2.0, &mut more);
    }

    #[test]
    #[should_panic(expected = "empty stage")]
    fn empty_stage_panics() {
        let mut run = FlatRun::new();
        run.reset();
        run.end_stage();
    }
}
