//! The five task attributes of the paper's model (§3.1).

use serde::{Deserialize, Serialize};

/// The real-time attributes of a task `X`:
/// arrival `ar(X)`, deadline `dl(X)`, real execution time `ex(X)` and
/// predicted execution time `pex(X)`.
///
/// Slack and flexibility are derived, per the paper's identities:
///
/// * `sl(X) = dl(X) − ar(X) − ex(X)`
/// * `fl(X) = sl(X) / ex(X)`
///
/// # Examples
///
/// ```
/// use sda_core::TaskAttributes;
///
/// let x = TaskAttributes::from_slack(10.0, 2.0, 3.0); // ar, ex, slack
/// assert_eq!(x.deadline, 15.0);
/// assert_eq!(x.slack(), 3.0);
/// assert_eq!(x.flexibility(), 1.5);
/// assert_eq!(x.pex, 2.0); // prediction defaults to perfect
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskAttributes {
    /// Arrival time `ar(X)`.
    pub arrival: f64,
    /// Absolute deadline `dl(X)`.
    pub deadline: f64,
    /// Real execution time `ex(X)`; not observable by strategies.
    pub ex: f64,
    /// Predicted execution time `pex(X)`; what strategies may use.
    pub pex: f64,
}

impl TaskAttributes {
    /// Builds attributes from arrival, execution time and slack, deriving
    /// the deadline as `ar + ex + sl`. Prediction starts perfect
    /// (`pex = ex`); override with [`TaskAttributes::with_pex`].
    pub fn from_slack(arrival: f64, ex: f64, slack: f64) -> TaskAttributes {
        TaskAttributes {
            arrival,
            deadline: arrival + ex + slack,
            ex,
            pex: ex,
        }
    }

    /// Replaces the predicted execution time (models estimation error).
    pub fn with_pex(mut self, pex: f64) -> TaskAttributes {
        self.pex = pex;
        self
    }

    /// The slack `sl(X) = dl − ar − ex`.
    pub fn slack(&self) -> f64 {
        self.deadline - self.arrival - self.ex
    }

    /// The flexibility `fl(X) = sl(X)/ex(X)`; infinite for `ex = 0`.
    pub fn flexibility(&self) -> f64 {
        self.slack() / self.ex
    }

    /// The relative deadline (deadline minus arrival).
    pub fn relative_deadline(&self) -> f64 {
        self.deadline - self.arrival
    }

    /// Whether the task *could* meet its deadline if executed with zero
    /// queueing delay (non-negative slack).
    pub fn is_feasible(&self) -> bool {
        self.slack() >= 0.0
    }

    /// Whether a task finishing at `completion` met its deadline.
    pub fn met_deadline(&self, completion: f64) -> bool {
        completion <= self.deadline
    }

    /// Lateness of a completion: `completion − dl` (negative = early).
    pub fn lateness(&self, completion: f64) -> f64 {
        completion - self.deadline
    }

    /// Tardiness of a completion: `max(0, lateness)`.
    pub fn tardiness(&self, completion: f64) -> f64 {
        self.lateness(completion).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_hold() {
        let x = TaskAttributes::from_slack(1.0, 2.0, 0.5);
        assert_eq!(x.deadline, 3.5);
        assert_eq!(x.slack(), 0.5);
        assert_eq!(x.flexibility(), 0.25);
        assert_eq!(x.relative_deadline(), 2.5);
        assert!(x.is_feasible());
    }

    #[test]
    fn with_pex_overrides_prediction_only() {
        let x = TaskAttributes::from_slack(0.0, 2.0, 1.0).with_pex(3.0);
        assert_eq!(x.pex, 3.0);
        assert_eq!(x.ex, 2.0);
        assert_eq!(x.slack(), 1.0, "slack uses real ex");
    }

    #[test]
    fn negative_slack_is_infeasible() {
        let x = TaskAttributes {
            arrival: 0.0,
            deadline: 1.0,
            ex: 2.0,
            pex: 2.0,
        };
        assert_eq!(x.slack(), -1.0);
        assert!(!x.is_feasible());
    }

    #[test]
    fn lateness_and_tardiness() {
        let x = TaskAttributes::from_slack(0.0, 1.0, 1.0); // dl = 2
        assert!(x.met_deadline(2.0));
        assert!(!x.met_deadline(2.5));
        assert_eq!(x.lateness(1.5), -0.5);
        assert_eq!(x.tardiness(1.5), 0.0);
        assert_eq!(x.tardiness(3.0), 1.0);
    }
}
