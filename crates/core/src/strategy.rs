//! The extension point for custom deadline-assignment policies.

use crate::ids::PriorityClass;
use crate::psp::{ParallelStrategy, PspInput};
use crate::ssp::SspInput;
use crate::SdaStrategy;

/// An object-safe deadline-assignment policy: everything a
/// [`TaskRun`](crate::TaskRun) needs to decompose an end-to-end deadline.
///
/// The paper's strategies are available through the blanket
/// implementation on [`SdaStrategy`]; implement this trait to experiment
/// with policies beyond the paper, e.g. a risk-averse rule that gives
/// high-variance stages proportionally more slack:
///
/// ```
/// use sda_core::{DeadlineAssigner, NodeId, PspInput, SspInput, TaskRun, TaskSpec};
///
/// /// Divides slack proportionally to √pex instead of pex: long stages
/// /// still get more slack, but the advantage is damped.
/// struct SqrtFlexibility;
///
/// impl DeadlineAssigner for SqrtFlexibility {
///     fn serial_deadline(&self, input: &SspInput<'_>) -> f64 {
///         let w = input.pex_current.sqrt();
///         let total: f64 = w + input
///             .pex_remaining_after
///             .iter()
///             .map(|p| p.sqrt())
///             .sum::<f64>();
///         let share = if total > 0.0 { w / total } else { 1.0 };
///         input.submit_time + input.pex_current + input.remaining_slack() * share
///     }
///
///     fn parallel_deadline(&self, input: &PspInput) -> f64 {
///         input.global_deadline // UD at parallel levels
///     }
/// }
///
/// let spec = TaskSpec::serial(vec![
///     TaskSpec::simple(NodeId::new(0), 1.0, 1.0),
///     TaskSpec::simple(NodeId::new(1), 4.0, 4.0),
/// ]);
/// let mut run = TaskRun::new(&spec, 0.0, 8.0)?;
/// let subs = run.start(&SqrtFlexibility, 0.0);
/// // √1/(√1+√4) = 1/3 of the 3 units of slack → dl = 0 + 1 + 1 = 2.
/// assert!((subs[0].deadline - 2.0).abs() < 1e-12);
/// # Ok::<(), sda_core::SpecError>(())
/// ```
pub trait DeadlineAssigner {
    /// Virtual deadline for the next child of a serial composition,
    /// computed at its submission time. See [`SspInput`].
    fn serial_deadline(&self, input: &SspInput<'_>) -> f64;

    /// Virtual deadline for every branch of a parallel composition,
    /// computed at the group's activation. See [`PspInput`].
    fn parallel_deadline(&self, input: &PspInput) -> f64;

    /// Scheduling class attached to this task's subtasks (`Elevated`
    /// reproduces Globals First). Defaults to `Normal`.
    fn priority_class(&self) -> PriorityClass {
        PriorityClass::Normal
    }
}

impl DeadlineAssigner for SdaStrategy {
    fn serial_deadline(&self, input: &SspInput<'_>) -> f64 {
        self.serial.deadline(input)
    }

    fn parallel_deadline(&self, input: &PspInput) -> f64 {
        self.parallel.deadline(input)
    }

    fn priority_class(&self) -> PriorityClass {
        self.parallel.priority_class()
    }
}

impl DeadlineAssigner for ParallelStrategy {
    fn serial_deadline(&self, input: &SspInput<'_>) -> f64 {
        // A pure PSP strategy treats serial levels as UD.
        input.global_deadline
    }

    fn parallel_deadline(&self, input: &PspInput) -> f64 {
        self.deadline(input)
    }

    fn priority_class(&self) -> PriorityClass {
        ParallelStrategy::priority_class(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::SerialStrategy;

    #[test]
    fn sda_strategy_delegates() {
        let s = SdaStrategy::eqf_div1();
        let ssp = SspInput {
            submit_time: 0.0,
            global_deadline: 20.0,
            pex_current: 2.0,
            pex_remaining_after: &[3.0, 5.0],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        assert_eq!(
            s.serial_deadline(&ssp),
            SerialStrategy::EqualFlexibility.deadline(&ssp)
        );
        let psp = PspInput {
            arrival_time: 0.0,
            global_deadline: 12.0,
            branch_count: 3,
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        assert_eq!(s.parallel_deadline(&psp), 4.0);
        assert_eq!(s.priority_class(), PriorityClass::Normal);
    }

    #[test]
    fn gf_strategy_elevates_via_trait() {
        let s = SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::GlobalsFirst,
        );
        assert_eq!(
            DeadlineAssigner::priority_class(&s),
            PriorityClass::Elevated
        );
    }

    #[test]
    fn parallel_strategy_standalone_is_ud_serially() {
        let div = ParallelStrategy::Div { x: 2.0 };
        let ssp = SspInput {
            submit_time: 5.0,
            global_deadline: 11.0,
            pex_current: 1.0,
            pex_remaining_after: &[],
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        assert_eq!(div.serial_deadline(&ssp), 11.0);
    }

    #[test]
    fn trait_is_object_safe() {
        let strategies: Vec<Box<dyn DeadlineAssigner>> = vec![
            Box::new(SdaStrategy::ud_ud()),
            Box::new(ParallelStrategy::GlobalsFirst),
        ];
        let psp = PspInput {
            arrival_time: 0.0,
            global_deadline: 8.0,
            branch_count: 2,
            comm_current: 0.0,
            comm_after: 0.0,
            slack_scale: 1.0,
        };
        for s in &strategies {
            assert!(s.parallel_deadline(&psp) <= 8.0);
        }
    }
}
