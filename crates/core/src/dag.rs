//! Arena-friendly runtime for DAG-structured global tasks.
//!
//! The paper's global tasks are serial-parallel *trees*; real distributed
//! workloads are precedence **DAGs** — fork-join trees, diamonds, layered
//! pipelines with cross-stage edges. [`DagRun`] generalizes
//! [`FlatRun`](crate::FlatRun) to an arbitrary directed acyclic precedence
//! graph while keeping the same zero-alloc-after-warmup pooling
//! discipline: one flat node array, CSR-style predecessor/successor edge
//! lists, per-node in-degree countdown for fan-in, and reusable scratch
//! buffers for wave activation.
//!
//! # The critical-path deadline rule
//!
//! Deadline decomposition works per **wave**: the set of nodes released
//! together by one completion (or by task start). A wave's window is
//! computed by the serial (SSP) strategy *as if the task were the serial
//! chain along the wave's remaining critical path* — the current entry is
//! the wave's critical node (the member maximizing `pex + remaining
//! critical-path pex`), and `pex_remaining_after` is the sequence of node
//! `pex` values along the maximal-`pex` path that follows it. Waves wider
//! than one node then divide the window among their members with the
//! parallel (PSP) strategy, exactly like a parallel stage.
//!
//! For a *stage-structured* DAG — consecutive layers fully connected,
//! i.e. the precedence closure of a [`FlatRun`] pipeline — every wave is
//! a stage, the critical node is the stage's `pex` maximum, and the
//! critical-path tail visits each later stage's maximum: the inputs fed
//! to the strategy are **bit-identical** to `FlatRun`'s, so UD, ED, EQS,
//! EQF, EQF-AS, DIV-x, GF and `ADAPT(…)` all produce bit-exact deadlines
//! (pinned by `tests/dag_props.rs`). Two boundary conventions make the
//! embedding exact:
//!
//! * a width-1 wave is a serial hand-off: the PSP rule is *not* applied
//!   (matching a bare `FlatRun` stage, not a 1-branch parallel group);
//! * a task that is a single antichain (no edges, more than one node) is
//!   the paper's flat parallel task: its window is the global deadline
//!   and the PSP rule reserves the result-return hop.
//!
//! The critical-path tails are static — successors never change — so
//! they are computed once per task in a single reverse-topological pass
//! at [`DagRun::finalize`].

use crate::assign::{Submission, SubtaskRef};
use crate::ids::NodeId;
use crate::psp::PspInput;
use crate::spec::SimpleSpec;
use crate::ssp::SspInput;
use crate::strategy::DeadlineAssigner;

/// Sentinel for "no successor on the critical path" (sink nodes).
const NO_NODE: u32 = u32::MAX;

/// Runtime state of one in-flight DAG-structured global task, stored
/// flat (CSR edge lists) for recycling.
///
/// # Life cycle
///
/// 1. [`DagRun::reset`], then [`DagRun::push_node`] for every subtask and
///    [`DagRun::push_edge`] for every precedence edge, then
///    [`DagRun::finalize`] (builds the CSR lists, checks acyclicity and
///    computes the critical-path tails) and [`DagRun::set_timing`];
/// 2. [`DagRun::start`] once at arrival — appends the source wave to the
///    output buffer;
/// 3. [`DagRun::complete`] per finished subtask — counts down successor
///    in-degrees, appends any newly released wave, returns `true` when
///    the whole task just finished.
///
/// Like [`FlatRun`](crate::FlatRun), a `DagRun` is designed to live in a
/// pool: `reset` clears the task without releasing capacity, so after
/// warm-up a recycled run performs **zero heap allocations** per task
/// lifecycle.
///
/// # Examples
///
/// A diamond `A → {B ∥ C} → D` under EQS:
///
/// ```
/// use sda_core::{DagRun, NodeId, SdaStrategy, SerialStrategy, ParallelStrategy};
///
/// let mut run = DagRun::new();
/// run.reset();
/// let a = run.push_node(NodeId::new(0), 1.0, 1.0);
/// let b = run.push_node(NodeId::new(1), 2.0, 2.0);
/// let c = run.push_node(NodeId::new(2), 1.0, 1.0);
/// let d = run.push_node(NodeId::new(3), 1.0, 1.0);
/// run.push_edge(a, b);
/// run.push_edge(a, c);
/// run.push_edge(b, d);
/// run.push_edge(c, d);
/// run.finalize();
/// run.set_timing(0.0, 8.0);
/// // Critical path A→B→D: pex 1 + 2 + 1 = 4.
/// assert_eq!(run.critical_path_pex(), 4.0);
/// assert_eq!(run.depth(), 3);
///
/// let strategy = SdaStrategy::new(
///     SerialStrategy::EqualSlack,
///     ParallelStrategy::UltimateDeadline,
/// );
/// let mut subs = Vec::new();
/// run.start(&strategy, 0.0, &mut subs);
/// // Source wave {A}: slack 8 − 4 = 4 over 3 critical-path levels →
/// // dl(A) = 0 + 1 + 4/3.
/// assert_eq!(subs.len(), 1);
/// assert!((subs[0].deadline - (1.0 + 4.0 / 3.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DagRun {
    /// All simple subtasks, in insertion order.
    nodes: Vec<SimpleSpec>,
    /// Staged edges `(from, to)` as pushed; compiled by `finalize`.
    edges: Vec<(u32, u32)>,
    /// CSR successor offsets (`succ_off[i]..succ_off[i + 1]` indexes
    /// `succ`), length `n + 1`.
    succ_off: Vec<u32>,
    /// CSR successor targets, stable in edge-push order per source.
    succ: Vec<u32>,
    /// CSR predecessor offsets, length `n + 1`.
    pred_off: Vec<u32>,
    /// CSR predecessor sources.
    pred: Vec<u32>,
    /// Static in-degree per node.
    in_degree: Vec<u32>,
    /// Runtime fan-in countdown; a node activates when it reaches 0.
    indeg_left: Vec<u32>,
    /// Per-node completion flags (guards double completion).
    done: Vec<bool>,
    /// Successor on the maximal remaining-`pex` path (`NO_NODE` at
    /// sinks) — static, from the reverse-topological pass.
    cp_next: Vec<u32>,
    /// `Σ pex` along the `cp_next` chain, excluding the node itself.
    cp_pex_after: Vec<f64>,
    /// Longest-path `ex` after the node (for [`DagRun::critical_path_ex`]).
    cp_ex_after: Vec<f64>,
    /// Longest-path node count after the node (for [`DagRun::depth`]).
    cp_count_after: Vec<u32>,
    /// Topological order scratch (Kahn), kept for reuse.
    topo: Vec<u32>,
    /// CSR scatter cursors, reused across `finalize` calls.
    cursor: Vec<u32>,
    /// Flattened per-node critical-path tails, built once by `finalize`:
    /// `tails[tail_off[i]..tail_off[i + 1]]` is the per-node `pex`
    /// sequence along the `cp_next` chain after node `i`. Wave activation
    /// borrows the slice directly instead of re-walking the chain.
    tails: Vec<f64>,
    /// CSR offsets into `tails`, length `n + 1`.
    tail_off: Vec<u32>,
    /// Nodes released by the current completion (the wave).
    wave_buf: Vec<u32>,
    arrival: f64,
    deadline: f64,
    completed: u32,
    started: bool,
    finished: bool,
    finalized: bool,
    /// Expected one-hop communication delay (see
    /// [`FlatRun::set_expected_comm`](crate::FlatRun::set_expected_comm)).
    expected_hop_comm: f64,
    /// Feedback-driven slack-share multiplier (see
    /// [`FlatRun::set_slack_scale`](crate::FlatRun::set_slack_scale)).
    slack_scale: f64,
}

impl Default for DagRun {
    /// An empty run — identical to a freshly [`reset`](DagRun::reset)
    /// one (in particular `slack_scale` starts at its neutral 1.0).
    fn default() -> DagRun {
        DagRun {
            nodes: Vec::new(),
            edges: Vec::new(),
            succ_off: Vec::new(),
            succ: Vec::new(),
            pred_off: Vec::new(),
            pred: Vec::new(),
            in_degree: Vec::new(),
            indeg_left: Vec::new(),
            done: Vec::new(),
            cp_next: Vec::new(),
            cp_pex_after: Vec::new(),
            cp_ex_after: Vec::new(),
            cp_count_after: Vec::new(),
            topo: Vec::new(),
            cursor: Vec::new(),
            tails: Vec::new(),
            tail_off: Vec::new(),
            wave_buf: Vec::new(),
            arrival: 0.0,
            deadline: 0.0,
            completed: 0,
            started: false,
            finished: false,
            finalized: false,
            expected_hop_comm: 0.0,
            slack_scale: 1.0,
        }
    }
}

impl DagRun {
    /// An empty run with no storage committed.
    pub fn new() -> DagRun {
        DagRun::default()
    }

    /// Clears the run for refilling, retaining all capacity — the pool
    /// recycling entry point.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.edges.clear();
        self.succ_off.clear();
        self.succ.clear();
        self.pred_off.clear();
        self.pred.clear();
        self.in_degree.clear();
        self.indeg_left.clear();
        self.done.clear();
        self.cp_next.clear();
        self.cp_pex_after.clear();
        self.cp_ex_after.clear();
        self.cp_count_after.clear();
        self.topo.clear();
        self.cursor.clear();
        self.tails.clear();
        self.tail_off.clear();
        self.wave_buf.clear();
        self.arrival = 0.0;
        self.deadline = 0.0;
        self.completed = 0;
        self.started = false;
        self.finished = false;
        self.finalized = false;
        self.expected_hop_comm = 0.0;
        self.slack_scale = 1.0;
    }

    /// Appends one subtask, returning its index for [`DagRun::push_edge`].
    pub fn push_node(&mut self, node: NodeId, ex: f64, pex: f64) -> u32 {
        debug_assert!(ex.is_finite() && ex >= 0.0, "invalid ex {ex}");
        debug_assert!(pex.is_finite() && pex >= 0.0, "invalid pex {pex}");
        assert!(!self.finalized, "DagRun::push_node after finalize");
        let idx = u32::try_from(self.nodes.len()).expect("more than u32::MAX subtasks in one task");
        self.nodes.push(SimpleSpec { node, ex, pex });
        self.done.push(false);
        idx
    }

    /// Stages a precedence edge `from → to`; `to` may not start until
    /// `from` has completed. Duplicate edges are tolerated (the fan-in
    /// countdown counts edges, and a completed predecessor releases all
    /// of its parallel edges at once).
    pub fn push_edge(&mut self, from: u32, to: u32) {
        assert!(!self.finalized, "DagRun::push_edge after finalize");
        self.edges.push((from, to));
    }

    /// Compiles the staged structure: builds the CSR successor and
    /// predecessor lists (stable in push order), verifies the graph is
    /// acyclic with in-range endpoints, and computes the remaining
    /// critical-path (`pex`, `ex` and node-count) tails in one
    /// reverse-topological pass.
    ///
    /// # Panics
    ///
    /// Panics on an empty node set, an edge endpoint out of range, a
    /// self-loop, or a cycle.
    pub fn finalize(&mut self) {
        assert!(!self.finalized, "DagRun::finalize called twice");
        let n = self.nodes.len();
        assert!(n > 0, "DagRun::finalize on an empty task");

        // CSR successors (stable counting sort by source) + in-degrees.
        self.succ_off.clear();
        self.succ_off.resize(n + 1, 0);
        self.pred_off.clear();
        self.pred_off.resize(n + 1, 0);
        for &(from, to) in &self.edges {
            assert!(
                (from as usize) < n && (to as usize) < n,
                "edge {from}→{to} references a node out of range (n = {n})"
            );
            assert_ne!(from, to, "self-loop on node {from}");
            self.succ_off[from as usize + 1] += 1;
            self.pred_off[to as usize + 1] += 1;
        }
        for i in 0..n {
            self.succ_off[i + 1] += self.succ_off[i];
            self.pred_off[i + 1] += self.pred_off[i];
        }
        self.succ.clear();
        self.succ.resize(self.edges.len(), 0);
        self.pred.clear();
        self.pred.resize(self.edges.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.succ_off[..n]);
        for &(from, to) in &self.edges {
            let c = &mut self.cursor[from as usize];
            self.succ[*c as usize] = to;
            *c += 1;
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.pred_off[..n]);
        for &(from, to) in &self.edges {
            let c = &mut self.cursor[to as usize];
            self.pred[*c as usize] = from;
            *c += 1;
        }
        self.in_degree.clear();
        self.in_degree
            .extend((0..n).map(|i| self.pred_off[i + 1] - self.pred_off[i]));

        // Kahn topological order; a shortfall means a cycle.
        self.indeg_left.clear();
        self.indeg_left.extend_from_slice(&self.in_degree);
        self.topo.clear();
        self.topo
            .extend((0..n as u32).filter(|&i| self.in_degree[i as usize] == 0));
        let mut head = 0;
        while head < self.topo.len() {
            let u = self.topo[head] as usize;
            head += 1;
            for k in self.succ_off[u] as usize..self.succ_off[u + 1] as usize {
                let s = self.succ[k] as usize;
                self.indeg_left[s] -= 1;
                if self.indeg_left[s] == 0 {
                    self.topo.push(s as u32);
                }
            }
        }
        assert_eq!(self.topo.len(), n, "DagRun: the edge set contains a cycle");
        // Restore the runtime fan-in countdown consumed by the check.
        self.indeg_left.copy_from_slice(&self.in_degree);

        // Reverse-topological critical-path tails. For every node, the
        // successor maximizing `pex + tail` (first of equals wins, so the
        // choice is deterministic) defines the remaining critical path.
        self.cp_next.clear();
        self.cp_next.resize(n, NO_NODE);
        self.cp_pex_after.clear();
        self.cp_pex_after.resize(n, 0.0);
        self.cp_ex_after.clear();
        self.cp_ex_after.resize(n, 0.0);
        self.cp_count_after.clear();
        self.cp_count_after.resize(n, 0);
        for pos in (0..n).rev() {
            let u = self.topo[pos] as usize;
            let mut best = NO_NODE;
            let mut best_pex = f64::NEG_INFINITY;
            let mut best_ex = 0.0f64;
            let mut best_count = 0u32;
            for k in self.succ_off[u] as usize..self.succ_off[u + 1] as usize {
                let s = self.succ[k] as usize;
                let via = self.nodes[s].pex + self.cp_pex_after[s];
                if best == NO_NODE || via > best_pex {
                    best = s as u32;
                    best_pex = via;
                }
                best_ex = best_ex.max(self.nodes[s].ex + self.cp_ex_after[s]);
                best_count = best_count.max(1 + self.cp_count_after[s]);
            }
            if best != NO_NODE {
                self.cp_next[u] = best;
                self.cp_pex_after[u] = best_pex;
                self.cp_ex_after[u] = best_ex;
                self.cp_count_after[u] = best_count;
            }
        }

        // Flatten every node's critical-path tail once, so wave
        // activation borrows a contiguous slice instead of chasing the
        // `cp_next` chain (and re-reading `nodes[..].pex`) per wave.
        // `cursor[u]` holds the chain length after `u`; a node's chain
        // successor appears later in topological order, so the reverse
        // pass sees it resolved first.
        self.cursor.clear();
        self.cursor.resize(n, 0);
        for pos in (0..n).rev() {
            let u = self.topo[pos] as usize;
            let nx = self.cp_next[u];
            if nx != NO_NODE {
                self.cursor[u] = 1 + self.cursor[nx as usize];
            }
        }
        self.tail_off.clear();
        self.tail_off.push(0);
        for i in 0..n {
            let prev = self.tail_off[i];
            self.tail_off.push(prev + self.cursor[i]);
        }
        let total = self.tail_off[n] as usize;
        self.tails.clear();
        self.tails.resize(total, 0.0);
        for pos in (0..n).rev() {
            let u = self.topo[pos] as usize;
            let nx = self.cp_next[u];
            if nx != NO_NODE {
                let off = self.tail_off[u] as usize;
                self.tails[off] = self.nodes[nx as usize].pex;
                let noff = self.tail_off[nx as usize] as usize;
                let nlen = self.cursor[nx as usize] as usize;
                self.tails.copy_within(noff..noff + nlen, off + 1);
            }
        }
        self.finalized = true;
    }

    /// Sets arrival time and end-to-end deadline.
    pub fn set_timing(&mut self, arrival: f64, deadline: f64) {
        self.arrival = arrival;
        self.deadline = deadline;
    }

    /// Declares the expected one-hop communication delay; deadline
    /// decomposition reserves slack for the remaining critical-path
    /// hand-offs plus the result return, exactly like
    /// [`FlatRun::set_expected_comm`](crate::FlatRun::set_expected_comm).
    /// Reset (and default) is `0.0`.
    pub fn set_expected_comm(&mut self, per_hop: f64) {
        debug_assert!(
            per_hop.is_finite() && per_hop >= 0.0,
            "invalid expected hop delay {per_hop}"
        );
        self.expected_hop_comm = per_hop;
    }

    /// The declared expected one-hop communication delay.
    pub fn expected_comm(&self) -> f64 {
        self.expected_hop_comm
    }

    /// Declares the feedback-driven slack-share multiplier in force for
    /// the *next* wave activation (see
    /// [`FlatRun::set_slack_scale`](crate::FlatRun::set_slack_scale)).
    /// The default — and the value after [`DagRun::reset`] — is `1.0`.
    pub fn set_slack_scale(&mut self, scale: f64) {
        debug_assert!(
            scale.is_finite() && scale > 0.0,
            "invalid slack scale {scale}"
        );
        self.slack_scale = scale;
    }

    /// The slack-share multiplier currently in force.
    pub fn slack_scale(&self) -> f64 {
        self.slack_scale
    }

    /// The task's arrival time.
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// The end-to-end deadline.
    pub fn global_deadline(&self) -> f64 {
        self.deadline
    }

    /// Whether every subtask has completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// `(completed, total)` simple-subtask counts.
    pub fn progress(&self) -> (usize, usize) {
        (self.completed as usize, self.nodes.len())
    }

    /// Number of simple subtasks.
    pub fn simple_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of precedence edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All subtasks, in insertion order.
    pub fn subtasks(&self) -> &[SimpleSpec] {
        &self.nodes
    }

    /// The direct successors of node `i` (requires [`DagRun::finalize`]).
    pub fn successors(&self, i: u32) -> &[u32] {
        debug_assert!(self.finalized, "successors before finalize");
        &self.succ[self.succ_off[i as usize] as usize..self.succ_off[i as usize + 1] as usize]
    }

    /// The direct predecessors of node `i` (requires
    /// [`DagRun::finalize`]).
    pub fn predecessors(&self, i: u32) -> &[u32] {
        debug_assert!(self.finalized, "predecessors before finalize");
        &self.pred[self.pred_off[i as usize] as usize..self.pred_off[i as usize + 1] as usize]
    }

    /// Whether node `i` has completed.
    pub fn is_done(&self, i: u32) -> bool {
        self.done[i as usize]
    }

    /// The structural depth: the number of nodes on the longest
    /// precedence path (1 for a single antichain). Requires
    /// [`DagRun::finalize`].
    pub fn depth(&self) -> usize {
        debug_assert!(self.finalized, "depth before finalize");
        self.cp_count_after
            .iter()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Real execution time along the critical (longest-`ex`) path.
    /// Requires [`DagRun::finalize`].
    pub fn critical_path_ex(&self) -> f64 {
        debug_assert!(self.finalized, "critical_path_ex before finalize");
        self.nodes
            .iter()
            .zip(&self.cp_ex_after)
            .map(|(s, &after)| s.ex + after)
            .fold(0.0, f64::max)
    }

    /// Predicted execution time along the critical (longest-`pex`) path.
    /// Requires [`DagRun::finalize`].
    pub fn critical_path_pex(&self) -> f64 {
        debug_assert!(self.finalized, "critical_path_pex before finalize");
        self.nodes
            .iter()
            .zip(&self.cp_pex_after)
            .map(|(s, &after)| s.pex + after)
            .fold(0.0, f64::max)
    }

    /// Activates the task at `now`, appending the source wave (every
    /// node with no predecessors) to `out` (which is *not* cleared
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if called twice or before [`DagRun::finalize`].
    pub fn start<A: DeadlineAssigner + ?Sized>(
        &mut self,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        assert!(self.finalized, "DagRun::start before finalize");
        assert!(!self.started, "DagRun::start called twice");
        self.started = true;
        self.wave_buf.clear();
        self.wave_buf
            .extend((0..self.nodes.len() as u32).filter(|&i| self.in_degree[i as usize] == 0));
        debug_assert!(!self.wave_buf.is_empty(), "acyclic graph has a source");
        self.activate_wave(strategy, now, out);
    }

    /// Reports that `subtask` finished at `now`: counts down successor
    /// in-degrees and appends the released wave (if any) to `out`.
    /// Returns `true` when the whole task just finished.
    ///
    /// # Panics
    ///
    /// Panics if the run never started, on double completion, or for a
    /// subtask that was never released.
    pub fn complete<A: DeadlineAssigner + ?Sized>(
        &mut self,
        subtask: SubtaskRef,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) -> bool {
        assert!(self.started, "DagRun::complete before start");
        let idx = subtask.0;
        assert!(
            idx < self.nodes.len() && !self.done[idx] && self.indeg_left[idx] == 0,
            "completion for a subtask that is not active: {subtask:?}"
        );
        self.done[idx] = true;
        self.completed += 1;
        self.wave_buf.clear();
        for k in self.succ_off[idx] as usize..self.succ_off[idx + 1] as usize {
            let s = self.succ[k] as usize;
            self.indeg_left[s] -= 1;
            if self.indeg_left[s] == 0 {
                self.wave_buf.push(s as u32);
            }
        }
        if self.completed as usize == self.nodes.len() {
            debug_assert!(self.wave_buf.is_empty());
            self.finished = true;
            return true;
        }
        if !self.wave_buf.is_empty() {
            self.activate_wave(strategy, now, out);
        }
        false
    }

    /// Re-issues a *lost* released-but-uncompleted subtask at `now`,
    /// appending exactly one replacement submission to `out`.
    ///
    /// The replacement deadline re-decomposes the **residual** budget
    /// with the SSP rule over the lost node's own remaining critical-path
    /// tail (the node is now the straggler gating everything behind it,
    /// so *its* tail — not the original wave-critical member's — is the
    /// path view that matters), evaluated at the advanced clock. The
    /// straggler keeps the whole window: its wave siblings already carry
    /// their original deadlines (or are done). A task that is a single
    /// antichain keeps the flat-parallel convention: the window is the
    /// global deadline.
    ///
    /// Completion bookkeeping is untouched — the subtask stays
    /// outstanding until [`DagRun::complete`] is finally called for it.
    ///
    /// # Panics
    ///
    /// Panics if the run never started, or if `subtask` is not a
    /// released, uncompleted node.
    pub fn reissue<A: DeadlineAssigner + ?Sized>(
        &mut self,
        subtask: SubtaskRef,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        assert!(self.started, "DagRun::reissue before start");
        let idx = subtask.0;
        assert!(
            idx < self.nodes.len() && !self.done[idx] && self.indeg_left[idx] == 0,
            "reissue for a subtask that is not active: {subtask:?}"
        );
        let hop = self.expected_hop_comm;
        let root_parallel = self.edges.is_empty() && self.nodes.len() > 1;
        let window = if root_parallel {
            self.deadline
        } else {
            let off = self.tail_off[idx] as usize;
            let end = self.tail_off[idx + 1] as usize;
            let tail = &self.tails[off..end];
            strategy.serial_deadline(&SspInput {
                submit_time: now,
                global_deadline: self.deadline,
                pex_current: self.nodes[idx].pex,
                pex_remaining_after: tail,
                comm_current: hop,
                comm_after: hop * (tail.len() + 1) as f64,
                slack_scale: self.slack_scale,
            })
        };
        let s = self.nodes[idx];
        out.push(Submission {
            subtask: SubtaskRef(idx),
            node: s.node,
            ex: s.ex,
            pex: s.pex,
            deadline: window,
            priority: strategy.priority_class(),
        });
    }

    /// Activates the wave currently in `wave_buf` at `now`: computes the
    /// wave window with the SSP rule over the wave's remaining critical
    /// path, divides it with the PSP rule when the wave is wider than
    /// one node, and appends one submission per member.
    fn activate_wave<A: DeadlineAssigner + ?Sized>(
        &mut self,
        strategy: &A,
        now: f64,
        out: &mut Vec<Submission>,
    ) {
        let width = self.wave_buf.len();
        let hop = self.expected_hop_comm;
        // A task that is one big antichain is the paper's flat parallel
        // task: serial levels do not apply, and the result return is the
        // only hand-off left after the fan-out.
        let root_parallel = self.edges.is_empty() && width > 1;
        let window = if root_parallel {
            self.deadline
        } else {
            // The wave's critical member: maximal pex + remaining
            // critical-path pex (first of equals wins).
            let mut critical = self.wave_buf[0] as usize;
            let mut critical_via = self.nodes[critical].pex + self.cp_pex_after[critical];
            for &i in &self.wave_buf[1..] {
                let via = self.nodes[i as usize].pex + self.cp_pex_after[i as usize];
                if via > critical_via {
                    critical = i as usize;
                    critical_via = via;
                }
            }
            // The path view: the tail is the per-node pex sequence along
            // the maximal-pex path after the critical member, flattened
            // once by `finalize` — borrow it, don't rebuild it.
            let off = self.tail_off[critical] as usize;
            let end = self.tail_off[critical + 1] as usize;
            let tail = &self.tails[off..end];
            strategy.serial_deadline(&SspInput {
                submit_time: now,
                global_deadline: self.deadline,
                pex_current: self.nodes[critical].pex,
                pex_remaining_after: tail,
                // One hop is in flight to this wave; after it completes
                // there are `tail` hand-offs along the critical path plus
                // the result return still to pay.
                comm_current: hop,
                comm_after: hop * (tail.len() + 1) as f64,
                slack_scale: self.slack_scale,
            })
        };
        let branch_dl = if width > 1 {
            strategy.parallel_deadline(&PspInput {
                arrival_time: now,
                global_deadline: window,
                branch_count: width,
                comm_current: hop,
                // Inside a deeper DAG the window already reserves
                // downstream transit; a pure antichain task still owes
                // its result return.
                comm_after: if root_parallel { hop } else { 0.0 },
                slack_scale: self.slack_scale,
            })
        } else {
            window
        };
        let priority = strategy.priority_class();
        for &i in &self.wave_buf {
            let s = self.nodes[i as usize];
            out.push(Submission {
                subtask: SubtaskRef(i as usize),
                node: s.node,
                ex: s.ex,
                pex: s.pex,
                deadline: branch_dl,
                priority,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::SdaStrategy;
    use crate::psp::ParallelStrategy;
    use crate::ssp::SerialStrategy;

    const EPS: f64 = 1e-12;

    fn chain(pex: &[f64], deadline: f64) -> DagRun {
        let mut run = DagRun::new();
        run.reset();
        let mut prev = None;
        for (i, &p) in pex.iter().enumerate() {
            let id = run.push_node(NodeId::new(i as u32), p, p);
            if let Some(prev) = prev {
                run.push_edge(prev, id);
            }
            prev = Some(id);
        }
        run.finalize();
        run.set_timing(0.0, deadline);
        run
    }

    fn drive_all(run: &mut DagRun, strategy: &SdaStrategy, mut now: f64, dt: f64) -> Vec<f64> {
        let mut subs = Vec::new();
        run.start(strategy, now, &mut subs);
        let mut deadlines = Vec::new();
        while let Some(sub) = subs.first().copied() {
            subs.remove(0);
            deadlines.push(sub.deadline);
            now += dt;
            run.complete(sub.subtask, strategy, now, &mut subs);
        }
        assert!(run.is_finished());
        deadlines
    }

    #[test]
    fn serial_chain_matches_paper_formulas() {
        // pex [2, 3, 5], dl 20 → slack 10; EQF stage 1: 0 + 2 + 10·0.2.
        let mut run = chain(&[2.0, 3.0, 5.0], 20.0);
        assert_eq!(run.critical_path_pex(), 10.0);
        assert_eq!(run.critical_path_ex(), 10.0);
        assert_eq!(run.depth(), 3);
        let mut subs = Vec::new();
        run.start(&SdaStrategy::eqf_ud(), 0.0, &mut subs);
        assert_eq!(subs.len(), 1);
        assert!((subs[0].deadline - 4.0).abs() < EPS, "{}", subs[0].deadline);
    }

    #[test]
    fn diamond_fan_in_waits_for_both_branches() {
        let mut run = DagRun::new();
        run.reset();
        let a = run.push_node(NodeId::new(0), 1.0, 1.0);
        let b = run.push_node(NodeId::new(1), 2.0, 2.0);
        let c = run.push_node(NodeId::new(2), 1.0, 1.0);
        let d = run.push_node(NodeId::new(3), 1.0, 1.0);
        run.push_edge(a, b);
        run.push_edge(a, c);
        run.push_edge(b, d);
        run.push_edge(c, d);
        run.finalize();
        run.set_timing(0.0, 10.0);
        assert_eq!(run.depth(), 3);
        assert_eq!(run.edge_count(), 4);
        assert_eq!(run.successors(a), &[b, c]);
        assert_eq!(run.predecessors(d), &[b, c]);

        let strategy = SdaStrategy::eqf_div1();
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert_eq!(subs.len(), 1, "only the source is ready");
        let mut wave = Vec::new();
        assert!(!run.complete(subs[0].subtask, &strategy, 1.0, &mut wave));
        assert_eq!(wave.len(), 2, "fork releases both branches");
        // Finish B; D must stay blocked on C.
        let mut next = Vec::new();
        assert!(!run.complete(wave[0].subtask, &strategy, 2.0, &mut next));
        assert!(next.is_empty(), "fan-in fired before all predecessors");
        assert!(!run.complete(wave[1].subtask, &strategy, 3.0, &mut next));
        assert_eq!(next.len(), 1, "last branch releases the join");
        assert!(run.complete(next[0].subtask, &strategy, 4.0, &mut next));
        assert!(run.is_finished());
        assert_eq!(run.progress(), (4, 4));
    }

    #[test]
    fn antichain_task_is_a_flat_parallel_fan() {
        // Three nodes, no edges: the window is the global deadline and
        // DIV-1 divides it — dl = 2 + (14 − 2)/3 = 6.
        let mut run = DagRun::new();
        run.reset();
        for i in 0..3 {
            run.push_node(NodeId::new(i), 1.0, 1.0);
        }
        run.finalize();
        run.set_timing(2.0, 14.0);
        assert_eq!(run.depth(), 1);
        let mut subs = Vec::new();
        run.start(&SdaStrategy::ud_div1(), 2.0, &mut subs);
        assert_eq!(subs.len(), 3);
        for s in &subs {
            assert!((s.deadline - 6.0).abs() < EPS, "{}", s.deadline);
        }
    }

    #[test]
    fn cross_layer_edge_extends_the_critical_path_view() {
        // A → B → D plus a long edge A → D: the chain A,B,D is critical.
        let mut run = DagRun::new();
        run.reset();
        let a = run.push_node(NodeId::new(0), 1.0, 1.0);
        let b = run.push_node(NodeId::new(1), 3.0, 3.0);
        let d = run.push_node(NodeId::new(2), 1.0, 1.0);
        run.push_edge(a, b);
        run.push_edge(a, d);
        run.push_edge(b, d);
        run.finalize();
        run.set_timing(0.0, 10.0);
        assert_eq!(run.critical_path_pex(), 5.0);
        assert_eq!(run.depth(), 3);
        // EQS at the source: slack = 10 − 5 = 5 over 3 levels.
        let strategy = SdaStrategy::new(
            SerialStrategy::EqualSlack,
            ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert!((subs[0].deadline - (1.0 + 5.0 / 3.0)).abs() < EPS);
    }

    #[test]
    fn expected_comm_reserves_slack_per_wave() {
        // Two-node chain, pex 1 each, dl 8, hop 0.5 — must match the
        // FlatRun doc example bit for bit (dl(T1) = 3.75).
        let mut run = chain(&[1.0, 1.0], 8.0);
        run.set_expected_comm(0.5);
        assert_eq!(run.expected_comm(), 0.5);
        let strategy = SdaStrategy::new(
            SerialStrategy::EqualSlack,
            ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert!(
            (subs[0].deadline - 3.75).abs() < EPS,
            "{}",
            subs[0].deadline
        );
        let mut more = Vec::new();
        assert!(!run.complete(subs[0].subtask, &strategy, 2.0, &mut more));
        assert!((more[0].deadline - 7.5).abs() < EPS, "{}", more[0].deadline);
    }

    #[test]
    fn slack_scale_tightens_wave_deadlines() {
        let mut run = chain(&[1.0, 1.0], 8.0);
        run.set_slack_scale(0.5);
        assert_eq!(run.slack_scale(), 0.5);
        let strategy = SdaStrategy::new(
            SerialStrategy::EqualSlack,
            ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert!((subs[0].deadline - 2.5).abs() < EPS, "{}", subs[0].deadline);
    }

    #[test]
    fn reset_recycles_without_state_leak() {
        let mut run = chain(&[1.0, 1.0], 4.0);
        let strategy = SdaStrategy::eqf_ud();
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        run.reset();
        assert_eq!(run.simple_count(), 0);
        assert_eq!(run.edge_count(), 0);
        assert!(!run.is_finished());
        assert_eq!(run.slack_scale(), 1.0);
        assert_eq!(run.expected_comm(), 0.0);
        // Refill and run to completion: the recycled run behaves freshly.
        run.push_node(NodeId::new(0), 1.0, 1.0);
        run.finalize();
        run.set_timing(2.0, 5.0);
        subs.clear();
        run.start(&strategy, 2.0, &mut subs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].deadline, 5.0);
        let mut more = Vec::new();
        assert!(run.complete(subs[0].subtask, &strategy, 3.0, &mut more));
        assert!(run.is_finished());
    }

    #[test]
    fn duplicate_edges_release_once() {
        let mut run = DagRun::new();
        run.reset();
        let a = run.push_node(NodeId::new(0), 1.0, 1.0);
        let b = run.push_node(NodeId::new(1), 1.0, 1.0);
        run.push_edge(a, b);
        run.push_edge(a, b);
        run.finalize();
        run.set_timing(0.0, 6.0);
        let strategy = SdaStrategy::ud_ud();
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        assert_eq!(subs.len(), 1);
        let mut more = Vec::new();
        assert!(!run.complete(subs[0].subtask, &strategy, 1.0, &mut more));
        assert_eq!(more.len(), 1, "B released exactly once");
        assert!(run.complete(more[0].subtask, &strategy, 2.0, &mut more));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_is_rejected() {
        let mut run = DagRun::new();
        run.reset();
        let a = run.push_node(NodeId::new(0), 1.0, 1.0);
        let b = run.push_node(NodeId::new(1), 1.0, 1.0);
        run.push_edge(a, b);
        run.push_edge(b, a);
        run.finalize();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_endpoint_is_rejected() {
        let mut run = DagRun::new();
        run.reset();
        run.push_node(NodeId::new(0), 1.0, 1.0);
        run.push_edge(0, 7);
        run.finalize();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_is_rejected() {
        let mut run = DagRun::new();
        run.reset();
        run.push_node(NodeId::new(0), 1.0, 1.0);
        run.push_edge(0, 0);
        run.finalize();
    }

    #[test]
    #[should_panic(expected = "start called twice")]
    fn double_start_panics() {
        let mut run = chain(&[1.0], 2.0);
        let mut out = Vec::new();
        run.start(&SdaStrategy::ud_ud(), 0.0, &mut out);
        run.start(&SdaStrategy::ud_ud(), 0.0, &mut out);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn double_complete_panics() {
        let mut run = DagRun::new();
        run.reset();
        run.push_node(NodeId::new(0), 1.0, 1.0);
        run.push_node(NodeId::new(1), 1.0, 1.0);
        run.finalize();
        run.set_timing(0.0, 4.0);
        let strategy = SdaStrategy::ud_ud();
        let mut out = Vec::new();
        run.start(&strategy, 0.0, &mut out);
        let mut more = Vec::new();
        run.complete(out[0].subtask, &strategy, 1.0, &mut more);
        run.complete(out[0].subtask, &strategy, 2.0, &mut more);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn completing_a_blocked_node_panics() {
        let mut run = chain(&[1.0, 1.0], 4.0);
        let strategy = SdaStrategy::ud_ud();
        let mut out = Vec::new();
        run.start(&strategy, 0.0, &mut out);
        // Node 1 is still blocked on node 0.
        run.complete(SubtaskRef(1), &strategy, 1.0, &mut out);
    }

    #[test]
    #[should_panic(expected = "before finalize")]
    fn start_before_finalize_panics() {
        let mut run = DagRun::new();
        run.reset();
        run.push_node(NodeId::new(0), 1.0, 1.0);
        let mut out = Vec::new();
        run.start(&SdaStrategy::ud_ud(), 0.0, &mut out);
    }

    #[test]
    fn reissue_uses_the_lost_nodes_own_tail() {
        // Diamond A → {B, C} → D, pex: A 1, B 2, C 1, D 1, dl 10.
        // After A completes at t = 1 the wave {B, C} opens. Losing C and
        // reissuing at t = 4: C's own tail is [1.0] (just D), so EQS sees
        // slack 10 − 4 − (1 + 1) = 4 over 2 levels → dl = 4 + 1 + 2 = 7.
        let mut run = DagRun::new();
        run.reset();
        let a = run.push_node(NodeId::new(0), 1.0, 1.0);
        let b = run.push_node(NodeId::new(1), 2.0, 2.0);
        let c = run.push_node(NodeId::new(2), 1.0, 1.0);
        let d = run.push_node(NodeId::new(3), 1.0, 1.0);
        run.push_edge(a, b);
        run.push_edge(a, c);
        run.push_edge(b, d);
        run.push_edge(c, d);
        run.finalize();
        run.set_timing(0.0, 10.0);
        let strategy = SdaStrategy::new(
            SerialStrategy::EqualSlack,
            ParallelStrategy::UltimateDeadline,
        );
        let mut subs = Vec::new();
        run.start(&strategy, 0.0, &mut subs);
        let mut wave = Vec::new();
        assert!(!run.complete(subs[0].subtask, &strategy, 1.0, &mut wave));
        assert_eq!(wave.len(), 2);
        let lost = wave
            .iter()
            .find(|s| s.subtask == SubtaskRef(c as usize))
            .expect("C is in the wave");
        let mut again = Vec::new();
        run.reissue(lost.subtask, &strategy, 4.0, &mut again);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].subtask, lost.subtask);
        assert!(
            (again[0].deadline - 7.0).abs() < EPS,
            "{}",
            again[0].deadline
        );
        // Bookkeeping untouched: the run still completes normally.
        let mut next = Vec::new();
        assert!(!run.complete(wave[0].subtask, &strategy, 5.0, &mut next));
        assert!(!run.complete(again[0].subtask, &strategy, 6.0, &mut next));
        assert_eq!(next.len(), 1);
        assert!(run.complete(next[0].subtask, &strategy, 7.0, &mut next));
        assert!(run.is_finished());
    }

    #[test]
    fn reissue_on_an_antichain_keeps_the_global_window() {
        let mut run = DagRun::new();
        run.reset();
        for i in 0..3 {
            run.push_node(NodeId::new(i), 1.0, 1.0);
        }
        run.finalize();
        run.set_timing(2.0, 14.0);
        let mut subs = Vec::new();
        run.start(&SdaStrategy::ud_div1(), 2.0, &mut subs);
        let mut again = Vec::new();
        run.reissue(subs[1].subtask, &SdaStrategy::ud_div1(), 6.0, &mut again);
        assert_eq!(again.len(), 1);
        assert!((again[0].deadline - 14.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn reissue_of_a_blocked_node_panics() {
        let mut run = chain(&[1.0, 1.0], 4.0);
        let strategy = SdaStrategy::ud_ud();
        let mut out = Vec::new();
        run.start(&strategy, 0.0, &mut out);
        run.reissue(SubtaskRef(1), &strategy, 1.0, &mut out);
    }

    #[test]
    fn ud_assigns_global_deadline_everywhere() {
        let mut run = chain(&[1.0, 2.0, 1.0], 9.0);
        let deadlines = drive_all(&mut run, &SdaStrategy::ud_ud(), 0.0, 0.5);
        assert_eq!(deadlines, vec![9.0, 9.0, 9.0]);
    }
}
