//! The wall-clock service runtime: submitter threads stream generated
//! tasks to a process-manager thread, which assigns virtual deadlines
//! through the unchanged strategies and dispatches subtasks to
//! thread-per-node workers over in-process channels.
//!
//! Topology:
//!
//! ```text
//! local submitter ──┐                      ┌── worker 0 (owns Node 0)
//! global submitter ─┼──► process manager ──┼── worker 1 (owns Node 1)
//!                   │    (ManagerCore)     └── ...
//! workers ──────────┘   completions/discards
//! ```
//!
//! The submitters reuse [`TaskFactory`] (and through it the
//! [`ArrivalProcess`](sda_workload::ArrivalProcess) drivers — Poisson,
//! MMPP, phased) as deterministic traffic generators: the *trace* of
//! arrival times and task attributes is seeded and reproducible, while
//! completion times are measured on the real clock. Shutdown is a
//! drain: submitters close at the horizon, and the manager releases the
//! workers only once every submitted task has reached a terminal state,
//! so no completion is lost.

use std::sync::mpsc;
use std::sync::Arc;

use sda_core::{DagRun, FlatRun, NodeId, Submission, TaskId};
use sda_sched::{Job, JobOrigin};
use sda_sim::rng::RngFactory;
use sda_sim::SimTime;
use sda_system::{FailureModel, Metrics, Node, RunConfig, SystemConfig};
use sda_workload::{GlobalShape, LocalTask, TaskFactory};

use crate::clock::{Clock, WallClock};
use crate::manager::{dispatch_node, DiscardOutcome, ManagerCore, PooledRun, SubtaskOutcome};
use crate::qos::{DeadlineContract, QosReport};
use crate::ServiceError;

/// Parameters of one wall-clock service run.
#[derive(Debug, Clone)]
pub struct WallRunConfig {
    /// Warm-up prefix (simulated time units) after which statistics
    /// restart.
    pub warmup: f64,
    /// Submission horizon (simulated time units, including warm-up):
    /// submitters stop streaming once their next arrival falls past it.
    pub duration: f64,
    /// Master seed for the traffic generators.
    pub seed: u64,
    /// Simulated time units per wall-clock second (see [`WallClock`]).
    pub time_scale: f64,
    /// Hard cap on submitted global tasks (`u64::MAX` = horizon only).
    pub max_globals: u64,
    /// The per-task deadline budget the service offers, checked against
    /// `requested` at startup (DDS compatibility rule: offered ≤
    /// requested). `None` skips the contract check.
    pub offered: Option<DeadlineContract>,
    /// The per-task deadline budget the submitters request.
    pub requested: Option<DeadlineContract>,
}

impl WallRunConfig {
    /// A configuration with contracts disabled and no global-task cap.
    pub fn new(run: &RunConfig, time_scale: f64) -> WallRunConfig {
        WallRunConfig {
            warmup: run.warmup,
            duration: run.duration,
            seed: run.seed,
            time_scale,
            max_globals: u64::MAX,
            offered: None,
            requested: None,
        }
    }
}

/// Everything a wall-clock run produces.
#[derive(Debug, Clone)]
pub struct WallReport {
    /// Task metrics, observed on the wall clock (post-warm-up).
    pub metrics: Metrics,
    /// The deadline-QoS monitor's per-class statuses.
    pub qos: QosReport,
    /// Local tasks the submitters streamed in.
    pub submitted_locals: u64,
    /// Global tasks the submitters streamed in.
    pub submitted_globals: u64,
    /// Local tasks that reached a terminal state (completed or
    /// discarded).
    pub terminal_locals: u64,
    /// Global tasks that reached a terminal state (finished or
    /// aborted).
    pub terminal_globals: u64,
    /// Per-node wall-time utilization over the run.
    pub node_utilization: Vec<f64>,
    /// The service clock when the drain finished (simulated units).
    pub end_time: f64,
    /// Real seconds the run took.
    pub wall_seconds: f64,
}

impl WallReport {
    /// Tasks submitted but never accounted — must be zero after a
    /// graceful drain.
    pub fn lost_tasks(&self) -> u64 {
        (self.submitted_locals - self.terminal_locals)
            + (self.submitted_globals - self.terminal_globals)
    }

    /// Whether the shutdown drained cleanly: every submitted task
    /// reached a terminal state.
    pub fn drained_clean(&self) -> bool {
        self.lost_tasks() == 0
    }
}

/// Submitters and workers → manager.
enum ToManager {
    Local(LocalTask),
    GlobalFlat(Box<FlatRun>),
    GlobalDag(Box<DagRun>),
    Done { job: Job },
    Discarded { job: Job },
    SubmitterDone { submitted: u64, locals: bool },
}

/// Manager → worker.
enum ToWorker {
    Run(Job),
    ResetStats,
    Shutdown,
}

/// Runs the service on the wall clock and drains it.
///
/// # Errors
///
/// Returns [`ServiceError::Config`] for invalid workloads,
/// [`ServiceError::Unsupported`] for model features the live runtime
/// does not implement, [`ServiceError::BadParameter`] for a bad
/// `time_scale`, and [`ServiceError::IncompatibleContract`] when the
/// offered deadline contract cannot satisfy the requested one.
pub fn run_wall(config: &SystemConfig, wall: &WallRunConfig) -> Result<WallReport, ServiceError> {
    if !config.network.is_zero() {
        return Err(ServiceError::Unsupported(
            "non-zero network model (the service dispatches over in-process channels)",
        ));
    }
    if !matches!(config.failure, FailureModel::None) {
        return Err(ServiceError::Unsupported("failure injection"));
    }
    if let (Some(offered), Some(requested)) = (wall.offered, wall.requested) {
        if !offered.satisfies(&requested) {
            return Err(ServiceError::IncompatibleContract {
                offered: offered.budget,
                requested: requested.budget,
            });
        }
    }
    if !wall.duration.is_finite() || wall.duration <= 0.0 {
        return Err(ServiceError::BadParameter {
            what: "duration",
            value: wall.duration,
        });
    }
    let clock = Arc::new(WallClock::new(wall.time_scale)?);

    // Independent factories per submitter thread: same workload, child
    // seeds, so each thread owns its streams outright.
    let rng = RngFactory::new(wall.seed);
    let local_factory = TaskFactory::new(config.workload.clone(), &rng.subfactory(1))?;
    let global_factory = TaskFactory::new(config.workload.clone(), &rng.subfactory(2))?;

    let n = config.workload.nodes;
    let dag_tasks = matches!(config.workload.shape, GlobalShape::Dag { .. });
    let core = ManagerCore::new(config.strategy, dag_tasks);

    let (to_manager, manager_rx) = mpsc::channel::<ToManager>();
    let mut worker_txs = Vec::with_capacity(n);
    let mut worker_handles = Vec::with_capacity(n);
    for i in 0..n {
        let (tx, rx) = mpsc::channel::<ToWorker>();
        worker_txs.push(tx);
        let node = Node::new(NodeId::new(i as u32), config.policy);
        let worker = Worker {
            node,
            rx,
            manager: to_manager.clone(),
            clock: Arc::clone(&clock),
            preemptive: config.preemptive,
            overload: config.overload,
            pending: None,
        };
        worker_handles.push(std::thread::spawn(move || worker.run()));
    }

    let horizon = wall.duration;
    let local_sub = {
        let tx = to_manager.clone();
        let clock = Arc::clone(&clock);
        let mut factory = local_factory;
        let nodes = n;
        std::thread::spawn(move || submit_locals(&mut factory, nodes, horizon, &clock, &tx))
    };
    let global_sub = {
        let tx = to_manager.clone();
        let clock = Arc::clone(&clock);
        let mut factory = global_factory;
        let cap = wall.max_globals;
        let dag = dag_tasks;
        std::thread::spawn(move || submit_globals(&mut factory, horizon, cap, dag, &clock, &tx))
    };
    drop(to_manager);

    let mut manager = Manager {
        core,
        worker_txs,
        clock: Arc::clone(&clock),
        warmup: wall.warmup,
        warmup_done: wall.warmup <= 0.0,
        outstanding_jobs: 0,
        submitted_locals: None,
        submitted_globals: None,
        terminal_locals: 0,
        terminal_globals: 0,
        subs: Vec::new(),
    };
    manager.run(&manager_rx);

    local_sub.join().expect("local submitter thread panicked");
    global_sub.join().expect("global submitter thread panicked");
    let end_time = clock.now();
    let end_t = SimTime::new(end_time);
    let mut node_utilization = Vec::with_capacity(n);
    for handle in worker_handles {
        let node = handle.join().expect("worker thread panicked");
        node_utilization.push(node.utilization(end_t));
    }

    Ok(WallReport {
        metrics: manager.core.metrics().clone(),
        qos: manager.core.qos().report(),
        submitted_locals: manager.submitted_locals.unwrap_or(0),
        submitted_globals: manager.submitted_globals.unwrap_or(0),
        terminal_locals: manager.terminal_locals,
        terminal_globals: manager.terminal_globals,
        node_utilization,
        end_time,
        wall_seconds: end_time / clock.time_scale(),
    })
}

/// Streams every node's local arrivals, merged by a small time heap, at
/// their generated instants until the horizon.
fn submit_locals(
    factory: &mut TaskFactory,
    nodes: usize,
    horizon: f64,
    clock: &WallClock,
    tx: &mpsc::Sender<ToManager>,
) {
    // (next arrival time, node), smallest time first.
    let mut next: Vec<(f64, NodeId)> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let node = NodeId::new(i as u32);
        if let Some(gap) = factory.next_local_interarrival(node) {
            next.push((gap, node));
        }
    }
    let mut submitted = 0u64;
    while let Some((idx, &(t, node))) = next
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
    {
        if t > horizon {
            break;
        }
        clock.sleep_until(t);
        let task = factory.make_local(node, t);
        if tx.send(ToManager::Local(task)).is_err() {
            break; // manager gone: nothing left to stream to
        }
        submitted += 1;
        match factory.next_local_interarrival(node) {
            Some(gap) => next[idx] = (t + gap, node),
            None => {
                next.swap_remove(idx);
            }
        }
    }
    let _ = tx.send(ToManager::SubmitterDone {
        submitted,
        locals: true,
    });
}

/// Streams global tasks at their generated instants until the horizon
/// or the task cap.
fn submit_globals(
    factory: &mut TaskFactory,
    horizon: f64,
    cap: u64,
    dag: bool,
    clock: &WallClock,
    tx: &mpsc::Sender<ToManager>,
) {
    let mut t = 0.0f64;
    let mut submitted = 0u64;
    while submitted < cap {
        let Some(gap) = factory.next_global_interarrival() else {
            break;
        };
        t += gap;
        if t > horizon {
            break;
        }
        clock.sleep_until(t);
        let msg = if dag {
            let mut run = DagRun::new();
            factory.make_global_dag(t, &mut run);
            ToManager::GlobalDag(Box::new(run))
        } else {
            let mut run = FlatRun::new();
            factory.make_global_flat(t, &mut run);
            ToManager::GlobalFlat(Box::new(run))
        };
        if tx.send(msg).is_err() {
            break;
        }
        submitted += 1;
    }
    let _ = tx.send(ToManager::SubmitterDone {
        submitted,
        locals: false,
    });
}

/// The process-manager thread state.
struct Manager {
    core: ManagerCore,
    worker_txs: Vec<mpsc::Sender<ToWorker>>,
    clock: Arc<WallClock>,
    warmup: f64,
    warmup_done: bool,
    /// Jobs handed to workers and not yet terminal — the drain gate.
    outstanding_jobs: u64,
    submitted_locals: Option<u64>,
    submitted_globals: Option<u64>,
    terminal_locals: u64,
    terminal_globals: u64,
    subs: Vec<Submission>,
}

impl Manager {
    fn run(&mut self, rx: &mpsc::Receiver<ToManager>) {
        while let Ok(msg) = rx.recv() {
            self.maybe_end_warmup();
            self.handle(msg);
            if self.drained() {
                break;
            }
        }
        for tx in &self.worker_txs {
            let _ = tx.send(ToWorker::Shutdown);
        }
    }

    fn maybe_end_warmup(&mut self) {
        if !self.warmup_done && self.clock.now() >= self.warmup {
            self.core.reset_warmup();
            for tx in &self.worker_txs {
                let _ = tx.send(ToWorker::ResetStats);
            }
            self.warmup_done = true;
        }
    }

    /// Drain condition: both submitters closed, and every job they
    /// induced has reached a terminal state.
    fn drained(&self) -> bool {
        self.submitted_locals.is_some()
            && self.submitted_globals.is_some()
            && self.outstanding_jobs == 0
            && self.core.tasks_in_flight() == 0
    }

    fn send_job(&mut self, node: NodeId, job: Job) {
        self.outstanding_jobs += 1;
        // A worker only disconnects after Shutdown, which is only sent
        // once the drain completed — so this send cannot fail while
        // jobs are outstanding.
        self.worker_txs[node.index()]
            .send(ToWorker::Run(job))
            .expect("worker alive until drained");
    }

    fn dispatch_wave(&mut self, task: TaskId, now: f64) {
        let subs = std::mem::take(&mut self.subs);
        for sub in &subs {
            let job = Job::global(
                task,
                sub.subtask,
                now,
                sub.ex,
                sub.pex,
                sub.deadline,
                sub.priority,
            );
            self.send_job(sub.node, job);
        }
        self.subs = subs;
    }

    fn handle(&mut self, msg: ToManager) {
        match msg {
            ToManager::Local(task) => {
                let id = self.core.fresh_local_id();
                // The generated arrival instant is the job's enqueue
                // time, so queueing delay — and the deadline verdict —
                // are measured against the *requested* arrival; any
                // channel or scheduling latency the runtime adds counts
                // against the observed side of the contract.
                let job = Job::local(id, task.attrs.arrival, task.attrs.ex, task.attrs.deadline);
                self.send_job(task.node, job);
            }
            ToManager::GlobalFlat(run) => self.admit(PooledRun::Flat(*run)),
            ToManager::GlobalDag(run) => self.admit(PooledRun::Dag(*run)),
            ToManager::Done { job } => {
                self.outstanding_jobs -= 1;
                let now = self.clock.now();
                match job.origin {
                    JobOrigin::Local { .. } => {
                        self.core.local_done(&job, now);
                        self.terminal_locals += 1;
                    }
                    JobOrigin::Global { task, .. } => {
                        let mut subs = std::mem::take(&mut self.subs);
                        let outcome = self.core.subtask_done(&job, now, &mut subs);
                        self.subs = subs;
                        match outcome {
                            SubtaskOutcome::Finished { .. } => self.terminal_globals += 1,
                            SubtaskOutcome::Progressed => self.dispatch_wave(task, now),
                            SubtaskOutcome::Swallowed => {}
                        }
                    }
                }
            }
            ToManager::Discarded { job } => {
                self.outstanding_jobs -= 1;
                let now = self.clock.now();
                match self.core.job_discarded(now, &job) {
                    DiscardOutcome::Local => self.terminal_locals += 1,
                    DiscardOutcome::GlobalAborted => self.terminal_globals += 1,
                    DiscardOutcome::GlobalAlreadyDead => {}
                }
            }
            ToManager::SubmitterDone { submitted, locals } => {
                if locals {
                    self.submitted_locals = Some(submitted);
                } else {
                    self.submitted_globals = Some(submitted);
                }
            }
        }
    }

    fn admit(&mut self, run: PooledRun) {
        // Virtual deadlines decompose the budget from the *requested*
        // arrival instant (stored in the generated run), so the
        // assignment math matches the paper exactly; runtime latency
        // shows up on the observed side of the contract instead.
        let at = run.arrival();
        let mut subs = std::mem::take(&mut self.subs);
        let id = self.core.admit_global(at, |slot| *slot = run, &mut subs);
        self.subs = subs;
        self.dispatch_wave(id, at);
    }
}

/// One worker thread: owns its [`Node`], serves jobs to wall-clock
/// completion, reports completions and admission discards back to the
/// manager.
struct Worker {
    node: Node,
    rx: mpsc::Receiver<ToWorker>,
    manager: mpsc::Sender<ToManager>,
    clock: Arc<WallClock>,
    preemptive: bool,
    overload: sda_system::OverloadPolicy,
    /// The in-service job's completion: (service epoch, completion
    /// instant in simulated units).
    pending: Option<(u64, f64)>,
}

impl Worker {
    fn run(mut self) -> Node {
        let mut discards = Vec::new();
        loop {
            // Wait for the next message, or — when a job is in
            // service — until its completion instant.
            let msg = match self.pending {
                Some((_, done_at)) => {
                    match self.rx.recv_timeout(self.clock.duration_until(done_at)) {
                        Ok(msg) => Some(msg),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match self.rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => break,
                },
            };
            match msg {
                Some(ToWorker::Run(job)) => {
                    let now = self.clock.now();
                    self.node.enqueue(SimTime::new(now), job);
                    self.dispatch(now, &mut discards);
                }
                Some(ToWorker::ResetStats) => {
                    self.node.reset_stats(SimTime::new(self.clock.now()));
                }
                Some(ToWorker::Shutdown) => break,
                None => self.complete(&mut discards),
            }
        }
        self.node
    }

    /// The in-service job's completion instant arrived: finish it (if
    /// its epoch is still current — preemption may have superseded it),
    /// report, and start the next job.
    fn complete(&mut self, discards: &mut Vec<Job>) {
        let Some((epoch, done_at)) = self.pending.take() else {
            return;
        };
        if !self.node.completion_is_current(epoch) {
            return;
        }
        // Observe completion on the real clock (never before the
        // scheduled instant — the clock may lag a hair behind the
        // timeout).
        let now = self.clock.now().max(done_at);
        let job = self.node.finish_service(SimTime::new(now));
        let _ = self.manager.send(ToManager::Done { job });
        self.dispatch(now, discards);
    }

    /// One dispatch round: discards are reported in order, then the
    /// started job's completion is booked.
    fn dispatch(&mut self, now: f64, discards: &mut Vec<Job>) {
        let started = dispatch_node(
            &mut self.node,
            self.preemptive,
            self.overload,
            now,
            discards,
        );
        for job in discards.drain(..) {
            let _ = self.manager.send(ToManager::Discarded { job });
        }
        if let Some(job) = started {
            let epoch = self.node.service_epoch();
            self.pending = Some((epoch, now + job.service));
        }
    }
}
