//! Deadline-QoS monitoring in the style of DDS deadline contracts:
//! requested-vs-observed deadline checks, per-class violation statuses,
//! and a warm-up-resettable EWMA miss ratio.
//!
//! The monitor is a pure *observer*: it never feeds back into deadline
//! assignment. The `ADAPT(base)` control loop keeps reading
//! [`Feedback`] — which, being control state,
//! survives warm-up resets — while the monitor's EWMA is a *statistic*
//! and restarts at warm-up like every other measurement.

use sda_system::Feedback;

/// A task class the monitor keeps a violation status for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// Local tasks (per-node streams).
    Local,
    /// Global tasks, judged against their end-to-end deadline.
    Global,
    /// Global subtasks, judged against their assigned *virtual*
    /// deadline.
    SubtaskVirtual,
}

/// A per-task deadline budget, in simulated time units: the relative
/// deadline a side of the service promises (offered) or demands
/// (requested).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineContract {
    /// The relative deadline budget.
    pub budget: f64,
}

impl DeadlineContract {
    /// A contract with the given budget.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadParameter`](crate::ServiceError) if
    /// the budget is not finite and positive.
    pub fn new(budget: f64) -> Result<DeadlineContract, crate::ServiceError> {
        if !budget.is_finite() || budget <= 0.0 {
            return Err(crate::ServiceError::BadParameter {
                what: "contract budget",
                value: budget,
            });
        }
        Ok(DeadlineContract { budget })
    }

    /// The DDS deadline-compatibility rule: an offered contract
    /// satisfies a requested one iff the offered budget is no laxer
    /// than (i.e. at most) the requested budget.
    pub fn satisfies(&self, requested: &DeadlineContract) -> bool {
        self.budget <= requested.budget
    }
}

/// The violation status of one class: how often observed completions
/// broke their requested deadline.
///
/// Mirrors the DDS `DeadlineMissedStatus` shape: a cumulative count, an
/// incremental count since the last read, and the time of the most
/// recent violation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ViolationStatus {
    /// Violations observed since the last statistics reset.
    pub total_count: u64,
    /// Violations observed since the last [`QosMonitor::take_status`]
    /// read.
    pub count_change: u64,
    /// When the most recent violation was observed (simulated time
    /// units), `None` if none has been.
    pub last_violation: Option<f64>,
}

/// Per-class state: the violation status plus the EWMA miss estimate.
#[derive(Debug, Clone, Copy)]
struct ClassQos {
    status: ViolationStatus,
    ewma: f64,
    observations: u64,
}

impl ClassQos {
    fn new() -> ClassQos {
        ClassQos {
            status: ViolationStatus::default(),
            ewma: 0.0,
            observations: 0,
        }
    }

    fn observe(&mut self, alpha: f64, violated: bool, now: f64) {
        if violated {
            self.status.total_count += 1;
            self.status.count_change += 1;
            self.status.last_violation = Some(now);
        }
        let x = if violated { 1.0 } else { 0.0 };
        self.ewma += alpha * (x - self.ewma);
        self.observations += 1;
    }
}

/// A read-only summary of the monitor, for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosReport {
    /// Local-task violation status.
    pub local: ViolationStatus,
    /// Global-task (end-to-end) violation status.
    pub global: ViolationStatus,
    /// Subtask virtual-deadline violation status.
    pub subtask_virtual: ViolationStatus,
    /// EWMA miss ratio over local completions.
    pub local_miss_ewma: f64,
    /// EWMA miss ratio over global completions.
    pub global_miss_ewma: f64,
}

/// Tracks requested-vs-observed deadline outcomes per class.
///
/// Each terminal task event is offered to the monitor with its
/// requested (absolute) deadline already compared against the observed
/// completion time; the monitor folds the boolean into the class's
/// [`ViolationStatus`] and EWMA.
#[derive(Debug, Clone)]
pub struct QosMonitor {
    alpha: f64,
    local: ClassQos,
    global: ClassQos,
    subtask: ClassQos,
}

impl QosMonitor {
    /// A monitor with the default EWMA window (the same smoothing
    /// factor the `ADAPT` feedback estimator uses, ≈ 50 completions).
    pub fn new() -> QosMonitor {
        QosMonitor::with_alpha(Feedback::DEFAULT_ALPHA)
    }

    /// A monitor with an explicit smoothing factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or not finite.
    pub fn with_alpha(alpha: f64) -> QosMonitor {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "qos alpha must be in (0, 1], got {alpha}"
        );
        QosMonitor {
            alpha,
            local: ClassQos::new(),
            global: ClassQos::new(),
            subtask: ClassQos::new(),
        }
    }

    fn class_mut(&mut self, class: ServiceClass) -> &mut ClassQos {
        match class {
            ServiceClass::Local => &mut self.local,
            ServiceClass::Global => &mut self.global,
            ServiceClass::SubtaskVirtual => &mut self.subtask,
        }
    }

    fn class(&self, class: ServiceClass) -> &ClassQos {
        match class {
            ServiceClass::Local => &self.local,
            ServiceClass::Global => &self.global,
            ServiceClass::SubtaskVirtual => &self.subtask,
        }
    }

    /// Folds one terminal event into `class`: `violated` is the
    /// requested-vs-observed comparison (`observed completion >
    /// requested deadline`), `now` the observation time.
    pub fn observe(&mut self, class: ServiceClass, violated: bool, now: f64) {
        let alpha = self.alpha;
        self.class_mut(class).observe(alpha, violated, now);
    }

    /// The current violation status of `class` (without consuming the
    /// incremental count).
    pub fn status(&self, class: ServiceClass) -> ViolationStatus {
        self.class(class).status
    }

    /// Reads and consumes the status of `class`: returns the current
    /// snapshot and zeroes `count_change`, DDS-read style, so the next
    /// read reports only new violations.
    pub fn take_status(&mut self, class: ServiceClass) -> ViolationStatus {
        let status = &mut self.class_mut(class).status;
        let snapshot = *status;
        status.count_change = 0;
        snapshot
    }

    /// The EWMA miss ratio of `class` (0 before any observation).
    pub fn miss_ewma(&self, class: ServiceClass) -> f64 {
        self.class(class).ewma
    }

    /// Terminal events folded into `class` since the last reset.
    pub fn observations(&self, class: ServiceClass) -> u64 {
        self.class(class).observations
    }

    /// Warm-up deletion: every statistic restarts — counts, change
    /// counts, last-violation stamps *and* the EWMA. (Contrast with
    /// [`Feedback`], whose EWMA is control state and survives the
    /// warm-up boundary.)
    pub fn reset_statistics(&mut self) {
        self.local = ClassQos::new();
        self.global = ClassQos::new();
        self.subtask = ClassQos::new();
    }

    /// A read-only summary for reports.
    pub fn report(&self) -> QosReport {
        QosReport {
            local: self.local.status,
            global: self.global.status,
            subtask_virtual: self.subtask.status,
            local_miss_ewma: self.local.ewma,
            global_miss_ewma: self.global.ewma,
        }
    }
}

impl Default for QosMonitor {
    fn default() -> Self {
        QosMonitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_compatibility_is_offered_at_most_requested() {
        let tight = DeadlineContract::new(5.0).unwrap();
        let loose = DeadlineContract::new(10.0).unwrap();
        assert!(tight.satisfies(&loose));
        assert!(tight.satisfies(&tight));
        assert!(!loose.satisfies(&tight));
    }

    #[test]
    fn contract_rejects_degenerate_budgets() {
        assert!(DeadlineContract::new(0.0).is_err());
        assert!(DeadlineContract::new(-1.0).is_err());
        assert!(DeadlineContract::new(f64::NAN).is_err());
        assert!(DeadlineContract::new(f64::INFINITY).is_err());
    }

    #[test]
    fn violation_status_transitions_track_counts_and_stamp() {
        let mut q = QosMonitor::new();
        let c = ServiceClass::Local;
        assert_eq!(q.status(c), ViolationStatus::default());

        q.observe(c, false, 1.0);
        assert_eq!(q.status(c).total_count, 0);
        assert_eq!(q.status(c).last_violation, None);

        q.observe(c, true, 2.0);
        q.observe(c, true, 3.5);
        let s = q.status(c);
        assert_eq!(s.total_count, 2);
        assert_eq!(s.count_change, 2);
        assert_eq!(s.last_violation, Some(3.5));
        assert_eq!(q.observations(c), 3);
    }

    #[test]
    fn take_status_consumes_the_incremental_count_only() {
        let mut q = QosMonitor::new();
        let c = ServiceClass::Global;
        q.observe(c, true, 1.0);
        let first = q.take_status(c);
        assert_eq!(first.total_count, 1);
        assert_eq!(first.count_change, 1);

        // Nothing new: total persists, change is consumed.
        let second = q.take_status(c);
        assert_eq!(second.total_count, 1);
        assert_eq!(second.count_change, 0);
        assert_eq!(second.last_violation, Some(1.0));

        q.observe(c, true, 4.0);
        let third = q.take_status(c);
        assert_eq!(third.total_count, 2);
        assert_eq!(third.count_change, 1);
        assert_eq!(third.last_violation, Some(4.0));
    }

    #[test]
    fn ewma_matches_the_feedback_recurrence() {
        let mut q = QosMonitor::with_alpha(0.5);
        let c = ServiceClass::Local;
        q.observe(c, true, 1.0);
        assert!((q.miss_ewma(c) - 0.5).abs() < 1e-15);
        q.observe(c, true, 2.0);
        assert!((q.miss_ewma(c) - 0.75).abs() < 1e-15);
        q.observe(c, false, 3.0);
        assert!((q.miss_ewma(c) - 0.375).abs() < 1e-15);
    }

    #[test]
    fn warmup_reset_clears_every_statistic_including_the_ewma() {
        let mut q = QosMonitor::new();
        for class in [
            ServiceClass::Local,
            ServiceClass::Global,
            ServiceClass::SubtaskVirtual,
        ] {
            q.observe(class, true, 1.0);
        }
        assert!(q.miss_ewma(ServiceClass::Local) > 0.0);

        q.reset_statistics();
        for class in [
            ServiceClass::Local,
            ServiceClass::Global,
            ServiceClass::SubtaskVirtual,
        ] {
            assert_eq!(q.status(class), ViolationStatus::default());
            assert_eq!(q.miss_ewma(class), 0.0);
            assert_eq!(q.observations(class), 0);
        }
    }

    #[test]
    fn reset_contrast_feedback_ewma_survives_where_qos_ewma_does_not() {
        // The design invariant the warm-up boundary relies on: the
        // ADAPT control signal persists, the QoS statistic restarts.
        let mut metrics = sda_system::Metrics::new();
        let mut qos = QosMonitor::new();
        for _ in 0..10 {
            metrics.feedback.observe(true);
            qos.observe(ServiceClass::Global, true, 1.0);
        }
        let pressure_before = metrics.feedback.pressure();
        metrics.reset();
        qos.reset_statistics();
        assert_eq!(metrics.feedback.pressure(), pressure_before);
        assert_eq!(qos.miss_ewma(ServiceClass::Global), 0.0);
    }
}
