//! The logical-clock service runtime: the live process manager driven
//! deterministically, event for event, so the simulator can vouch for
//! it.
//!
//! [`run_logical`] executes the same process-manager logic the
//! wall-clock runtime uses, but time comes from a [`LogicalClock`]
//! advanced by an internal event heap ordered exactly like the
//! simulator's future-event list (timestamp, then FIFO sequence). On
//! any configuration both support, the result is bit-identical to
//! [`sda_system::run_once`] — the equivalence test in
//! `tests/service_equivalence.rs` pins this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sda_core::{NodeId, Submission, TaskId};
use sda_sched::{Job, JobOrigin};
use sda_sim::rng::RngFactory;
use sda_sim::SimTime;
use sda_system::{FailureModel, Node, RunConfig, RunResult, SystemConfig};
use sda_workload::{GlobalShape, TaskFactory};

use crate::clock::{Clock, LogicalClock};
use crate::manager::{dispatch_node, ManagerCore, PooledRun, SubtaskOutcome};
use crate::qos::QosReport;
use crate::ServiceError;

/// Everything a logical-clock service run produces: the simulator-shaped
/// result (directly comparable to [`sda_system::run_once`]'s) plus the
/// QoS monitor's view.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Metrics, per-node statistics, end time and event count — the
    /// same shape (and on supported configs the same bits) as the
    /// simulator's [`RunResult`].
    pub result: RunResult,
    /// The deadline-QoS monitor's per-class violation statuses.
    pub qos: QosReport,
}

/// The service runtime's event vocabulary — the restriction of the
/// simulator's [`sda_system::Event`] to the space the live runtime
/// supports (free communication delivers hand-offs inline, and no
/// failures means no outage events).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Init { warmup_end: f64 },
    LocalArrival { node: NodeId },
    GlobalArrival,
    ServiceComplete { node: NodeId, epoch: u64 },
    EndWarmup,
}

/// A heap entry: ordered by timestamp (IEEE total order — the same
/// order the simulator's packed keys induce), ties broken by FIFO
/// sequence number, exactly like the simulator with order fuzzing off.
#[derive(Debug)]
struct Pending {
    time: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The single-threaded service instance behind [`run_logical`].
struct LogicalService {
    factory: TaskFactory,
    nodes: Vec<Node>,
    core: ManagerCore,
    preemptive: bool,
    overload: sda_system::OverloadPolicy,
    clock: LogicalClock,
    heap: BinaryHeap<Reverse<Pending>>,
    next_seq: u64,
    events: u64,
    subs: Vec<Submission>,
    discards: Vec<Job>,
}

impl LogicalService {
    fn schedule(&mut self, delay: f64, ev: Ev) {
        debug_assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Pending {
            time: self.clock.now() + delay,
            seq,
            ev,
        }));
    }

    fn schedule_next_local(&mut self, node: NodeId) {
        if let Some(gap) = self.factory.next_local_interarrival(node) {
            self.schedule(gap, Ev::LocalArrival { node });
        }
    }

    fn schedule_next_global(&mut self) {
        if let Some(gap) = self.factory.next_global_interarrival() {
            self.schedule(gap, Ev::GlobalArrival);
        }
    }

    /// Delivers one hand-off inline (free communication) as a job of
    /// `task` at its destination node.
    fn deliver(&mut self, now: f64, task: TaskId, sub: Submission) {
        let job = Job::global(
            task,
            sub.subtask,
            now,
            sub.ex,
            sub.pex,
            sub.deadline,
            sub.priority,
        );
        self.nodes[sub.node.index()].enqueue(SimTime::new(now), job);
    }

    /// One dispatch round at `node`: admission-policy discards are
    /// accounted first (in discard order), then the started job's
    /// completion is scheduled — the simulator's exact sequence.
    fn dispatch(&mut self, now: f64, node: NodeId) {
        let mut discards = std::mem::take(&mut self.discards);
        let started = dispatch_node(
            &mut self.nodes[node.index()],
            self.preemptive,
            self.overload,
            now,
            &mut discards,
        );
        for job in &discards {
            self.core.job_discarded(now, job);
        }
        self.discards = discards;
        if let Some(job) = started {
            let epoch = self.nodes[node.index()].service_epoch();
            self.schedule(job.service, Ev::ServiceComplete { node, epoch });
        }
    }

    fn handle(&mut self, now: f64, ev: Ev) {
        match ev {
            Ev::Init { warmup_end } => {
                let ids: Vec<NodeId> = self.nodes.iter().map(Node::id).collect();
                for node in ids {
                    self.schedule_next_local(node);
                }
                self.schedule_next_global();
                if warmup_end > 0.0 {
                    self.schedule(warmup_end, Ev::EndWarmup);
                }
            }
            Ev::LocalArrival { node } => {
                let task = self.factory.make_local(node, now);
                let id = self.core.fresh_local_id();
                let job = Job::local(id, now, task.attrs.ex, task.attrs.deadline);
                self.nodes[node.index()].enqueue(SimTime::new(now), job);
                self.schedule_next_local(node);
                self.dispatch(now, node);
            }
            Ev::GlobalArrival => {
                let mut subs = std::mem::take(&mut self.subs);
                let factory = &mut self.factory;
                let id = self.core.admit_global(
                    now,
                    |run| match run {
                        PooledRun::Flat(run) => factory.make_global_flat(now, run),
                        PooledRun::Dag(run) => factory.make_global_dag(now, run),
                    },
                    &mut subs,
                );
                // The simulator's arrival sequence: deliver the initial
                // fan-out, book the next arrival, then dispatch the
                // receiving nodes in submission order.
                for &sub in &subs {
                    self.deliver(now, id, sub);
                }
                self.schedule_next_global();
                for &sub in &subs {
                    self.dispatch(now, sub.node);
                }
                self.subs = subs;
            }
            Ev::ServiceComplete { node, epoch } => {
                if !self.nodes[node.index()].completion_is_current(epoch) {
                    // The job was preempted after this completion was
                    // scheduled; the rescheduled completion (with the
                    // new epoch) is elsewhere in the heap.
                    return;
                }
                let job = self.nodes[node.index()].finish_service(SimTime::new(now));
                match job.origin {
                    JobOrigin::Local { .. } => self.core.local_done(&job, now),
                    JobOrigin::Global { task, .. } => {
                        let mut subs = std::mem::take(&mut self.subs);
                        let outcome = self.core.subtask_done(&job, now, &mut subs);
                        if outcome == SubtaskOutcome::Progressed {
                            for &sub in &subs {
                                self.deliver(now, task, sub);
                            }
                            for &sub in &subs {
                                self.dispatch(now, sub.node);
                            }
                        }
                        self.subs = subs;
                    }
                }
                self.dispatch(now, node);
            }
            Ev::EndWarmup => {
                self.core.reset_warmup();
                for node in &mut self.nodes {
                    node.reset_stats(SimTime::new(now));
                }
            }
        }
    }
}

/// Runs the deadline-assignment service on the logical clock:
/// deterministic, single-threaded, bit-equivalent to
/// [`sda_system::run_once`] on the supported configuration space.
///
/// # Errors
///
/// Returns [`ServiceError::Config`] for invalid workload parameters and
/// [`ServiceError::Unsupported`] when the configuration requires model
/// features the live runtime does not implement: a non-zero
/// [`NetworkModel`](sda_system::NetworkModel), failure injection, or
/// order fuzzing.
pub fn run_logical(config: &SystemConfig, run: &RunConfig) -> Result<ServiceReport, ServiceError> {
    if !config.network.is_zero() {
        return Err(ServiceError::Unsupported(
            "non-zero network model (the service dispatches over in-process channels)",
        ));
    }
    if !matches!(config.failure, FailureModel::None) {
        return Err(ServiceError::Unsupported("failure injection"));
    }
    if run.order_fuzz != 0 {
        return Err(ServiceError::Unsupported("order fuzzing"));
    }
    let rng = RngFactory::new(run.seed);
    let factory = TaskFactory::new(config.workload.clone(), &rng)?;
    let nodes: Vec<Node> = (0..config.workload.nodes)
        .map(|i| Node::new(NodeId::new(i as u32), config.policy))
        .collect();
    let dag_tasks = matches!(config.workload.shape, GlobalShape::Dag { .. });
    let mut svc = LogicalService {
        factory,
        nodes,
        core: ManagerCore::new(config.strategy, dag_tasks),
        preemptive: config.preemptive,
        overload: config.overload,
        clock: LogicalClock::new(),
        heap: BinaryHeap::new(),
        next_seq: 0,
        events: 0,
        subs: Vec::new(),
        discards: Vec::new(),
    };
    svc.schedule(
        0.0,
        Ev::Init {
            warmup_end: run.warmup,
        },
    );
    let horizon = run.warmup + run.duration;
    while let Some(Reverse(top)) = svc.heap.peek() {
        if top.time > horizon {
            break;
        }
        let Reverse(p) = svc.heap.pop().expect("peeked entry pops");
        svc.clock.advance_to(p.time);
        svc.events += 1;
        svc.handle(p.time, p.ev);
    }
    svc.clock.advance_to(horizon);
    let horizon_t = SimTime::new(horizon);
    Ok(ServiceReport {
        result: RunResult {
            metrics: svc.core.metrics().clone(),
            node_utilization: svc.nodes.iter().map(|n| n.utilization(horizon_t)).collect(),
            node_queue_length: svc
                .nodes
                .iter()
                .map(|n| n.mean_queue_length(horizon_t))
                .collect(),
            end_time: svc.clock.now(),
            events: svc.events,
        },
        qos: svc.core.qos().report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::SdaStrategy;
    use sda_system::NetworkModel;

    #[test]
    fn rejects_unsupported_configurations() {
        let run = RunConfig::quick(1);
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.network = NetworkModel::Constant { delay: 0.5 };
        assert!(matches!(
            run_logical(&cfg, &run),
            Err(ServiceError::Unsupported(_))
        ));

        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let mut fuzzed = run;
        fuzzed.order_fuzz = 7;
        assert!(matches!(
            run_logical(&cfg, &fuzzed),
            Err(ServiceError::Unsupported(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let run = RunConfig::quick(42);
        let a = run_logical(&cfg, &run).unwrap();
        let b = run_logical(&cfg, &run).unwrap();
        assert_eq!(a, b);
        let other = run_logical(&cfg, &RunConfig::quick(43)).unwrap();
        assert_ne!(a.result.metrics, other.result.metrics);
    }

    #[test]
    fn qos_totals_are_consistent_with_metrics() {
        let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        let run = RunConfig::quick(7);
        let report = run_logical(&cfg, &run).unwrap();
        let m = &report.result.metrics;
        assert_eq!(report.qos.local.total_count, m.local.missed());
        assert_eq!(report.qos.global.total_count, m.global.missed());
        assert!(m.local.completed() > 1_000, "run produced work");
    }
}
