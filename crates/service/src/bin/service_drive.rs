//! Drives the wall-clock deadline-assignment service and asserts a
//! clean drain — the live counterpart of the simulation smoke runs.
//!
//! ```text
//! service_drive [--tasks N] [--time-scale S] [--seed SEED]
//!               [--warmup-frac F] [--strategy eqf-ud|ud-ud]
//! ```
//!
//! `--tasks` bounds the global-task count (the run horizon is derived
//! from the configured arrival rate so roughly that many arrive);
//! `--time-scale` sets simulated time units per wall second. Exits
//! nonzero with a structured one-line `error: ...` on any failure,
//! including a drain that loses tasks.

use sda_core::SdaStrategy;
use sda_service::wall::{run_wall, WallRunConfig};
use sda_system::SystemConfig;

struct Opts {
    tasks: u64,
    time_scale: f64,
    seed: u64,
    warmup_frac: f64,
    strategy: SdaStrategy,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            tasks: 1_000,
            time_scale: 1_000.0,
            seed: 0x5DA_11FE,
            warmup_frac: 0.0,
            strategy: SdaStrategy::eqf_ud(),
        }
    }
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{what} expects a value"))
                .cloned()
        };
        match flag.as_str() {
            "--tasks" => {
                opts.tasks = value("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
                if opts.tasks == 0 {
                    return Err("--tasks must be at least 1".into());
                }
            }
            "--time-scale" => {
                opts.time_scale = value("--time-scale")?
                    .parse()
                    .map_err(|e| format!("--time-scale: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--warmup-frac" => {
                opts.warmup_frac = value("--warmup-frac")?
                    .parse()
                    .map_err(|e| format!("--warmup-frac: {e}"))?;
                if !(0.0..1.0).contains(&opts.warmup_frac) {
                    return Err("--warmup-frac must be in [0, 1)".into());
                }
            }
            "--strategy" => {
                opts.strategy = match value("--strategy")?.as_str() {
                    "eqf-ud" => SdaStrategy::eqf_ud(),
                    "ud-ud" => SdaStrategy::ud_ud(),
                    other => return Err(format!("--strategy: unknown strategy `{other}`")),
                };
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn usage() -> ! {
    eprintln!(
        "usage: service_drive [--tasks N] [--time-scale S] [--seed SEED] \
         [--warmup-frac F] [--strategy eqf-ud|ud-ud]"
    );
    std::process::exit(2);
}

fn main() {
    #[allow(clippy::disallowed_methods)]
    // sda-lint: allow(banned-api, reason = "service binary entry point: argv is read once into Opts before the service starts")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    let config = SystemConfig::ssp_baseline(opts.strategy);
    // Derive the horizon from the configured global arrival rate so
    // about `--tasks` globals arrive before the submitters close.
    let lambda_global = match sda_workload::TaskFactory::new(
        config.workload.clone(),
        &sda_sim::rng::RngFactory::new(opts.seed),
    ) {
        Ok(factory) => factory.rates().lambda_global,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let duration = opts.tasks as f64 / lambda_global;
    let wall = WallRunConfig {
        warmup: opts.warmup_frac * duration,
        duration,
        seed: opts.seed,
        time_scale: opts.time_scale,
        max_globals: opts.tasks,
        offered: None,
        requested: None,
    };

    match run_wall(&config, &wall) {
        Ok(report) => {
            println!(
                "service_drive: drained submitted_locals={} submitted_globals={} \
                 terminal_locals={} terminal_globals={} lost={} \
                 local_miss={:.2}% global_miss={:.2}% qos_violations={} \
                 sim_time={:.1} wall_seconds={:.2}",
                report.submitted_locals,
                report.submitted_globals,
                report.terminal_locals,
                report.terminal_globals,
                report.lost_tasks(),
                report.metrics.local.miss_percent(),
                report.metrics.global.miss_percent(),
                report.qos.local.total_count + report.qos.global.total_count,
                report.end_time,
                report.wall_seconds,
            );
            if !report.drained_clean() {
                eprintln!(
                    "error: unclean drain: {} submitted tasks never reached a terminal state",
                    report.lost_tasks()
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
