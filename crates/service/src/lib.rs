//! The live deadline-assignment service: the paper's process manager as
//! a runnable runtime instead of a simulation model.
//!
//! Everything below `crates/system` answers "what would the strategies
//! do?" by simulation; this crate answers "what do they do?" by running
//! the same process-manager logic — arrivals, virtual-deadline
//! assignment through the **unchanged**
//! [`DeadlineAssigner`](sda_core::DeadlineAssigner) strategies,
//! precedence bookkeeping, dispatch — against real worker threads on a
//! real clock.
//!
//! # Clock duality
//!
//! Time is abstracted behind the [`Clock`] trait with two
//! implementations:
//!
//! * [`WallClock`] — wall time, scaled so one wall-clock second covers a
//!   configurable number of simulated time units. Drives the
//!   thread-per-worker runtime in [`wall`].
//! * [`LogicalClock`] — a logical clock advanced by an event heap.
//!   Drives the single-threaded runtime in [`logical`], which executes
//!   the *identical* manager logic deterministically. The existing
//!   simulator ([`sda_system::run_once`]) is thereby the service's test
//!   double: on any configuration both support, the logical-clock
//!   service reproduces the simulator's [`RunResult`] bit for bit (see
//!   the `service_equivalence` integration test).
//!
//! # Deadline QoS
//!
//! The [`QosMonitor`] tracks per-class violation statuses in the style
//! of DDS deadline contracts: requested-vs-observed deadline checks,
//! cumulative and incremental violation counts, and a warm-up-resettable
//! EWMA miss ratio. It is a pure observer — the `ADAPT(base)` control
//! loop keeps reading [`Metrics::feedback`](sda_system::Metrics), which
//! both runtimes maintain exactly as the simulator does.
//!
//! [`RunResult`]: sda_system::RunResult

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod clock;
pub mod logical;
mod manager;
pub mod qos;
pub mod wall;

pub use clock::{Clock, LogicalClock, WallClock};
pub use qos::{DeadlineContract, QosMonitor, QosReport, ServiceClass, ViolationStatus};

use sda_workload::ConfigError;

/// Why the service refused to run (or aborted a run).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Invalid workload/system configuration.
    Config(ConfigError),
    /// The configuration asks for a model feature the service runtime
    /// does not implement (the message names it). The simulator under
    /// `crates/system` supports the full model; the live runtime covers
    /// the paper's core space — free communication, no failure
    /// injection.
    Unsupported(&'static str),
    /// The deadline budget a worker offers is laxer than the budget the
    /// submitters request — the QoS contract cannot be satisfied (DDS
    /// deadline-compatibility rule: offered must be ≤ requested).
    IncompatibleContract {
        /// The per-task deadline budget the service offers.
        offered: f64,
        /// The per-task deadline budget the submitters request.
        requested: f64,
    },
    /// A runtime parameter is out of range.
    BadParameter {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "{e}"),
            ServiceError::Unsupported(what) => {
                write!(f, "unsupported by the live service runtime: {what}")
            }
            ServiceError::IncompatibleContract { offered, requested } => write!(
                f,
                "incompatible deadline contract: offered budget {offered} exceeds \
                 requested budget {requested}"
            ),
            ServiceError::BadParameter { what, value } => {
                write!(f, "bad service parameter: {what} = {value}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}
