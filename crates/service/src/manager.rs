//! The process-manager core shared by the logical- and wall-clock
//! runtimes: task admission, virtual-deadline assignment through the
//! unchanged [`DeadlineAssigner`](sda_core::DeadlineAssigner)
//! strategies, precedence bookkeeping,
//! metrics and QoS observation.
//!
//! This is a faithful re-statement of the simulator's
//! `SystemModel` manager logic restricted to the space the live
//! runtime supports (free communication, no failure injection): the
//! order of every metric and feedback mutation matches the simulator's
//! handlers, which is what makes the logical-clock runtime bit-equal to
//! [`sda_system::run_once`].

use sda_core::{DagRun, FlatRun, SdaStrategy, Submission, TaskId};
use sda_sched::{Job, JobOrigin};
use sda_sim::SimTime;
use sda_system::{Metrics, Node, OverloadPolicy};

use crate::qos::{QosMonitor, ServiceClass};

/// The pooled per-task runtime, one variant per configured shape
/// (the service-side counterpart of the simulator's pooled run).
// Same trade-off as the simulator's PooledRun: slots live in a
// long-lived slab and a run only ever holds one variant, so boxing the
// larger one would buy nothing but an indirection per admit/complete.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum PooledRun {
    /// Stage-structured task (serial chains, fans, pipelines of fans).
    Flat(FlatRun),
    /// DAG-structured task (arbitrary fan-out/fan-in).
    Dag(DagRun),
}

impl PooledRun {
    fn set_slack_scale(&mut self, scale: f64) {
        match self {
            PooledRun::Flat(run) => run.set_slack_scale(scale),
            PooledRun::Dag(run) => run.set_slack_scale(scale),
        }
    }

    pub(crate) fn arrival(&self) -> f64 {
        match self {
            PooledRun::Flat(run) => run.arrival(),
            PooledRun::Dag(run) => run.arrival(),
        }
    }

    fn global_deadline(&self) -> f64 {
        match self {
            PooledRun::Flat(run) => run.global_deadline(),
            PooledRun::Dag(run) => run.global_deadline(),
        }
    }

    fn start(&mut self, strategy: &SdaStrategy, now: f64, out: &mut Vec<Submission>) {
        match self {
            PooledRun::Flat(run) => run.start(strategy, now, out),
            PooledRun::Dag(run) => run.start(strategy, now, out),
        }
    }

    fn complete(
        &mut self,
        subtask: sda_core::SubtaskRef,
        strategy: &SdaStrategy,
        now: f64,
        out: &mut Vec<Submission>,
    ) -> bool {
        match self {
            PooledRun::Flat(run) => run.complete(subtask, strategy, now, out),
            PooledRun::Dag(run) => run.complete(subtask, strategy, now, out),
        }
    }
}

/// One slot of the manager's task slab (generation-stamped, recycled).
#[derive(Debug)]
struct TaskSlot {
    gen: u32,
    live: bool,
    run: PooledRun,
    aborted: bool,
    outstanding: u32,
}

/// Packs a slab position into a [`TaskId`]: generation above, slot
/// below — the same packing the simulator uses.
#[inline]
fn global_task_id(gen: u32, slot: u32) -> TaskId {
    TaskId::new((u64::from(gen) << 32) | u64::from(slot))
}

/// What a global subtask completion led to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SubtaskOutcome {
    /// The whole task finished; `missed` is the end-to-end verdict.
    Finished {
        /// Whether the end-to-end deadline was missed.
        missed: bool,
    },
    /// The task continues; the follow-up wave was written to `out`.
    Progressed,
    /// The task was already aborted; the completion was swallowed.
    Swallowed,
}

/// What a discarded job led to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum DiscardOutcome {
    /// A local task was discarded (terminal).
    Local,
    /// The discard aborted its global task (first discard: terminal).
    GlobalAborted,
    /// The global task was already aborted; only the subtask-level
    /// accounting changed.
    GlobalAlreadyDead,
}

/// The process-manager state machine, clock-agnostic.
///
/// Both runtimes drive it the same way: [`admit_global`] on a global
/// arrival, [`local_done`]/[`subtask_done`] on completions,
/// [`job_discarded`] on admission-policy discards, [`reset_warmup`] at
/// the warm-up boundary. All submission waves are written to
/// caller-provided buffers so the caller controls delivery (inline for
/// the logical runtime, channels for the wall runtime).
///
/// [`admit_global`]: ManagerCore::admit_global
/// [`local_done`]: ManagerCore::local_done
/// [`subtask_done`]: ManagerCore::subtask_done
/// [`job_discarded`]: ManagerCore::job_discarded
/// [`reset_warmup`]: ManagerCore::reset_warmup
#[derive(Debug)]
pub(crate) struct ManagerCore {
    strategy: SdaStrategy,
    dag_tasks: bool,
    tasks: Vec<TaskSlot>,
    task_free: Vec<u32>,
    in_flight: usize,
    next_local_id: u64,
    metrics: Metrics,
    qos: QosMonitor,
}

impl ManagerCore {
    pub(crate) fn new(strategy: SdaStrategy, dag_tasks: bool) -> ManagerCore {
        ManagerCore {
            strategy,
            dag_tasks,
            tasks: Vec::new(),
            task_free: Vec::new(),
            in_flight: 0,
            next_local_id: 0,
            metrics: Metrics::new(),
            qos: QosMonitor::new(),
        }
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub(crate) fn qos(&self) -> &QosMonitor {
        &self.qos
    }

    pub(crate) fn tasks_in_flight(&self) -> usize {
        self.in_flight
    }

    /// The `ADAPT(base)` slack-share multiplier for the next stage
    /// activation; exactly `1.0` for open-loop strategies.
    #[inline]
    fn adapt_scale(&self) -> f64 {
        match self.strategy.adapt {
            Some(adapt) => adapt.scale(self.metrics.feedback.pressure()),
            None => 1.0,
        }
    }

    pub(crate) fn fresh_local_id(&mut self) -> TaskId {
        let id = TaskId::new(self.next_local_id);
        self.next_local_id += 1;
        id
    }

    fn acquire_task_slot(&mut self) -> u32 {
        let slot = match self.task_free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.tasks.len())
                    .expect("more than u32::MAX in-flight global tasks");
                self.tasks.push(TaskSlot {
                    gen: 0,
                    live: false,
                    run: if self.dag_tasks {
                        PooledRun::Dag(DagRun::new())
                    } else {
                        PooledRun::Flat(FlatRun::new())
                    },
                    aborted: false,
                    outstanding: 0,
                });
                slot
            }
        };
        let entry = &mut self.tasks[slot as usize];
        debug_assert!(!entry.live, "free list pointed at a live slot");
        entry.live = true;
        entry.aborted = false;
        entry.outstanding = 0;
        self.in_flight += 1;
        slot
    }

    fn release_task_slot(&mut self, slot: usize) {
        let entry = &mut self.tasks[slot];
        debug_assert!(entry.live, "double release of a task slot");
        entry.live = false;
        entry.gen = entry.gen.wrapping_add(1);
        self.task_free.push(slot as u32);
        self.in_flight -= 1;
    }

    #[inline]
    fn lookup_task(&self, id: TaskId) -> Option<usize> {
        let raw = id.raw();
        let slot = (raw & u64::from(u32::MAX)) as usize;
        let gen = (raw >> 32) as u32;
        match self.tasks.get(slot) {
            Some(entry) if entry.live && entry.gen == gen => Some(slot),
            _ => None,
        }
    }

    /// Admits a global task arriving at `now`: claims a slot, fills it
    /// through `fill` (the runtime's workload source), stamps the
    /// adaptive slack scale, runs the strategy's initial decomposition
    /// and writes the initial submission wave to `out`. Free
    /// communication is assumed, so no expected-comm reservation is
    /// stamped (the simulator stamps `0.0` under `NetworkModel::Zero`,
    /// which is the neutral element).
    pub(crate) fn admit_global(
        &mut self,
        now: f64,
        fill: impl FnOnce(&mut PooledRun),
        out: &mut Vec<Submission>,
    ) -> TaskId {
        let scale = self.adapt_scale();
        let slot = self.acquire_task_slot();
        fill(&mut self.tasks[slot as usize].run);
        // Mirror the simulator's arrival sequence exactly: comm stamp
        // (0.0 under free communication), then the feedback stamp.
        match &mut self.tasks[slot as usize].run {
            PooledRun::Flat(run) => run.set_expected_comm(0.0),
            PooledRun::Dag(run) => run.set_expected_comm(0.0),
        }
        self.tasks[slot as usize].run.set_slack_scale(scale);
        let id = global_task_id(self.tasks[slot as usize].gen, slot);
        out.clear();
        let entry = &mut self.tasks[slot as usize];
        entry.run.start(&self.strategy, now, out);
        entry.outstanding = out.len() as u32;
        id
    }

    /// Accounts a completed local job at `now`.
    pub(crate) fn local_done(&mut self, job: &Job, now: f64) {
        debug_assert!(matches!(job.origin, JobOrigin::Local { .. }));
        self.metrics
            .local
            .record(job.enqueue_time, job.deadline, now);
        self.metrics.feedback.observe(now > job.deadline);
        self.qos
            .observe(ServiceClass::Local, now > job.deadline, now);
    }

    /// Accounts a completed global subtask at `now`. On
    /// [`SubtaskOutcome::Progressed`] the follow-up submission wave has
    /// been written to `out` and its jobs are already counted in the
    /// task's outstanding total.
    pub(crate) fn subtask_done(
        &mut self,
        job: &Job,
        now: f64,
        out: &mut Vec<Submission>,
    ) -> SubtaskOutcome {
        let JobOrigin::Global { task, subtask } = job.origin else {
            unreachable!("subtask_done on a local job");
        };
        let virtual_miss = now > job.deadline;
        self.metrics.subtask_virtual_miss.record(virtual_miss);
        self.qos
            .observe(ServiceClass::SubtaskVirtual, virtual_miss, now);
        let Some(slot) = self.lookup_task(task) else {
            debug_assert!(false, "completion for unknown task {task}");
            return SubtaskOutcome::Swallowed;
        };
        let scale = self.adapt_scale();
        let entry = &mut self.tasks[slot];
        entry.outstanding -= 1;
        if entry.aborted {
            if entry.outstanding == 0 {
                self.release_task_slot(slot);
            }
            return SubtaskOutcome::Swallowed;
        }
        // Refresh the feedback stamp so the *next* stage's deadline
        // reflects the current miss pressure.
        entry.run.set_slack_scale(scale);
        out.clear();
        let finished = entry.run.complete(subtask, &self.strategy, now, out);
        if finished {
            // Free communication: the result reaches the process
            // manager instantly, so the task finishes now.
            let (arrival, deadline) = (entry.run.arrival(), entry.run.global_deadline());
            let missed = now > deadline;
            self.metrics.global.record(arrival, deadline, now);
            self.metrics.feedback.observe(missed);
            self.qos.observe(ServiceClass::Global, missed, now);
            self.release_task_slot(slot);
            SubtaskOutcome::Finished { missed }
        } else {
            entry.outstanding += out.len() as u32;
            SubtaskOutcome::Progressed
        }
    }

    /// Accounts a job discarded by the firm-deadline admission policy.
    pub(crate) fn job_discarded(&mut self, now: f64, job: &Job) -> DiscardOutcome {
        match job.origin {
            JobOrigin::Local { .. } => {
                self.metrics.local.record_aborted();
                self.metrics.aborted_locals += 1;
                self.metrics.feedback.observe(true);
                self.qos.observe(ServiceClass::Local, true, now);
                DiscardOutcome::Local
            }
            JobOrigin::Global { task, .. } => {
                self.metrics.subtask_virtual_miss.record(true);
                self.qos.observe(ServiceClass::SubtaskVirtual, true, now);
                let Some(slot) = self.lookup_task(task) else {
                    return DiscardOutcome::GlobalAlreadyDead;
                };
                let entry = &mut self.tasks[slot];
                entry.outstanding -= 1;
                let outstanding = entry.outstanding;
                let outcome = if !entry.aborted {
                    entry.aborted = true;
                    self.metrics.global.record_aborted();
                    self.metrics.aborted_globals += 1;
                    self.metrics.feedback.observe(true);
                    self.qos.observe(ServiceClass::Global, true, now);
                    DiscardOutcome::GlobalAborted
                } else {
                    DiscardOutcome::GlobalAlreadyDead
                };
                if outstanding == 0 {
                    self.release_task_slot(slot);
                }
                outcome
            }
        }
    }

    /// Warm-up deletion: metrics restart (feedback control state
    /// survives, exactly as in the simulator), QoS statistics restart.
    pub(crate) fn reset_warmup(&mut self) {
        self.metrics.reset();
        self.qos.reset_statistics();
    }
}

/// One dispatch round at `node`, shared verbatim between the logical
/// driver and the wall workers: preempt if the queue head outranks the
/// running job (preemptive mode), then start the next job subject to
/// the overload policy. Discarded jobs are written to `discards` and
/// **must** be accounted (in order) *before* the returned job's
/// completion is scheduled — the simulator processes them in that
/// order, and the discard accounting can mutate feedback the next
/// dispatch reads.
pub(crate) fn dispatch_node(
    node: &mut Node,
    preemptive: bool,
    overload: OverloadPolicy,
    now: f64,
    discards: &mut Vec<Job>,
) -> Option<Job> {
    let now_t = SimTime::new(now);
    if preemptive && node.should_preempt() {
        node.preempt_requeue(now_t);
    }
    match overload {
        OverloadPolicy::NoAbort => node.try_start(now_t),
        OverloadPolicy::AbortTardy => {
            discards.clear();
            node.try_start_with_admission(now_t, |j| !j.is_tardy(now), discards)
        }
    }
}
