//! The clock abstraction that makes the simulator the live runtime's
//! test double: one manager/worker code path, two time sources.

use std::cell::Cell;
use std::time::Duration;

/// A monotonically advancing clock measured in simulated time units.
///
/// `0.0` is the service start. Implementations must be monotone: `now`
/// never decreases, and `sleep_until` returns with `now() >= t`.
pub trait Clock {
    /// The current time, in simulated time units since service start.
    fn now(&self) -> f64;

    /// Blocks (or logically advances) until the clock reads at least
    /// `t`. A target at or before [`Clock::now`] returns immediately —
    /// sleeping never moves time backwards.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    fn sleep_until(&self, t: f64);

    /// Blocks (or logically advances) for `dt` time units.
    ///
    /// Rejects invalid durations with the same contract as
    /// [`Context::schedule_in`](sda_sim::Context::schedule_in): `dt`
    /// must be finite and non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is NaN, negative, or infinite, with the exact
    /// message the simulator's scheduler uses.
    fn sleep(&self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "delay must be finite and non-negative, got {dt}"
        );
        self.sleep_until(self.now() + dt);
    }
}

/// Wall time, linearly mapped to simulated time units.
///
/// `time_scale` simulated time units elapse per wall-clock second, so a
/// run that simulates 10 000 units at `time_scale = 1000` takes ten
/// real seconds. The mapping is anchored at construction time.
#[derive(Debug, Clone)]
pub struct WallClock {
    // Wall-clock anchoring is this type's entire purpose; every other
    // crate in the deterministic tier stays Instant-free.
    #[allow(clippy::disallowed_types)]
    // sda-lint: allow(banned-api, reason = "WallClock is the audited wall-time boundary: the one place real time enters, behind the Clock trait")
    origin: std::time::Instant,
    scale: f64,
}

impl WallClock {
    /// A wall clock starting now, with `time_scale` simulated time units
    /// per wall-clock second.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadParameter`](crate::ServiceError) if
    /// `time_scale` is not finite and positive.
    pub fn new(time_scale: f64) -> Result<WallClock, crate::ServiceError> {
        if !time_scale.is_finite() || time_scale <= 0.0 {
            return Err(crate::ServiceError::BadParameter {
                what: "time_scale",
                value: time_scale,
            });
        }
        Ok(WallClock {
            #[allow(clippy::disallowed_types)]
            // sda-lint: allow(banned-api, reason = "WallClock is the audited wall-time boundary: the one place real time enters, behind the Clock trait")
            origin: std::time::Instant::now(),
            scale: time_scale,
        })
    }

    /// Simulated time units per wall-clock second.
    pub fn time_scale(&self) -> f64 {
        self.scale
    }

    /// The wall-clock duration from now until simulated time `t`
    /// (zero if `t` is already past).
    pub fn duration_until(&self, t: f64) -> Duration {
        assert!(!t.is_nan(), "sleep target must not be NaN");
        let dt = (t - self.now()) / self.scale;
        if dt <= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(dt)
        }
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * self.scale
    }

    fn sleep_until(&self, t: f64) {
        assert!(!t.is_nan(), "sleep target must not be NaN");
        loop {
            let remaining = self.duration_until(t);
            if remaining.is_zero() {
                return;
            }
            std::thread::sleep(remaining);
        }
    }
}

/// A logical clock: time advances only when the owner says so.
///
/// This is the deterministic [`Clock`]: the logical-clock runtime
/// ([`crate::logical`]) advances it to each popped event's timestamp,
/// reproducing the simulator's notion of "now" exactly. Sleeping costs
/// nothing — it just moves the clock.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: Cell<f64>,
}

impl LogicalClock {
    /// A logical clock at time zero.
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Advances the clock to `t` (no-op if `t` is already past);
    /// the monotonic counterpart of an event pop.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    pub fn advance_to(&self, t: f64) {
        assert!(!t.is_nan(), "sleep target must not be NaN");
        if t > self.now.get() {
            self.now.set(t);
        }
    }
}

impl Clock for LogicalClock {
    fn now(&self) -> f64 {
        self.now.get()
    }

    fn sleep_until(&self, t: f64) {
        self.advance_to(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_advances_monotonically() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0.0);
        c.sleep(5.0);
        assert_eq!(c.now(), 5.0);
        c.sleep_until(3.0); // backwards target: no-op
        assert_eq!(c.now(), 5.0);
        c.sleep(0.0);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn wall_clock_tracks_real_time_scaled() {
        let c = WallClock::new(1000.0).unwrap();
        let before = c.now();
        c.sleep(20.0); // 20 sim units = 20 ms wall
        let after = c.now();
        assert!(after >= before + 20.0, "slept {before} -> {after}");
    }

    #[test]
    fn wall_clock_rejects_bad_time_scale() {
        assert!(WallClock::new(0.0).is_err());
        assert!(WallClock::new(-1.0).is_err());
        assert!(WallClock::new(f64::NAN).is_err());
        assert!(WallClock::new(f64::INFINITY).is_err());
    }

    /// The panic message a [`Clock::sleep`] misuse produces, for exact
    /// comparison against the simulator's scheduler contract.
    fn sleep_panic_message(clock: &dyn Clock, dt: f64) -> String {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clock.sleep(dt)))
            .expect_err("sleep must panic");
        match caught.downcast::<String>() {
            Ok(s) => *s,
            Err(other) => *other
                .downcast::<&'static str>()
                .map(|s| Box::new((*s).to_owned()))
                .expect("panic payload is a string"),
        }
    }

    /// The message `Context::schedule_in` produces for the same invalid
    /// delay (pinned by `sda_sim`'s own tests; reproduced here verbatim
    /// so the two contracts cannot drift apart silently).
    fn simulator_message(dt: f64) -> String {
        format!("delay must be finite and non-negative, got {dt}")
    }

    #[test]
    fn sleep_rejects_invalid_delays_exactly_like_the_simulator() {
        let wall = WallClock::new(1000.0).unwrap();
        let logical = LogicalClock::new();
        for bad in [f64::NAN, -1.0, -f64::MIN_POSITIVE, f64::INFINITY] {
            assert_eq!(sleep_panic_message(&wall, bad), simulator_message(bad));
            assert_eq!(sleep_panic_message(&logical, bad), simulator_message(bad));
        }
    }

    #[test]
    fn simulator_rejects_the_same_delays_with_the_same_message() {
        // The other half of the parity pin: drive the real scheduler
        // into the same assertion and compare messages.
        use sda_sim::{Context, Engine, SimTime, Simulation};
        struct Probe {
            bad: f64,
        }
        impl Simulation for Probe {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<()>, _event: ()) {
                let dt = self.bad;
                ctx.schedule_in(dt, ());
            }
        }
        for bad in [f64::NAN, -1.0, f64::INFINITY] {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut e = Engine::new(Probe { bad });
                e.context_mut().schedule_at(SimTime::ZERO, ());
                e.run_until(SimTime::from(1.0));
            }))
            .expect_err("schedule_in must panic");
            let msg = match caught.downcast::<String>() {
                Ok(s) => *s,
                Err(other) => (*other
                    .downcast::<&'static str>()
                    .expect("panic payload is a string"))
                .to_owned(),
            };
            assert_eq!(msg, simulator_message(bad));
        }
    }
}
