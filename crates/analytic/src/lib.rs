#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Closed-form queueing theory cross-validating the simulator.
//!
//! This crate is a simulation-free oracle for `sda`: exact M/M/1 and
//! M/M/c steady-state results ([`queue`]), an Allen–Cunneen G/G/c
//! approximation for the non-exponential service variants ([`ggc`]),
//! and an end-to-end predictor ([`predict()`]) that composes per-node
//! queues along the global-task pipeline — including
//! `NetworkModel::expected_hop_delay` terms — into predicted response
//! moments and miss ratios for a full
//! [`SystemConfig`](sda_system::SystemConfig).
//!
//! Three consumers:
//!
//! * the **validation harness** (`tests/analytic_validation.rs` at the
//!   workspace root) runs seeded replicated simulations on
//!   configurations where the theory is exact and asserts agreement
//!   within the replication confidence half-width;
//! * the **analytic screen** (`--screen` on every sweep binary) prunes
//!   sweep grid points whose predicted miss ratio is decisively
//!   uninteresting, concentrating replications on the contested region;
//! * property tests inside this crate pin the formulas against
//!   independent oracles (birth–death stationary distributions,
//!   Pollaczek–Khinchine, Poisson sums for the incomplete gamma).
//!
//! Everything here is deterministic, dependency-free arithmetic: no
//! RNG, no sampling, no simulation.

pub mod ggc;
pub mod predict;
pub mod queue;
pub mod special;

pub use ggc::GgcApprox;
pub use predict::{predict, NodePrediction, PredictError, Prediction};
pub use queue::{Mm1, Mmc, TheoryError};
