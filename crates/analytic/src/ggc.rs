//! Allen–Cunneen-style G/G/c approximation.
//!
//! The mean wait of a G/G/c queue is approximated by scaling the exact
//! M/M/c mean wait by `(ca2 + cs2) / 2`, where `ca2`/`cs2` are the
//! squared coefficients of variation of the inter-arrival and service
//! distributions. For Poisson arrivals at `c = 1` this is the exact
//! Pollaczek–Khinchine mean; at `ca2 = cs2 = 1` it collapses to the
//! exact M/M/c result.
//!
//! The waiting-time *distribution* is approximated as a point mass at
//! zero plus an exponential tail whose rate `r` is fitted so that the
//! conditional mean matches: `P[W > t] = p_wait e^{-r t}` with
//! `r = p_wait / mean_wait`.

use crate::queue::{uniform_slack_miss, Mmc, TheoryError};

/// G/G/c approximation built on an exact [`Mmc`] backbone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GgcApprox {
    mmc: Mmc,
    ca2: f64,
    cs2: f64,
}

impl GgcApprox {
    /// Build a G/G/c approximation for arrival rate `lambda`, service
    /// rate `mu` per server, `servers` servers, and squared
    /// coefficients of variation `ca2` (inter-arrival) and `cs2`
    /// (service). Errors on invalid parameters or `rho >= 1`.
    pub fn new(
        lambda: f64,
        mu: f64,
        servers: u32,
        ca2: f64,
        cs2: f64,
    ) -> Result<Self, TheoryError> {
        if !ca2.is_finite() || ca2 < 0.0 {
            return Err(TheoryError::BadParameter {
                what: "ca2",
                value: ca2,
            });
        }
        if !cs2.is_finite() || cs2 < 0.0 {
            return Err(TheoryError::BadParameter {
                what: "cs2",
                value: cs2,
            });
        }
        Ok(GgcApprox {
            mmc: Mmc::new(lambda, mu, servers)?,
            ca2,
            cs2,
        })
    }

    /// The exact M/M/c backbone this approximation scales.
    pub fn backbone(&self) -> &Mmc {
        &self.mmc
    }

    /// Variability scaling factor `(ca2 + cs2) / 2`.
    pub fn variability_factor(&self) -> f64 {
        (self.ca2 + self.cs2) / 2.0
    }

    /// Per-server utilization (same as the backbone).
    pub fn utilization(&self) -> f64 {
        self.mmc.utilization()
    }

    /// Probability of waiting; the Erlang-C value is kept unscaled.
    pub fn p_wait(&self) -> f64 {
        self.mmc.p_wait()
    }

    /// Approximate mean wait `Wq(M/M/c) * (ca2 + cs2) / 2`.
    pub fn mean_wait(&self) -> f64 {
        self.mmc.mean_wait() * self.variability_factor()
    }

    /// Fitted exponential tail rate `r = p_wait / mean_wait`, so that
    /// `E[W] = p_wait / r` matches the Allen–Cunneen mean. Returns
    /// `f64::INFINITY` when the mean wait is zero (degenerate traffic).
    pub fn tail_rate(&self) -> f64 {
        let w = self.mean_wait();
        if w > 0.0 {
            self.p_wait() / w
        } else {
            f64::INFINITY
        }
    }

    /// Approximate waiting-time variance under the exponential-tail
    /// fit: `E[W^2] = 2 p / r^2`, so `Var = 2p/r^2 - (p/r)^2`.
    pub fn wait_variance(&self) -> f64 {
        let p = self.p_wait();
        let r = self.tail_rate();
        if !r.is_finite() {
            return 0.0;
        }
        2.0 * p / (r * r) - (p / r) * (p / r)
    }

    /// Approximate mean queue length via Little's law,
    /// `Lq = lambda * Wq`.
    pub fn mean_queue(&self) -> f64 {
        self.mmc.mean_queue() * self.variability_factor()
    }

    /// Approximate waiting-time tail `P[W > t] = p_wait e^{-r t}`.
    pub fn wait_tail(&self, t: f64) -> f64 {
        let r = self.tail_rate();
        if !r.is_finite() {
            return 0.0;
        }
        self.p_wait() * (-r * t).exp()
    }

    /// Deadline-miss probability for `deadline = arrival + service +
    /// slack` with `slack ~ U[lo, hi]`: `p_wait E[e^{-r slack}]`.
    pub fn miss_ratio_uniform_slack(&self, lo: f64, hi: f64) -> f64 {
        let r = self.tail_rate();
        if !r.is_finite() {
            return 0.0;
        }
        uniform_slack_miss(self.p_wait(), r, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn collapses_to_exact_mmc_at_scv_one() {
        for &(lambda, mu, c) in &[(0.5, 1.0, 1u32), (2.4, 1.0, 3), (5.6, 1.0, 8)] {
            let exact = Mmc::new(lambda, mu, c).unwrap();
            let approx = GgcApprox::new(lambda, mu, c, 1.0, 1.0).unwrap();
            assert!((approx.mean_wait() - exact.mean_wait()).abs() < TOL);
            assert!((approx.wait_variance() - exact.wait_variance()).abs() < TOL);
            assert!((approx.mean_queue() - exact.mean_queue()).abs() < TOL);
            assert!((approx.tail_rate() - exact.theta()).abs() < 1e-9);
            for &t in &[0.0, 0.7, 3.0] {
                assert!((approx.wait_tail(t) - exact.wait_tail(t)).abs() < TOL);
            }
            for &(lo, hi) in &[(0.0, 0.0), (0.25, 2.5)] {
                assert!(
                    (approx.miss_ratio_uniform_slack(lo, hi)
                        - exact.miss_ratio_uniform_slack(lo, hi))
                    .abs()
                        < TOL
                );
            }
        }
    }

    #[test]
    fn matches_pollaczek_khinchine_at_c1_poisson() {
        // M/G/1: Wq = lambda E[S^2] / (2 (1 - rho)) with
        // E[S^2] = m^2 (1 + cs2).
        for &cs2 in &[0.0, 0.25, 1.0, 4.0] {
            let (lambda, mean_s) = (0.6, 1.0);
            let q = GgcApprox::new(lambda, 1.0 / mean_s, 1, 1.0, cs2).unwrap();
            let es2 = mean_s * mean_s * (1.0 + cs2);
            let pk = lambda * es2 / (2.0 * (1.0 - lambda * mean_s));
            assert!(
                (q.mean_wait() - pk).abs() < TOL,
                "PK mismatch at cs2={cs2}: {} vs {pk}",
                q.mean_wait()
            );
        }
    }

    #[test]
    fn lower_variability_means_less_waiting() {
        let det = GgcApprox::new(2.4, 1.0, 3, 1.0, 0.0).unwrap();
        let exp = GgcApprox::new(2.4, 1.0, 3, 1.0, 1.0).unwrap();
        let hyper = GgcApprox::new(2.4, 1.0, 3, 1.0, 4.0).unwrap();
        assert!(det.mean_wait() < exp.mean_wait());
        assert!(exp.mean_wait() < hyper.mean_wait());
        assert!(
            det.miss_ratio_uniform_slack(0.25, 2.5) < hyper.miss_ratio_uniform_slack(0.25, 2.5)
        );
    }

    #[test]
    fn degenerate_zero_variability_has_zero_wait() {
        // ca2 = cs2 = 0 (D/D/c below capacity): no queueing.
        let q = GgcApprox::new(0.5, 1.0, 1, 0.0, 0.0).unwrap();
        assert!(q.mean_wait().abs() < TOL);
        assert!(q.wait_variance().abs() < TOL);
        assert!(q.wait_tail(0.1) < TOL);
        assert!(q.miss_ratio_uniform_slack(0.0, 1.0) < TOL);
    }

    #[test]
    fn rejects_bad_scv() {
        assert!(GgcApprox::new(0.5, 1.0, 1, -1.0, 1.0).is_err());
        assert!(GgcApprox::new(0.5, 1.0, 1, 1.0, f64::NAN).is_err());
        assert!(GgcApprox::new(2.0, 1.0, 2, 1.0, 1.0).is_err());
    }
}
