//! Allen–Cunneen-style G/G/c approximation.
//!
//! The mean wait of a G/G/c queue is approximated by scaling the exact
//! M/M/c mean wait by `(ca2 + cs2) / 2`, where `ca2`/`cs2` are the
//! squared coefficients of variation of the inter-arrival and service
//! distributions. For Poisson arrivals at `c = 1` this is the exact
//! Pollaczek–Khinchine mean; at `ca2 = cs2 = 1` it collapses to the
//! exact M/M/c result.
//!
//! The waiting-time *distribution* is approximated as a point mass at
//! zero plus an exponential tail whose rate `r` is fitted so that the
//! conditional mean matches: `P[W > t] = p_wait e^{-r t}` with
//! `r = p_wait / mean_wait`.
//!
//! # M/G/1 two-moment refinement
//!
//! When the third moment of the service time is supplied via
//! [`GgcApprox::with_service_third_moment`] (Poisson arrivals, one
//! server — the exact M/G/1 regime), the one-moment exponential tail is
//! upgraded to a **gamma tail matched on two moments**: the second
//! waiting moment comes from the exact Takács recursion
//! `E[W²] = 2 Wq² + λ E[S³] / (3 (1 − ρ))`, the conditional (given
//! `W > 0`) mean and variance are fitted by a gamma distribution, and
//! `P[W > t] = p_wait · Q(k, t/θ)` with `Q` the regularized upper
//! incomplete gamma. For exponential service the fit recovers `k = 1`
//! and collapses to the exact M/M/1 tail; without a registered third
//! moment every result is bit-identical to the plain Allen–Cunneen
//! fit.

use crate::queue::{uniform_slack_miss, Mmc, TheoryError};
use crate::special::{gamma_q, mean_over_uniform};

/// Below this distance from `k = 1` the gamma fit is replaced by the
/// (then exact, and cheaper) exponential tail.
const EXP_SHAPE_EPS: f64 = 1e-9;

/// G/G/c approximation built on an exact [`Mmc`] backbone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GgcApprox {
    mmc: Mmc,
    ca2: f64,
    cs2: f64,
    /// Third raw moment of the service time, `E[S³]`; enables the
    /// Takács/gamma tail refinement (M/G/1 only).
    es3: Option<f64>,
}

impl GgcApprox {
    /// Build a G/G/c approximation for arrival rate `lambda`, service
    /// rate `mu` per server, `servers` servers, and squared
    /// coefficients of variation `ca2` (inter-arrival) and `cs2`
    /// (service). Errors on invalid parameters or `rho >= 1`.
    pub fn new(
        lambda: f64,
        mu: f64,
        servers: u32,
        ca2: f64,
        cs2: f64,
    ) -> Result<Self, TheoryError> {
        if !ca2.is_finite() || ca2 < 0.0 {
            return Err(TheoryError::BadParameter {
                what: "ca2",
                value: ca2,
            });
        }
        if !cs2.is_finite() || cs2 < 0.0 {
            return Err(TheoryError::BadParameter {
                what: "cs2",
                value: cs2,
            });
        }
        Ok(GgcApprox {
            mmc: Mmc::new(lambda, mu, servers)?,
            ca2,
            cs2,
            es3: None,
        })
    }

    /// Registers the third raw service moment `E[S³]`, upgrading the
    /// exponential waiting tail to a gamma tail matched on the exact
    /// Takács second waiting moment. Only meaningful — and only
    /// accepted — in the M/G/1 regime (`servers == 1`, `ca2 == 1`),
    /// where the Pollaczek–Khinchine/Takács formulas are exact.
    ///
    /// # Errors
    ///
    /// [`TheoryError::BadParameter`] if the model is not M/G/1 or the
    /// moment is not finite and positive.
    pub fn with_service_third_moment(mut self, es3: f64) -> Result<Self, TheoryError> {
        if self.mmc.servers() != 1 || self.ca2 != 1.0 {
            return Err(TheoryError::BadParameter {
                what: "es3 (third-moment refinement requires M/G/1)",
                value: es3,
            });
        }
        if !es3.is_finite() || es3 <= 0.0 {
            return Err(TheoryError::BadParameter {
                what: "es3",
                value: es3,
            });
        }
        self.es3 = Some(es3);
        Ok(self)
    }

    /// The exact M/M/c backbone this approximation scales.
    pub fn backbone(&self) -> &Mmc {
        &self.mmc
    }

    /// Variability scaling factor `(ca2 + cs2) / 2`.
    pub fn variability_factor(&self) -> f64 {
        (self.ca2 + self.cs2) / 2.0
    }

    /// Per-server utilization (same as the backbone).
    pub fn utilization(&self) -> f64 {
        self.mmc.utilization()
    }

    /// Probability of waiting; the Erlang-C value is kept unscaled.
    pub fn p_wait(&self) -> f64 {
        self.mmc.p_wait()
    }

    /// Approximate mean wait `Wq(M/M/c) * (ca2 + cs2) / 2`.
    pub fn mean_wait(&self) -> f64 {
        self.mmc.mean_wait() * self.variability_factor()
    }

    /// Fitted exponential tail rate `r = p_wait / mean_wait`, so that
    /// `E[W] = p_wait / r` matches the Allen–Cunneen mean. Returns
    /// `f64::INFINITY` when the mean wait is zero (degenerate traffic).
    pub fn tail_rate(&self) -> f64 {
        let w = self.mean_wait();
        if w > 0.0 {
            self.p_wait() / w
        } else {
            f64::INFINITY
        }
    }

    /// The second raw moment of the waiting time. With a registered
    /// service third moment (M/G/1) this is the exact Takács value
    /// `E[W²] = 2 Wq² + λ E[S³] / (3 (1 − ρ))`; otherwise it is the
    /// moment implied by the fitted exponential tail, `2 p / r²`.
    pub fn wait_second_moment(&self) -> f64 {
        match self.es3 {
            Some(es3) => {
                let wq = self.mean_wait();
                2.0 * wq * wq + self.mmc.lambda() * es3 / (3.0 * (1.0 - self.mmc.utilization()))
            }
            None => {
                let r = self.tail_rate();
                if !r.is_finite() {
                    return 0.0;
                }
                2.0 * self.p_wait() / (r * r)
            }
        }
    }

    /// Approximate waiting-time variance, `E[W²] - Wq²` (exact Takács
    /// second moment when a service third moment is registered, the
    /// exponential-fit moment otherwise).
    pub fn wait_variance(&self) -> f64 {
        let w = self.mean_wait();
        self.wait_second_moment() - w * w
    }

    /// The gamma parameters `(shape k, scale θ)` of the conditional
    /// (given `W > 0`) waiting time, when the two-moment refinement is
    /// active and does not degenerate to the exponential tail.
    fn gamma_fit(&self) -> Option<(f64, f64)> {
        self.es3?;
        let p = self.p_wait();
        let w = self.mean_wait();
        if p <= 0.0 || w <= 0.0 {
            return None;
        }
        let mean_c = w / p;
        let var_c = self.wait_second_moment() / p - mean_c * mean_c;
        if !var_c.is_finite() || var_c <= 0.0 {
            return None;
        }
        let k = mean_c * mean_c / var_c;
        if !k.is_finite() || (k - 1.0).abs() < EXP_SHAPE_EPS {
            // Exponential service (or indistinguishable from it): the
            // plain exponential tail is exact and cheaper.
            return None;
        }
        Some((k, var_c / mean_c))
    }

    /// Approximate mean queue length via Little's law,
    /// `Lq = lambda * Wq`.
    pub fn mean_queue(&self) -> f64 {
        self.mmc.mean_queue() * self.variability_factor()
    }

    /// Approximate waiting-time tail: `p_wait · Q(k, t/θ)` under the
    /// gamma fit, `p_wait e^{-r t}` under the exponential fallback.
    pub fn wait_tail(&self, t: f64) -> f64 {
        if let Some((k, theta)) = self.gamma_fit() {
            if t <= 0.0 {
                return self.p_wait();
            }
            return self.p_wait() * gamma_q(k, t / theta);
        }
        let r = self.tail_rate();
        if !r.is_finite() {
            return 0.0;
        }
        self.p_wait() * (-r * t).exp()
    }

    /// Deadline-miss probability for `deadline = arrival + service +
    /// slack` with `slack ~ U[lo, hi]`: `E[P[W > slack]]` — in closed
    /// form for the exponential tail, by quadrature for the gamma
    /// tail.
    pub fn miss_ratio_uniform_slack(&self, lo: f64, hi: f64) -> f64 {
        if self.gamma_fit().is_some() {
            return mean_over_uniform(lo, hi, |u| self.wait_tail(u));
        }
        let r = self.tail_rate();
        if !r.is_finite() {
            return 0.0;
        }
        uniform_slack_miss(self.p_wait(), r, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn collapses_to_exact_mmc_at_scv_one() {
        for &(lambda, mu, c) in &[(0.5, 1.0, 1u32), (2.4, 1.0, 3), (5.6, 1.0, 8)] {
            let exact = Mmc::new(lambda, mu, c).unwrap();
            let approx = GgcApprox::new(lambda, mu, c, 1.0, 1.0).unwrap();
            assert!((approx.mean_wait() - exact.mean_wait()).abs() < TOL);
            assert!((approx.wait_variance() - exact.wait_variance()).abs() < TOL);
            assert!((approx.mean_queue() - exact.mean_queue()).abs() < TOL);
            assert!((approx.tail_rate() - exact.theta()).abs() < 1e-9);
            for &t in &[0.0, 0.7, 3.0] {
                assert!((approx.wait_tail(t) - exact.wait_tail(t)).abs() < TOL);
            }
            for &(lo, hi) in &[(0.0, 0.0), (0.25, 2.5)] {
                assert!(
                    (approx.miss_ratio_uniform_slack(lo, hi)
                        - exact.miss_ratio_uniform_slack(lo, hi))
                    .abs()
                        < TOL
                );
            }
        }
    }

    #[test]
    fn matches_pollaczek_khinchine_at_c1_poisson() {
        // M/G/1: Wq = lambda E[S^2] / (2 (1 - rho)) with
        // E[S^2] = m^2 (1 + cs2).
        for &cs2 in &[0.0, 0.25, 1.0, 4.0] {
            let (lambda, mean_s) = (0.6, 1.0);
            let q = GgcApprox::new(lambda, 1.0 / mean_s, 1, 1.0, cs2).unwrap();
            let es2 = mean_s * mean_s * (1.0 + cs2);
            let pk = lambda * es2 / (2.0 * (1.0 - lambda * mean_s));
            assert!(
                (q.mean_wait() - pk).abs() < TOL,
                "PK mismatch at cs2={cs2}: {} vs {pk}",
                q.mean_wait()
            );
        }
    }

    #[test]
    fn lower_variability_means_less_waiting() {
        let det = GgcApprox::new(2.4, 1.0, 3, 1.0, 0.0).unwrap();
        let exp = GgcApprox::new(2.4, 1.0, 3, 1.0, 1.0).unwrap();
        let hyper = GgcApprox::new(2.4, 1.0, 3, 1.0, 4.0).unwrap();
        assert!(det.mean_wait() < exp.mean_wait());
        assert!(exp.mean_wait() < hyper.mean_wait());
        assert!(
            det.miss_ratio_uniform_slack(0.25, 2.5) < hyper.miss_ratio_uniform_slack(0.25, 2.5)
        );
    }

    #[test]
    fn degenerate_zero_variability_has_zero_wait() {
        // ca2 = cs2 = 0 (D/D/c below capacity): no queueing.
        let q = GgcApprox::new(0.5, 1.0, 1, 0.0, 0.0).unwrap();
        assert!(q.mean_wait().abs() < TOL);
        assert!(q.wait_variance().abs() < TOL);
        assert!(q.wait_tail(0.1) < TOL);
        assert!(q.miss_ratio_uniform_slack(0.0, 1.0) < TOL);
    }

    #[test]
    fn rejects_bad_scv() {
        assert!(GgcApprox::new(0.5, 1.0, 1, -1.0, 1.0).is_err());
        assert!(GgcApprox::new(0.5, 1.0, 1, 1.0, f64::NAN).is_err());
        assert!(GgcApprox::new(2.0, 1.0, 2, 1.0, 1.0).is_err());
    }

    #[test]
    fn third_moment_refinement_is_mg1_only() {
        // Multi-server or non-Poisson models have no exact Takács
        // moment; the builder refuses rather than silently degrading.
        assert!(GgcApprox::new(2.4, 1.0, 3, 1.0, 1.0)
            .unwrap()
            .with_service_third_moment(6.0)
            .is_err());
        assert!(GgcApprox::new(0.5, 1.0, 1, 0.5, 1.0)
            .unwrap()
            .with_service_third_moment(6.0)
            .is_err());
        let q = GgcApprox::new(0.5, 1.0, 1, 1.0, 1.0).unwrap();
        assert!(q.with_service_third_moment(0.0).is_err());
        assert!(q.with_service_third_moment(f64::NAN).is_err());
    }

    #[test]
    fn exponential_third_moment_recovers_the_exact_mm1_tail() {
        // Exp(mu) service: E[S³] = 6/mu³. The gamma fit must find
        // k = 1 and collapse to the plain (exact) exponential tail,
        // bit for bit.
        let plain = GgcApprox::new(0.6, 1.0, 1, 1.0, 1.0).unwrap();
        let refined = plain.with_service_third_moment(6.0).unwrap();
        assert_eq!(refined.mean_wait(), plain.mean_wait());
        for &t in &[0.0, 0.5, 2.0, 10.0] {
            assert_eq!(refined.wait_tail(t), plain.wait_tail(t));
        }
        assert_eq!(
            refined.miss_ratio_uniform_slack(0.25, 2.5),
            plain.miss_ratio_uniform_slack(0.25, 2.5)
        );
        // The Takács second moment agrees with the exponential one for
        // exponential service: 2 rho / theta².
        let theta = 1.0 - 0.6;
        assert!((refined.wait_second_moment() - 2.0 * 0.6 / (theta * theta)).abs() < TOL);
    }

    #[test]
    fn gamma_tail_preserves_the_pk_moments() {
        // Erlang-4 service at rho = 0.6: E[S³] = m³ (k+1)(k+2)/k² with
        // k = 4. The gamma-matched tail must integrate back to the
        // exact PK mean wait and Takács second moment.
        let (lambda, m) = (0.6, 1.0);
        let es3 = m * m * m * 30.0 / 16.0;
        let q = GgcApprox::new(lambda, 1.0 / m, 1, 1.0, 0.25)
            .unwrap()
            .with_service_third_moment(es3)
            .unwrap();
        // Takács reference by hand.
        let wq = q.mean_wait();
        let ew2 = 2.0 * wq * wq + lambda * es3 / (3.0 * (1.0 - 0.6));
        assert!((q.wait_second_moment() - ew2).abs() < TOL);
        // Trapezoid integration of the fitted tail: ∫ P[W>t] dt = Wq
        // and ∫ 2t P[W>t] dt = E[W²].
        let (h, n) = (1e-3, 60_000);
        let (mut m1, mut m2) = (0.0, 0.0);
        for i in 0..n {
            let t = h * (i as f64 + 0.5);
            let tail = q.wait_tail(t);
            m1 += h * tail;
            m2 += h * 2.0 * t * tail;
        }
        assert!((m1 - wq).abs() < 1e-6, "mean {m1} vs {wq}");
        assert!((m2 - ew2).abs() < 1e-5, "second moment {m2} vs {ew2}");
        // Low-variability service ⇒ the refined tail sits below the
        // one-moment exponential fit far out.
        let plain = GgcApprox::new(lambda, 1.0 / m, 1, 1.0, 0.25).unwrap();
        assert!(q.wait_tail(8.0) < plain.wait_tail(8.0));
    }
}
