//! End-to-end prediction for a full [`SystemConfig`]: per-node G/G/1
//! queues composed along the global-task pipeline.
//!
//! # Model
//!
//! Each node is a single-server queue fed by two Poisson classes: its
//! local stream (rate from `local_weights`) and its share of global
//! subtasks (uniform placement). The mixed service distribution's mean
//! and SCV are computed exactly from the configured
//! [`ServiceVariability`](sda_workload::ServiceVariability) and the
//! node's speed factor, then fed to the Allen–Cunneen
//! [`GgcApprox`] (exact M/M/1 when service is
//! exponential and speeds are uniform).
//!
//! The simulator draws deadlines from *actual* execution times
//! (`dl = ar + ex + slack` locally; `dl = ar + critical_path_ex +
//! u * factor` globally), so execution time cancels out of the miss
//! condition: a local task misses iff its wait exceeds its slack draw,
//! and a serial global task misses iff the sum of its per-stage waits
//! plus network delays exceeds `u * factor`. The global delay sum is
//! approximated by a gamma distribution matched to its predicted mean
//! and variance (normal tail for very large shape), averaged over the
//! uniform slack draw by quadrature.
//!
//! # Scope
//!
//! The prediction is exact theory only for FCFS single-class M/M/1
//! nodes and serial pipelines at zero network delay; elsewhere it is a
//! deliberate approximation (it ignores the queueing discipline, treats
//! per-stage waits as independent, and uses the expected slack factor
//! for random-shape tasks). Configurations the model cannot speak to at
//! all — non-Poisson arrivals, adaptive strategies, failure injection,
//! `AbortTardy`, infinite-variance service — return
//! [`PredictError::Unsupported`].

use std::fmt;

use sda_system::{FailureModel, NetworkModel, OverloadPolicy, SystemConfig};
use sda_workload::{ArrivalProcess, ConfigError, GlobalShape};

use crate::ggc::GgcApprox;
use crate::queue::TheoryError;
use crate::special::{gamma_q, mean_over_uniform, normal_tail};

/// Why a configuration could not be predicted.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// The configuration is valid but outside the analytic model's
    /// scope (the message names the offending feature).
    Unsupported(&'static str),
    /// The workload configuration itself is invalid.
    Config(ConfigError),
    /// A queueing model could not be constructed (should not occur for
    /// validated configurations; saturation is handled separately).
    Theory(TheoryError),
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Unsupported(what) => {
                write!(f, "configuration outside analytic scope: {what}")
            }
            PredictError::Config(e) => write!(f, "invalid configuration: {e}"),
            PredictError::Theory(e) => write!(f, "queueing model error: {e}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<ConfigError> for PredictError {
    fn from(e: ConfigError) -> Self {
        PredictError::Config(e)
    }
}

impl From<TheoryError> for PredictError {
    fn from(e: TheoryError) -> Self {
        PredictError::Theory(e)
    }
}

/// Steady-state prediction for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePrediction {
    /// Offered load `lambda * E[S]` (may exceed 1 when saturated).
    pub offered_load: f64,
    /// Predicted busy fraction, `min(offered_load, 1)`.
    pub utilization: f64,
    /// Mean waiting time in queue (infinite when saturated).
    pub mean_wait: f64,
    /// Mean number of jobs waiting in queue (infinite when saturated).
    pub mean_queue_length: f64,
}

/// Closed-form prediction for a full [`SystemConfig`].
///
/// Miss ratios are in percent to match the simulator's
/// `miss_percent()` accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Per-node steady-state results, indexed like the config's nodes.
    pub nodes: Vec<NodePrediction>,
    /// Mean over nodes of the predicted busy fraction.
    pub mean_utilization: f64,
    /// Predicted local-task miss ratio in percent (arrival-rate
    /// weighted across nodes).
    pub local_miss_pct: f64,
    /// Predicted mean local response time (wait + service).
    pub local_response: f64,
    /// Predicted global-task miss ratio in percent; `None` when the
    /// workload has no global tasks.
    pub global_miss_pct: Option<f64>,
    /// Predicted mean global response time; `None` without globals.
    pub global_response: Option<f64>,
    /// Predicted variance of the global response; `None` without
    /// globals.
    pub global_response_var: Option<f64>,
    /// True when at least one node's offered load is >= 1 (no steady
    /// state; misses and responses degenerate).
    pub saturated: bool,
}

impl Prediction {
    /// The miss ratio the analytic screen keys on: the global miss
    /// ratio when the workload has global tasks, else the local one.
    pub fn screen_miss_pct(&self) -> f64 {
        self.global_miss_pct.unwrap_or(self.local_miss_pct)
    }
}

/// Per-node intermediate results.
struct NodeCalc {
    local_rate: f64,
    sub_service_mean: f64,
    rho: f64,
    wait_mean: f64,
    wait_var: f64,
    /// Local-class miss probability (0..=1).
    local_miss: f64,
    /// Local-class mean response (wait + local service).
    local_response: f64,
    mean_queue: f64,
}

/// Predict steady-state metrics for `config` from closed forms alone
/// (no simulation, no RNG).
///
/// # Errors
///
/// [`PredictError::Config`] if the workload fails validation;
/// [`PredictError::Unsupported`] if the configuration is outside the
/// model's scope (see the module docs). Saturated-but-valid
/// configurations are *not* errors: they return a [`Prediction`] with
/// `saturated == true`, 100% miss on the saturated classes, and
/// infinite waits.
pub fn predict(config: &SystemConfig) -> Result<Prediction, PredictError> {
    let w = &config.workload;
    w.validate()?;
    if !matches!(w.arrivals, ArrivalProcess::Poisson) {
        return Err(PredictError::Unsupported("non-Poisson arrival process"));
    }
    if config.strategy.is_adaptive() {
        return Err(PredictError::Unsupported("adaptive deadline strategy"));
    }
    if !matches!(config.failure, FailureModel::None) {
        return Err(PredictError::Unsupported("failure injection"));
    }
    if matches!(config.overload, OverloadPolicy::AbortTardy) {
        return Err(PredictError::Unsupported("AbortTardy overload policy"));
    }
    let cs2 = w.service.cv2().ok_or(PredictError::Unsupported(
        "service distribution with infinite variance",
    ))?;

    let rates = w.rates()?;
    let k = w.nodes;
    let total_local_rate = rates.lambda_local_per_node * k as f64;
    let local_rates: Vec<f64> = match &w.local_weights {
        Some(ws) => {
            let sum: f64 = ws.iter().sum();
            ws.iter().map(|wi| total_local_rate * wi / sum).collect()
        }
        None => vec![rates.lambda_local_per_node; k],
    };
    let sub_rate = rates.lambda_global * w.shape.expected_subtasks() / k as f64;

    let mut nodes = Vec::with_capacity(k);
    let mut saturated = false;
    for i in 0..k {
        let speed = w.node_speeds.as_ref().map_or(1.0, |s| s[i]);
        let s_local = w.mean_local_ex / speed;
        let s_sub = w.mean_subtask_ex / speed;
        let lr = local_rates[i];
        let lam = lr + sub_rate;
        let rho = lr * s_local + sub_rate * s_sub;
        let calc = if lam <= 0.0 {
            NodeCalc {
                local_rate: lr,
                sub_service_mean: s_sub,
                rho: 0.0,
                wait_mean: 0.0,
                wait_var: 0.0,
                local_miss: 0.0,
                local_response: 0.0,
                mean_queue: 0.0,
            }
        } else if rho >= 1.0 {
            saturated = true;
            NodeCalc {
                local_rate: lr,
                sub_service_mean: s_sub,
                rho,
                wait_mean: f64::INFINITY,
                wait_var: f64::INFINITY,
                local_miss: 1.0,
                local_response: f64::INFINITY,
                mean_queue: f64::INFINITY,
            }
        } else {
            // Mixed-class service moments: both classes share the
            // configured variability, so E[S_c^2] = m_c^2 (1 + cs2).
            let es = rho / lam;
            let es2 = (1.0 + cs2) * (lr * s_local * s_local + sub_rate * s_sub * s_sub) / lam;
            let cs2_mix = (es2 / (es * es) - 1.0).max(0.0);
            let mut q = GgcApprox::new(lam, 1.0 / es, 1, 1.0, cs2_mix)?;
            // When the service shape has a finite third moment, upgrade
            // the waiting tail to the Takács/gamma fit. The mixture's
            // third moment is the rate-weighted mix of the class
            // moments (classes differ only in mean).
            let es3_mix = match (
                w.service.third_moment(s_local),
                w.service.third_moment(s_sub),
            ) {
                (Some(m3_local), Some(m3_sub)) => Some((lr * m3_local + sub_rate * m3_sub) / lam),
                _ => None,
            };
            if let Some(es3) = es3_mix {
                q = q.with_service_third_moment(es3)?;
            }
            NodeCalc {
                local_rate: lr,
                sub_service_mean: s_sub,
                rho,
                wait_mean: q.mean_wait(),
                wait_var: q.wait_variance(),
                local_miss: q.miss_ratio_uniform_slack(w.slack.min, w.slack.max),
                local_response: q.mean_wait() + s_local,
                mean_queue: q.mean_queue(),
            }
        };
        nodes.push(calc);
    }

    // Local aggregates, arrival-rate weighted.
    let lr_total: f64 = nodes.iter().map(|n| n.local_rate).sum();
    let (local_miss_pct, local_response) = if lr_total > 0.0 {
        (
            100.0
                * nodes
                    .iter()
                    .map(|n| n.local_rate * n.local_miss)
                    .sum::<f64>()
                / lr_total,
            nodes
                .iter()
                .map(|n| n.local_rate * n.local_response)
                .sum::<f64>()
                / lr_total,
        )
    } else {
        (0.0, 0.0)
    };

    // Global composition along the pipeline (uniform node placement).
    let (global_miss_pct, global_response, global_response_var) = if rates.lambda_global > 0.0 {
        let kf = k as f64;
        let wait_mean = nodes.iter().map(|n| n.wait_mean).sum::<f64>() / kf;
        // Law of total variance over the uniformly chosen node.
        let wait_var = nodes.iter().map(|n| n.wait_var).sum::<f64>() / kf
            + nodes
                .iter()
                .map(|n| (n.wait_mean - wait_mean) * (n.wait_mean - wait_mean))
                .sum::<f64>()
                / kf;
        let sub_mean = nodes.iter().map(|n| n.sub_service_mean).sum::<f64>() / kf;
        let sub_var = nodes
            .iter()
            .map(|n| cs2 * n.sub_service_mean * n.sub_service_mean)
            .sum::<f64>()
            / kf
            + nodes
                .iter()
                .map(|n| (n.sub_service_mean - sub_mean) * (n.sub_service_mean - sub_mean))
                .sum::<f64>()
                / kf;

        let cp = w.shape.expected_critical_path_factor();
        let hops = expected_hops(&w.shape);
        let net_mean = hops * config.network.expected_hop_delay();
        let net_var = match config.network {
            NetworkModel::Exponential { mean } => hops * mean * mean,
            _ => 0.0,
        };

        // Queueing + network delay beyond the deadline's built-in
        // critical-path execution budget.
        let d_mean = cp * wait_mean + net_mean;
        let d_var = cp * wait_var + net_var;
        let factor = w.global_slack_factor();
        let miss = mean_over_uniform(w.slack.min, w.slack.max, |u| {
            delay_tail(d_mean, d_var, u * factor)
        });
        let resp_mean = cp * (wait_mean + sub_mean) + net_mean;
        let resp_var = cp * (wait_var + sub_var) + net_var;
        (
            Some(100.0 * miss.clamp(0.0, 1.0)),
            Some(resp_mean),
            Some(resp_var),
        )
    } else {
        (None, None, None)
    };

    let node_predictions: Vec<NodePrediction> = nodes
        .iter()
        .map(|n| NodePrediction {
            offered_load: n.rho,
            utilization: n.rho.min(1.0),
            mean_wait: n.wait_mean,
            mean_queue_length: n.mean_queue,
        })
        .collect();
    let mean_utilization = node_predictions.iter().map(|n| n.utilization).sum::<f64>() / k as f64;

    Ok(Prediction {
        nodes: node_predictions,
        mean_utilization,
        local_miss_pct,
        local_response,
        global_miss_pct,
        global_response,
        global_response_var,
        saturated,
    })
}

/// Expected number of network hops a global task's critical path
/// crosses: manager dispatch, inter-stage hand-offs, and the final
/// report back to the manager.
fn expected_hops(shape: &GlobalShape) -> f64 {
    match *shape {
        GlobalShape::Serial { m } => m as f64 + 1.0,
        GlobalShape::SerialRandomM { min_m, max_m } => (min_m + max_m) as f64 / 2.0 + 1.0,
        GlobalShape::Parallel { .. } => 2.0,
        GlobalShape::SerialParallel { stages, .. } => stages as f64 + 1.0,
        GlobalShape::Dag { depth, .. } => depth as f64 + 1.0,
    }
}

/// `P[D > d]` for the total-delay distribution matched to `(mean,
/// var)` by a gamma fit (normal for very large shape, point mass for
/// zero variance).
fn delay_tail(mean: f64, var: f64, d: f64) -> f64 {
    if !mean.is_finite() {
        return 1.0;
    }
    if mean <= 0.0 {
        return 0.0;
    }
    if d <= 0.0 {
        return 1.0;
    }
    if var <= 1e-12 * mean * mean {
        return if d < mean { 1.0 } else { 0.0 };
    }
    let shape = mean * mean / var;
    if shape > 1e6 {
        normal_tail((d - mean) / var.sqrt())
    } else {
        gamma_q(shape, d / (var / mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::SdaStrategy;
    use sda_workload::ServiceVariability;

    fn baseline() -> SystemConfig {
        SystemConfig::ssp_baseline(SdaStrategy::ud_ud())
    }

    #[test]
    fn jackson_serial_baseline_is_exact_product_form() {
        // Baseline: 6 nodes, load 0.5, frac_local 0.75, exponential
        // service, zero network → each node is M/M/1 at total rate 0.5.
        let p = predict(&baseline()).unwrap();
        assert!(!p.saturated);
        assert_eq!(p.nodes.len(), 6);
        for n in &p.nodes {
            assert!((n.offered_load - 0.5).abs() < 1e-12);
            assert!((n.utilization - 0.5).abs() < 1e-12);
            // M/M/1 at rho 0.5, mu 1: Wq = 1, Lq = 0.5.
            assert!((n.mean_wait - 1.0).abs() < 1e-12);
            assert!((n.mean_queue_length - 0.5).abs() < 1e-12);
        }
        assert!((p.mean_utilization - 0.5).abs() < 1e-12);
        // Local response = Wq + E[S] = 2; global = 4 stages · 2 = 8.
        assert!((p.local_response - 2.0).abs() < 1e-12);
        assert!((p.global_response.unwrap() - 8.0).abs() < 1e-12);
        // Local miss: rho e^{-theta lo}(1-e^{-theta span})/(theta span)
        // with theta = 0.5, lo = 0.25, span = 2.25.
        let expect = 100.0 * 0.5 * (-0.125f64).exp() * (-(-0.5f64 * 2.25).exp_m1()) / (0.5 * 2.25);
        assert!((p.local_miss_pct - expect).abs() < 1e-9);
        let gm = p.global_miss_pct.unwrap();
        assert!(gm > 0.0 && gm < 100.0);
        assert_eq!(p.screen_miss_pct(), gm);
    }

    #[test]
    fn zero_network_equals_no_network_terms() {
        // NetworkModel::Zero and Constant{0} predict identically, and a
        // positive constant delay shifts the global response by exactly
        // hops · delay while leaving local metrics untouched.
        let base = predict(&baseline()).unwrap();
        let mut zeroed = baseline();
        zeroed.network = NetworkModel::Constant { delay: 0.0 };
        assert_eq!(predict(&zeroed).unwrap(), base);

        let mut delayed = baseline();
        delayed.network = NetworkModel::Constant { delay: 0.3 };
        let p = predict(&delayed).unwrap();
        assert!((p.local_response - base.local_response).abs() < 1e-12);
        assert!((p.local_miss_pct - base.local_miss_pct).abs() < 1e-12);
        // Serial m=4 → 5 hops.
        assert!(
            (p.global_response.unwrap() - (base.global_response.unwrap() + 5.0 * 0.3)).abs()
                < 1e-12
        );
        assert!(p.global_miss_pct.unwrap() > base.global_miss_pct.unwrap());
    }

    #[test]
    fn local_only_workload_has_no_global_prediction() {
        let mut cfg = baseline();
        cfg.workload.frac_local = 1.0;
        let p = predict(&cfg).unwrap();
        assert_eq!(p.global_miss_pct, None);
        assert_eq!(p.global_response, None);
        assert_eq!(p.global_response_var, None);
        // Screen falls back to the local prediction.
        assert_eq!(p.screen_miss_pct(), p.local_miss_pct);
        // Each node is M/M/1 at rho = 0.5 again.
        assert!((p.nodes[0].mean_wait - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_increases_with_load() {
        let mut last = -1.0;
        for &load in &[0.3, 0.5, 0.7, 0.9] {
            let mut cfg = baseline();
            cfg.workload.load = load;
            let p = predict(&cfg).unwrap();
            let miss = p.global_miss_pct.unwrap();
            assert!(miss > last, "global miss not increasing at load {load}");
            last = miss;
        }
    }

    #[test]
    fn deterministic_service_waits_less_than_exponential() {
        let mut det = baseline();
        det.workload.service = ServiceVariability::Deterministic;
        let exp = predict(&baseline()).unwrap();
        let p = predict(&det).unwrap();
        assert!(p.local_response < exp.local_response);
        assert!(p.local_miss_pct < exp.local_miss_pct);
    }

    #[test]
    fn saturated_slow_node_degenerates_gracefully() {
        let mut cfg = baseline();
        // Node 0 at speed 0.4 sees offered load 0.5/0.4 = 1.25.
        cfg.workload.node_speeds = Some(vec![0.4, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let p = predict(&cfg).unwrap();
        assert!(p.saturated);
        assert!((p.nodes[0].offered_load - 1.25).abs() < 1e-12);
        assert!((p.nodes[0].utilization - 1.0).abs() < 1e-12);
        assert!(p.nodes[0].mean_wait.is_infinite());
        assert!(p.local_response.is_infinite());
        assert_eq!(p.global_miss_pct, Some(100.0));
        assert!(p.global_response.unwrap().is_infinite());
        // Unsaturated nodes keep finite predictions.
        assert!(p.nodes[1].mean_wait.is_finite());
        assert!(p.local_miss_pct < 100.0);
    }

    #[test]
    fn weighted_locals_shift_load_between_nodes() {
        let mut cfg = baseline();
        cfg.workload.local_weights = Some(vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let p = predict(&cfg).unwrap();
        assert!(p.nodes[0].offered_load > p.nodes[1].offered_load);
        // Total offered load is conserved.
        let total: f64 = p.nodes.iter().map(|n| n.offered_load).sum();
        assert!((total - 3.0).abs() < 1e-12);
        // Uniform explicit weights match the default exactly.
        let mut uniform = baseline();
        uniform.workload.local_weights = Some(vec![1.0; 6]);
        assert_eq!(predict(&uniform).unwrap(), predict(&baseline()).unwrap());
    }

    #[test]
    fn out_of_scope_configurations_are_rejected() {
        let mut mmpp = baseline();
        mmpp.workload.arrivals = ArrivalProcess::Mmpp2 {
            burst_ratio: 4.0,
            dwell_quiet: 100.0,
            dwell_burst: 20.0,
        };
        assert!(matches!(
            predict(&mmpp),
            Err(PredictError::Unsupported("non-Poisson arrival process"))
        ));

        let mut abort = baseline();
        abort.overload = OverloadPolicy::AbortTardy;
        assert!(matches!(predict(&abort), Err(PredictError::Unsupported(_))));

        let mut failing = baseline();
        failing.failure = FailureModel::Exponential {
            mttf: 1000.0,
            mttr: 50.0,
        };
        assert!(matches!(
            predict(&failing),
            Err(PredictError::Unsupported(_))
        ));

        let mut heavy = baseline();
        heavy.workload.service = ServiceVariability::Pareto { alpha: 1.5 };
        assert!(matches!(predict(&heavy), Err(PredictError::Unsupported(_))));

        let mut adaptive = baseline();
        adaptive.strategy =
            SdaStrategy::adaptive(SdaStrategy::ud_ud(), sda_core::AdaptiveSlack::default());
        assert!(matches!(
            predict(&adaptive),
            Err(PredictError::Unsupported("adaptive deadline strategy"))
        ));

        let mut invalid = baseline();
        invalid.workload.load = 0.0;
        assert!(matches!(predict(&invalid), Err(PredictError::Config(_))));
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            PredictError::Unsupported("x"),
            PredictError::Theory(TheoryError::Unstable { rho: 1.2 }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn delay_tail_edge_cases() {
        assert_eq!(delay_tail(f64::INFINITY, f64::INFINITY, 5.0), 1.0);
        assert_eq!(delay_tail(0.0, 0.0, 5.0), 0.0);
        assert_eq!(delay_tail(4.0, 0.0, 3.0), 1.0);
        assert_eq!(delay_tail(4.0, 0.0, 5.0), 0.0);
        assert_eq!(delay_tail(4.0, 2.0, 0.0), 1.0);
        // Exponential case (shape 1): mean 2, var 4 → P[D>d] = e^{-d/2}.
        let got = delay_tail(2.0, 4.0, 3.0);
        assert!((got - (-1.5f64).exp()).abs() < 1e-12);
    }
}
