//! Special functions used by the predictors: log-gamma, the regularized
//! incomplete gamma function, the normal tail, and a small fixed-grid
//! quadrature for averaging over uniform slack.
//!
//! All routines are dependency-free and deterministic.

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0);
    let z = x - 1.0;
    let mut sum = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        sum += c / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + sum.ln()
}

/// Regularized upper incomplete gamma function
/// `Q(a, x) = Gamma(a, x) / Gamma(a)` for `a > 0`, `x >= 0`.
///
/// Uses the series expansion for `x < a + 1` and a Lentz-style
/// continued fraction otherwise (Numerical Recipes style).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0);
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series for the regularized lower incomplete gamma `P(a, x)`,
/// convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for `Q(a, x)`, convergent for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -f64::from(i) * (f64::from(i) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Upper tail of the standard normal distribution, `P[Z > z]`.
///
/// For `z >= 0` this is `0.5 * Q(1/2, z^2 / 2)`; negative arguments use
/// symmetry.
pub fn normal_tail(z: f64) -> f64 {
    if z >= 0.0 {
        0.5 * gamma_q(0.5, z * z / 2.0)
    } else {
        1.0 - 0.5 * gamma_q(0.5, z * z / 2.0)
    }
}

/// Mean of `f(u)` over `u ~ U[lo, hi]` by composite Simpson quadrature
/// with 128 panels. If `hi <= lo`, returns `f(lo)`.
pub fn mean_over_uniform(lo: f64, hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    if hi <= lo {
        return f(lo);
    }
    const PANELS: usize = 128;
    let h = (hi - lo) / PANELS as f64;
    let mut sum = f(lo) + f(hi);
    for i in 1..PANELS {
        let x = lo + h * i as f64;
        sum += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    sum * h / 3.0 / (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            let expect = fact.ln();
            let got = ln_gamma(f64::from(n));
            assert!(
                (got - expect).abs() < 1e-11 * expect.abs().max(1.0),
                "ln_gamma({n}) = {got}, expected {expect}"
            );
            fact *= f64::from(n);
        }
        // Gamma(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_q_integer_shape_matches_poisson_sum() {
        // Q(k, x) = sum_{j<k} x^j e^{-x} / j! for integer k.
        for &k in &[1u32, 2, 5, 10] {
            for &x in &[0.1f64, 0.9, 3.0, 7.5, 25.0] {
                let mut term = (-x).exp();
                let mut sum = 0.0;
                for j in 0..k {
                    if j > 0 {
                        term *= x / f64::from(j);
                    }
                    sum += term;
                }
                let got = gamma_q(f64::from(k), x);
                assert!(
                    (got - sum).abs() < 1e-12,
                    "Q({k}, {x}) = {got}, expected {sum}"
                );
            }
        }
    }

    #[test]
    fn gamma_q_boundaries() {
        assert!((gamma_q(2.5, 0.0) - 1.0).abs() < 1e-15);
        assert!(gamma_q(2.5, 1e4) < 1e-12);
        // Q(1, x) = e^{-x}.
        for &x in &[0.2, 1.0, 4.0, 30.0] {
            assert!((gamma_q(1.0, x) - (-x).exp()).abs() < 1e-13);
        }
        // Monotone decreasing in x.
        let mut last = 1.0;
        for i in 0..60 {
            let q = gamma_q(3.3, 0.25 * f64::from(i));
            assert!(q <= last + 1e-14);
            last = q;
        }
    }

    #[test]
    fn normal_tail_reference_values() {
        assert!((normal_tail(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_tail(1.959_963_984_540_054) - 0.025).abs() < 1e-9);
        assert!((normal_tail(-1.959_963_984_540_054) - 0.975).abs() < 1e-9);
        assert!(normal_tail(8.0) < 1e-14);
        assert!((normal_tail(1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
    }

    #[test]
    fn mean_over_uniform_is_exact_on_cubics_and_point_masses() {
        // Simpson is exact on cubics.
        let got = mean_over_uniform(1.0, 3.0, |u| u * u * u);
        // E[U^3] over [1,3] = (3^4 - 1) / (4 * 2) = 10.
        assert!((got - 10.0).abs() < 1e-12);
        // Degenerate interval evaluates at the point.
        assert!((mean_over_uniform(2.0, 2.0, |u| u + 1.0) - 3.0).abs() < 1e-15);
        // Smooth exponential integrand: E[e^{-u}] over [0,2].
        let got = mean_over_uniform(0.0, 2.0, |u| (-u).exp());
        let expect = (1.0 - (-2.0f64).exp()) / 2.0;
        assert!((got - expect).abs() < 1e-8);
    }
}
