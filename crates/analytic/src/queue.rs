//! Exact steady-state results for M/M/1 and M/M/c queues.
//!
//! All formulas are standard (see e.g. Kleinrock vol. 1). Time is in the
//! same abstract units as the simulator; rates are per unit time.

use std::fmt;

/// Error returned when a queueing model cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum TheoryError {
    /// A parameter was non-finite or out of its admissible range.
    BadParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The offered load is at or above capacity (rho >= 1); no steady
    /// state exists.
    Unstable {
        /// The offered load `lambda / (c * mu)`.
        rho: f64,
    },
}

impl fmt::Display for TheoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoryError::BadParameter { what, value } => {
                write!(f, "bad parameter {what} = {value}")
            }
            TheoryError::Unstable { rho } => {
                write!(f, "queue unstable: offered load rho = {rho} >= 1")
            }
        }
    }
}

impl std::error::Error for TheoryError {}

/// Probability that an arriving customer misses a deadline of the form
/// `service_end > arrival + service + slack` with `slack ~ U[lo, hi]`,
/// when the waiting time is `0` w.p. `1 - p_wait` and
/// `Exp(theta)`-distributed w.p. `p_wait` (the M/M/c wait law).
///
/// Under FCFS the response is `wait + service`, so the deadline
/// `arrival + service + slack` is missed iff `wait > slack`:
/// `P[miss] = p_wait * E[e^{-theta * slack}]`, which for uniform slack is
/// `p_wait * e^{-theta lo} * (1 - e^{-theta (hi-lo)}) / (theta (hi-lo))`.
pub(crate) fn uniform_slack_miss(p_wait: f64, theta: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(theta > 0.0);
    let span = hi - lo;
    if span > 0.0 {
        p_wait * (-theta * lo).exp() * (-(-theta * span).exp_m1()) / (theta * span)
    } else {
        p_wait * (-theta * lo).exp()
    }
}

/// Exact M/M/1 queue: Poisson arrivals at `lambda`, exponential service
/// at rate `mu`, one server, FCFS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    lambda: f64,
    mu: f64,
}

impl Mm1 {
    /// Build an M/M/1 model; errors if parameters are invalid or the
    /// queue is unstable (`lambda >= mu`).
    pub fn new(lambda: f64, mu: f64) -> Result<Self, TheoryError> {
        check_rate("lambda", lambda)?;
        check_rate_positive("mu", mu)?;
        let rho = lambda / mu;
        if rho >= 1.0 {
            return Err(TheoryError::Unstable { rho });
        }
        Ok(Mm1 { lambda, mu })
    }

    /// Server utilization `rho = lambda / mu`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Probability an arrival has to wait (`P[W > 0] = rho`, PASTA).
    pub fn p_wait(&self) -> f64 {
        self.utilization()
    }

    /// Exponential decay rate of the waiting/response tails,
    /// `theta = mu - lambda`.
    pub fn theta(&self) -> f64 {
        self.mu - self.lambda
    }

    /// Mean waiting time in queue `Wq = rho / (mu - lambda)`.
    pub fn mean_wait(&self) -> f64 {
        self.utilization() / self.theta()
    }

    /// Variance of the waiting time,
    /// `2 rho / theta^2 - (rho / theta)^2`.
    pub fn wait_variance(&self) -> f64 {
        let p = self.p_wait();
        let th = self.theta();
        2.0 * p / (th * th) - (p / th) * (p / th)
    }

    /// Mean number waiting in queue `Lq = rho^2 / (1 - rho)`.
    pub fn mean_queue(&self) -> f64 {
        let rho = self.utilization();
        rho * rho / (1.0 - rho)
    }

    /// Mean response (sojourn) time `1 / (mu - lambda)`.
    pub fn mean_response(&self) -> f64 {
        1.0 / self.theta()
    }

    /// Waiting-time tail `P[W > t] = rho e^{-theta t}` for `t >= 0`.
    pub fn wait_tail(&self, t: f64) -> f64 {
        self.p_wait() * (-self.theta() * t).exp()
    }

    /// Response-time tail `P[R > t] = e^{-theta t}` for `t >= 0`
    /// (the M/M/1 sojourn time is exactly `Exp(mu - lambda)`).
    pub fn response_tail(&self, t: f64) -> f64 {
        (-self.theta() * t).exp()
    }

    /// Deadline-miss probability with `deadline = arrival + service +
    /// slack`, `slack ~ U[lo, hi]` (see `uniform_slack_miss`).
    pub fn miss_ratio_uniform_slack(&self, lo: f64, hi: f64) -> f64 {
        uniform_slack_miss(self.p_wait(), self.theta(), lo, hi)
    }
}

/// Exact M/M/c queue: Poisson arrivals at `lambda`, `c` identical
/// exponential servers at rate `mu` each, FCFS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mmc {
    lambda: f64,
    mu: f64,
    servers: u32,
    /// Erlang-C probability of waiting, cached at construction.
    p_wait: f64,
}

impl Mmc {
    /// Build an M/M/c model; errors if parameters are invalid or the
    /// queue is unstable (`lambda >= c * mu`).
    pub fn new(lambda: f64, mu: f64, servers: u32) -> Result<Self, TheoryError> {
        check_rate("lambda", lambda)?;
        check_rate_positive("mu", mu)?;
        if servers == 0 {
            return Err(TheoryError::BadParameter {
                what: "servers",
                value: 0.0,
            });
        }
        let c = f64::from(servers);
        let rho = lambda / (c * mu);
        if rho >= 1.0 {
            return Err(TheoryError::Unstable { rho });
        }
        // Erlang-B via the numerically stable recurrence, then Erlang-C.
        let a = lambda / mu;
        let mut b = 1.0;
        for k in 1..=servers {
            b = a * b / (f64::from(k) + a * b);
        }
        let p_wait = b / (1.0 - rho * (1.0 - b));
        Ok(Mmc {
            lambda,
            mu,
            servers,
            p_wait,
        })
    }

    /// Per-server utilization `rho = lambda / (c * mu)`.
    pub fn utilization(&self) -> f64 {
        self.lambda / (f64::from(self.servers) * self.mu)
    }

    /// The arrival rate `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The number of servers `c`.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Erlang-C probability that an arrival must wait.
    pub fn p_wait(&self) -> f64 {
        self.p_wait
    }

    /// Exponential decay rate of the waiting-time tail,
    /// `theta = c mu - lambda`.
    pub fn theta(&self) -> f64 {
        f64::from(self.servers) * self.mu - self.lambda
    }

    /// Mean waiting time in queue `Wq = C / theta` with `C` the
    /// Erlang-C probability.
    pub fn mean_wait(&self) -> f64 {
        self.p_wait / self.theta()
    }

    /// Variance of the waiting time. The wait is `0` w.p. `1 - C` and
    /// `Exp(theta)` w.p. `C`, so `E[W^2] = 2C/theta^2`.
    pub fn wait_variance(&self) -> f64 {
        let th = self.theta();
        2.0 * self.p_wait / (th * th) - (self.p_wait / th) * (self.p_wait / th)
    }

    /// Mean number waiting in queue `Lq = C rho / (1 - rho)`.
    pub fn mean_queue(&self) -> f64 {
        let rho = self.utilization();
        self.p_wait * rho / (1.0 - rho)
    }

    /// Mean response (sojourn) time `Wq + 1/mu`.
    pub fn mean_response(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }

    /// Waiting-time tail `P[W > t] = C e^{-theta t}` for `t >= 0`.
    pub fn wait_tail(&self, t: f64) -> f64 {
        self.p_wait * (-self.theta() * t).exp()
    }

    /// Response-time tail `P[R > t]` for `t >= 0`, the convolution of
    /// the wait law with an independent `Exp(mu)` service:
    /// `(1-C) e^{-mu t} + C (theta e^{-mu t} - mu e^{-theta t}) / (theta - mu)`,
    /// with the `theta -> mu` limit `e^{-mu t} (1 + C mu t)`.
    pub fn response_tail(&self, t: f64) -> f64 {
        let c = self.p_wait;
        let th = self.theta();
        let mu = self.mu;
        if (th - mu).abs() <= 1e-9 * mu {
            (-mu * t).exp() * (1.0 + c * mu * t)
        } else {
            (1.0 - c) * (-mu * t).exp()
                + c * (th * (-mu * t).exp() - mu * (-th * t).exp()) / (th - mu)
        }
    }

    /// Deadline-miss probability with `deadline = arrival + service +
    /// slack`, `slack ~ U[lo, hi]` (see `uniform_slack_miss`).
    pub fn miss_ratio_uniform_slack(&self, lo: f64, hi: f64) -> f64 {
        uniform_slack_miss(self.p_wait, self.theta(), lo, hi)
    }
}

fn check_rate(what: &'static str, v: f64) -> Result<(), TheoryError> {
    if !v.is_finite() || v < 0.0 {
        Err(TheoryError::BadParameter { what, value: v })
    } else {
        Ok(())
    }
}

fn check_rate_positive(what: &'static str, v: f64) -> Result<(), TheoryError> {
    if !v.is_finite() || v <= 0.0 {
        Err(TheoryError::BadParameter { what, value: v })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    /// Independent oracle for the Erlang-C formula and the M/M/c queue
    /// moments: solve the truncated birth-death stationary distribution
    /// `p_{n+1} = p_n * lambda / (mu * min(n+1, c))` numerically and
    /// compare.
    fn birth_death_oracle(lambda: f64, mu: f64, c: u32) -> (f64, f64) {
        let cap = f64::from(c) * mu;
        let rho = lambda / cap;
        assert!(rho < 1.0);
        // Truncate when the geometric tail is negligible.
        let mut probs = vec![1.0f64];
        let mut n = 0u32;
        loop {
            let servers_busy = f64::from((n + 1).min(c));
            let next = probs[n as usize] * lambda / (mu * servers_busy);
            probs.push(next);
            n += 1;
            if n > c && next < 1e-18 * probs[0] {
                break;
            }
        }
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        // P[wait] = P[N >= c]; Lq = sum (n - c)+ p_n.
        let p_wait: f64 = probs.iter().skip(c as usize).sum();
        let lq: f64 = probs
            .iter()
            .enumerate()
            .skip(c as usize + 1)
            .map(|(n, p)| (n as f64 - f64::from(c)) * p)
            .sum();
        (p_wait, lq)
    }

    #[test]
    fn erlang_c_matches_birth_death_oracle() {
        for &(lambda, mu, c) in &[
            (0.5, 1.0, 1u32),
            (2.4, 1.0, 3),
            (7.0, 1.0, 8),
            (0.95, 0.25, 6),
            (19.0, 1.0, 20),
        ] {
            let q = Mmc::new(lambda, mu, c).unwrap();
            let (p_wait, lq) = birth_death_oracle(lambda, mu, c);
            assert!(
                (q.p_wait() - p_wait).abs() < 1e-10,
                "p_wait mismatch at ({lambda},{mu},{c}): {} vs {p_wait}",
                q.p_wait()
            );
            assert!(
                (q.mean_queue() - lq).abs() < 1e-9,
                "Lq mismatch at ({lambda},{mu},{c}): {} vs {lq}",
                q.mean_queue()
            );
        }
    }

    #[test]
    fn mmc_collapses_to_mm1_at_c_equals_1() {
        for &(lambda, mu) in &[(0.3, 1.0), (0.9, 1.0), (1.7, 2.0), (0.99, 1.0)] {
            let a = Mm1::new(lambda, mu).unwrap();
            let b = Mmc::new(lambda, mu, 1).unwrap();
            assert!((a.utilization() - b.utilization()).abs() < TOL);
            assert!((a.p_wait() - b.p_wait()).abs() < TOL);
            assert!((a.mean_wait() - b.mean_wait()).abs() < TOL);
            assert!((a.wait_variance() - b.wait_variance()).abs() < TOL);
            assert!((a.mean_queue() - b.mean_queue()).abs() < TOL);
            assert!((a.mean_response() - b.mean_response()).abs() < TOL);
            for &t in &[0.0, 0.5, 2.0, 10.0] {
                assert!((a.wait_tail(t) - b.wait_tail(t)).abs() < TOL);
                assert!((a.response_tail(t) - b.response_tail(t)).abs() < TOL);
            }
            for &(lo, hi) in &[(0.0, 0.0), (0.25, 2.5), (1.0, 1.0)] {
                assert!(
                    (a.miss_ratio_uniform_slack(lo, hi) - b.miss_ratio_uniform_slack(lo, hi)).abs()
                        < TOL
                );
            }
        }
    }

    #[test]
    fn mm1_closed_forms() {
        let q = Mm1::new(0.5, 1.0).unwrap();
        assert!((q.utilization() - 0.5).abs() < TOL);
        assert!((q.mean_wait() - 1.0).abs() < TOL);
        assert!((q.mean_queue() - 0.5).abs() < TOL);
        assert!((q.mean_response() - 2.0).abs() < TOL);
        // P[R > t] = e^{-t/2}.
        assert!((q.response_tail(2.0) - (-1.0f64).exp()).abs() < TOL);
    }

    #[test]
    fn miss_ratio_monotone_nondecreasing_in_rho() {
        for servers in [1u32, 3] {
            let mut last = -1.0;
            for i in 1..100 {
                let rho = f64::from(i) / 100.0;
                let q = Mmc::new(rho * f64::from(servers), 1.0, servers).unwrap();
                let miss = q.miss_ratio_uniform_slack(0.25, 2.5);
                assert!(
                    miss >= last - 1e-14,
                    "miss not monotone at rho={rho}, c={servers}: {miss} < {last}"
                );
                last = miss;
            }
        }
    }

    #[test]
    fn response_tail_vanishes_at_large_deadlines() {
        let q = Mmc::new(2.7, 1.0, 3).unwrap();
        let mut last = 1.0 + 1e-15;
        for &t in &[0.0, 1.0, 5.0, 20.0, 100.0, 500.0] {
            let tail = q.response_tail(t);
            assert!((0.0..=1.0 + 1e-12).contains(&tail));
            assert!(tail <= last + 1e-12, "tail not decreasing at t={t}");
            last = tail;
        }
        assert!(q.response_tail(500.0) < 1e-12);
        assert!(q.miss_ratio_uniform_slack(500.0, 600.0) < 1e-12);
    }

    #[test]
    fn response_tail_near_theta_equals_mu_is_continuous() {
        // theta == mu happens at c=2, lambda=mu; probe the limit branch.
        let exact = Mmc::new(1.0, 1.0, 2).unwrap();
        let nearby = Mmc::new(1.0 + 1e-7, 1.0, 2).unwrap();
        for &t in &[0.1, 1.0, 4.0] {
            assert!(
                (exact.response_tail(t) - nearby.response_tail(t)).abs() < 1e-6,
                "discontinuity at t={t}"
            );
        }
    }

    #[test]
    fn tail_at_zero_is_total_mass() {
        let q = Mmc::new(2.4, 1.0, 3).unwrap();
        assert!((q.response_tail(0.0) - 1.0).abs() < TOL);
        assert!((q.wait_tail(0.0) - q.p_wait()).abs() < TOL);
        // Slack at exactly zero: miss prob equals P[wait > 0].
        assert!((q.miss_ratio_uniform_slack(0.0, 0.0) - q.p_wait()).abs() < TOL);
    }

    #[test]
    fn unstable_and_bad_parameters_are_rejected() {
        assert!(matches!(
            Mm1::new(1.0, 1.0),
            Err(TheoryError::Unstable { .. })
        ));
        assert!(matches!(
            Mmc::new(3.0, 1.0, 3),
            Err(TheoryError::Unstable { .. })
        ));
        assert!(matches!(
            Mmc::new(1.0, 0.0, 3),
            Err(TheoryError::BadParameter { .. })
        ));
        assert!(matches!(
            Mmc::new(1.0, 1.0, 0),
            Err(TheoryError::BadParameter { .. })
        ));
        assert!(matches!(
            Mm1::new(f64::NAN, 1.0),
            Err(TheoryError::BadParameter { .. })
        ));
        let err = Mmc::new(3.0, 1.0, 2).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
