//! §4.3 extension — varying the number of subtasks `m` of a global
//! task.
//!
//! "The EQF strategy is also superior when global tasks have many
//! subtasks \[6\]" — the UD/EQF gap should widen with `m`.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;
use sda_workload::GlobalShape;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Chain lengths to sweep.
pub const MS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 12.0];

/// Runs the subtask-count sweep at load 0.5: UD vs EQF.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy| {
        move |m: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.shape = GlobalShape::Serial { m: m as usize };
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(SerialStrategy::UltimateDeadline)),
        SeriesSpec::new("EQF", mk(SerialStrategy::EqualFlexibility)),
    ];
    run_sweep(
        "Ext — number of subtasks m (SSP, load 0.5)",
        "m",
        &MS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_advantage_grows_with_m() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 74,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let gap = |m: f64| {
            let ud = data.cell("UD", m).unwrap().md_global.mean;
            let eqf = data.cell("EQF", m).unwrap().md_global.mean;
            ud - eqf
        };
        // With a single stage the strategies coincide (UD = EQF when
        // m = 1: all slack to the only stage).
        assert!(
            gap(1.0).abs() < 3.0,
            "m=1 gap should vanish: {:.1}",
            gap(1.0)
        );
        // The gap at m = 8 clearly exceeds the m = 1 gap.
        assert!(
            gap(8.0) > gap(1.0) + 3.0,
            "gap should grow with m: m=1 → {:.1}, m=8 → {:.1}",
            gap(1.0),
            gap(8.0)
        );
    }
}
