//! §7 future work, implemented — EQF with artificial stages.
//!
//! The paper's conclusion proposes controlling EQF's slack variability
//! "perhaps by giving subtasks of tight global tasks less slack than EQF
//! would give. One trick would be to add artificial stages." This study
//! sweeps the number of phantom stages at the SSP baseline and at a
//! tight-slack variant (`rel_flex = 0.5`), where holding slack back
//! should matter most.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Number of artificial stages to sweep (0 = plain EQF).
pub const STAGES: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 8.0];

/// Runs the artificial-stage sweep at load 0.5, for the baseline slack
/// and for tight slack.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |rel_flex: f64| {
        move |stages: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                SerialStrategy::EqualFlexibilityArtificial {
                    artificial_stages: stages as u32,
                },
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.rel_flex = rel_flex;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("baseline slack", mk(1.0)),
        SeriesSpec::new("tight slack (rel_flex 0.5)", mk(0.5)),
    ];
    run_sweep(
        "Ext — EQF with artificial stages (paper §7 future work), load 0.5",
        "phantom stages",
        &STAGES,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_phantoms_reproduces_eqf_and_sweep_is_sane() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 80,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        // All cells populated, all percentages valid.
        for cell in data.cells.iter().flatten() {
            assert!((0.0..=100.0).contains(&cell.md_global.mean));
        }
        // Drowning the task in phantoms (a = 8) must behave differently
        // from plain EQF — the sweep actually varies something.
        let base0 = data.cell("baseline slack", 0.0).unwrap().subtask_miss.mean;
        let base8 = data.cell("baseline slack", 8.0).unwrap().subtask_miss.mean;
        assert!(
            (base0 - base8).abs() > 0.5,
            "phantom stages should move subtask-level misses: {base0:.1} vs {base8:.1}"
        );
    }
}
