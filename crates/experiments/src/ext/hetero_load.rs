//! §4.3 extension — unbalanced nodes: "some of the nodes had higher
//! local task loads than others".
//!
//! One hot node receives 3× the local weight of the others (total local
//! rate preserved). Expected: absolute miss ratios rise (the hot node is
//! a bottleneck for the subtasks routed through it), but the EQF > UD
//! ordering is unchanged.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep.
pub const LOADS: [f64; 3] = [0.3, 0.5, 0.7];

/// Runs the unbalanced-node sweep: UD and EQF with a 3×-hot node 0,
/// plus balanced EQF as reference.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let hot = vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let mk = |serial: SerialStrategy, weights: Option<Vec<f64>>| {
        move |load: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.load = load;
            cfg.workload.local_weights = weights.clone();
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new(
            "UD hot-node",
            mk(SerialStrategy::UltimateDeadline, Some(hot.clone())),
        ),
        SeriesSpec::new(
            "EQF hot-node",
            mk(SerialStrategy::EqualFlexibility, Some(hot)),
        ),
        SeriesSpec::new("EQF balanced", mk(SerialStrategy::EqualFlexibility, None)),
    ];
    run_sweep(
        "Ext — unbalanced local loads (node 0 at 3× weight)",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_survives_hot_nodes() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 76,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let ud = data.cell("UD hot-node", 0.5).unwrap().md_global.mean;
        let eqf = data.cell("EQF hot-node", 0.5).unwrap().md_global.mean;
        assert!(eqf < ud, "EQF ({eqf:.1}%) must beat UD ({ud:.1}%)");
        // The hot-node system should miss at least as much as balanced.
        let eqf_bal = data.cell("EQF balanced", 0.5).unwrap().md_global.mean;
        assert!(
            eqf + 1.0 >= eqf_bal,
            "hot ({eqf:.1}%) vs balanced ({eqf_bal:.1}%)"
        );
    }
}
