//! Extension and robustness studies.
//!
//! §4.3 and the conclusion report that the paper's conclusions are
//! robust to relaxing the baseline assumptions (imperfect predictions,
//! tardy-abort overload handling, MLF local scheduling, heterogeneous
//! task sizes and node loads) and sketch the DIV-x tuning and GF
//! questions deferred to refs. \[6\]/\[7\]. Each submodule reproduces one of those
//! studies.

pub mod abort_tardy;
pub mod burst;
pub mod churn;
pub mod dag;
pub mod divx;
pub mod eqf_as;
pub mod gf;
pub mod hetero_load;
pub mod hetero_m;
pub mod mlf;
pub mod network;
pub mod pex_error;
pub mod preemption;
pub mod rel_flex;
pub mod service_cv;
pub mod subtask_count;
