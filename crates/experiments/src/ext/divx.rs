//! §5.3/ref.\[7\] — how to set the `x` of DIV-x.
//!
//! Expected: `MD_global` drops steeply from UD (x→0 behaves like UD) to
//! DIV-1, then flattens — "the difference between DIV-1 and DIV-2 is
//! hardly noticeable, except at very high load"; larger x keeps taxing
//! the locals.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// The x values to sweep (UD is shown as the x = 0.125 asymptote
/// separately).
pub const XS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Load at which the sweep runs (high enough for PSP effects to bite).
pub const LOAD: f64 = 0.7;

/// Runs the DIV-x parameter sweep on the PSP baseline.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series = vec![SeriesSpec::new("DIV-x", |x: f64| {
        let mut cfg = SystemConfig::psp_baseline(SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            ParallelStrategy::Div { x },
        ));
        cfg.workload.load = LOAD;
        cfg
    })];
    run_sweep(
        "Ext — DIV-x parameter sweep (PSP baseline, load 0.7)",
        "x",
        &XS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_diminish_beyond_x_equals_one() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 78,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let md = |x: f64| data.cell("DIV-x", x).unwrap().md_global.mean;
        // Going from 0.25 to 1 helps a lot…
        assert!(
            md(0.25) > md(1.0),
            "x=0.25 ({:.1}%) should be worse than x=1 ({:.1}%)",
            md(0.25),
            md(1.0)
        );
        // …while 1 → 2 changes little (paper: "hardly noticeable").
        let step_small = (md(1.0) - md(2.0)).abs();
        let step_big = md(0.25) - md(1.0);
        assert!(
            step_small < step_big,
            "x 1→2 step {step_small:.1} should be smaller than 0.25→1 step {step_big:.1}"
        );
    }
}
