//! Beyond the paper — preemptive node servers.
//!
//! The paper's model is strictly non-preemptive (§4.1). This ablation
//! asks how much of the SDA problem is an artifact of non-preemption:
//! with preemptive EDF servers an urgent subtask never waits behind a
//! long local task that started first, so the *blocking* component of
//! discrimination disappears — but the *queueing-priority* component
//! (UD's too-late virtual deadlines) remains.
//!
//! Expected: preemption lowers miss ratios across the board and shrinks
//! UD's disadvantage, but EQF still wins — deadline assignment matters
//! even with preemptive schedulers.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep.
pub const LOADS: [f64; 3] = [0.3, 0.5, 0.7];

/// Runs the preemption ablation: UD and EQF on preemptive EDF nodes,
/// with non-preemptive EQF as the reference.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy, preemptive: bool| {
        move |load: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.load = load;
            cfg.preemptive = preemptive;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD/preempt", mk(SerialStrategy::UltimateDeadline, true)),
        SeriesSpec::new("EQF/preempt", mk(SerialStrategy::EqualFlexibility, true)),
        SeriesSpec::new(
            "EQF/non-preempt",
            mk(SerialStrategy::EqualFlexibility, false),
        ),
    ];
    run_sweep(
        "Ext — preemptive EDF servers (ablation of the non-preemption assumption)",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_still_wins_under_preemption() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 82,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let ud = data.cell("UD/preempt", 0.5).unwrap().md_global.mean;
        let eqf = data.cell("EQF/preempt", 0.5).unwrap().md_global.mean;
        assert!(
            eqf < ud,
            "EQF ({eqf:.1}%) must beat UD ({ud:.1}%) even preemptively"
        );
        // Preemption should not hurt EQF's locals relative to
        // non-preemptive EQF (preemptive EDF is optimal per node).
        let pre = data.cell("EQF/preempt", 0.7).unwrap().md_local.mean;
        let non = data.cell("EQF/non-preempt", 0.7).unwrap().md_local.mean;
        assert!(
            pre <= non + 1.0,
            "preemptive locals ({pre:.1}%) should not exceed non-preemptive ({non:.1}%)"
        );
    }
}
