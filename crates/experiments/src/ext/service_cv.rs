//! Beyond the paper — service-time variability.
//!
//! The paper's model is exponential-only (CV² = 1). This study sweeps
//! the squared coefficient of variation of *all* execution times from
//! deterministic (0) through Erlang (< 1), exponential (1) and lognormal
//! (> 1), plus a heavy-tailed Pareto variant, asking whether the
//! UD-vs-EQF conclusion is an artifact of exponential service.
//!
//! Expected: more variability hurts everyone (longer queueing tails),
//! but EQF's advantage persists at every CV² — its slack division
//! depends on predicted *means*, not on the distribution's shape.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;
use sda_workload::ServiceVariability;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// The CV² values swept (0 → deterministic, 0.25 → Erlang-4,
/// 1 → exponential, 4/16 → lognormal).
pub const CV2S: [f64; 5] = [0.0, 0.25, 1.0, 4.0, 16.0];

/// Runs the service-variability sweep at the SSP baseline load (0.5).
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy| {
        move |cv2: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.service = ServiceVariability::from_cv2(cv2);
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(SerialStrategy::UltimateDeadline)),
        SeriesSpec::new("EQF", mk(SerialStrategy::EqualFlexibility)),
    ];
    run_sweep(
        "Ext — service-time variability (CV² of all execution times), load 0.5",
        "CV²",
        &CV2S,
        &series,
        opts,
    )
}

/// Runs the heavy-tail (Pareto) variant: tail index sweep at load 0.5.
pub fn run_pareto(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy| {
        move |alpha: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.service = ServiceVariability::Pareto { alpha };
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(SerialStrategy::UltimateDeadline)),
        SeriesSpec::new("EQF", mk(SerialStrategy::EqualFlexibility)),
    ];
    run_sweep(
        "Ext — heavy-tailed (Pareto) execution times, load 0.5",
        "tail index α",
        &[1.5, 2.0, 2.5, 3.0],
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_advantage_survives_every_cv2() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 81,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        for &cv2 in &[0.25, 1.0, 4.0] {
            let ud = data.cell("UD", cv2).unwrap().md_global.mean;
            let eqf = data.cell("EQF", cv2).unwrap().md_global.mean;
            assert!(
                eqf < ud,
                "at CV²={cv2}, EQF ({eqf:.1}%) must beat UD ({ud:.1}%)"
            );
        }
        // More variability → more misses under either strategy.
        let low = data.cell("EQF", 0.0).unwrap().md_global.mean;
        let high = data.cell("EQF", 16.0).unwrap().md_global.mean;
        assert!(
            high > low,
            "higher CV² should hurt: {low:.1}% vs {high:.1}%"
        );
    }
}
