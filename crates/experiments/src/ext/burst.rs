//! Extension: time-varying workloads and feedback-adaptive assignment.
//!
//! The paper evaluates its strategies under stationary Poisson arrivals
//! only. This experiment opens the non-stationary regime on the §6
//! serial-parallel pipelines (2 stages × 3 branches, where both strategy
//! families engage) and adds the first strategy that *reacts* to the
//! observed load — `ADAPT(EQF)`, the EQF slack divider wrapped in the
//! miss-ratio feedback loop (see [`sda_core::AdaptiveSlack`]):
//!
//! * **burstiness** — `MD` vs the burst ratio of a 2-state MMPP arrival
//!   process (quiet/burst rate ratio; the interarrival coefficient of
//!   variation grows with it). Ratio 1 is exactly Poisson. The mean rate
//!   — and thus the long-run load — is held constant, so any degradation
//!   is pure burstiness;
//! * **overload-phase length** — `MD` vs the duration of a cyclic
//!   overload transient (a phased script spending 1/5 of each cycle at
//!   2.5× the quiet rate). Short phases are largely absorbed by
//!   queueing; long ones push the system through sustained saturation.
//!   Feedback pays most on the short-to-moderate transients, where
//!   tightened early-stage deadlines clear the global backlog before
//!   the next overload phase; under sustained saturation every strategy
//!   converges to the same (miss-dominated) operating point.
//!
//! Strategy grid: {UD, EQS, EQF, ADAPT(EQF)} serial × {DIV-1, GF}
//! parallel.

use sda_core::{AdaptiveSlack, ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;
use sda_workload::{ArrivalProcess, PhaseSegment};

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// MMPP quiet/burst rate ratios swept (1 = stationary Poisson).
pub const BURST_RATIOS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Overload-phase lengths swept (time units; the cycle is 5× as long).
/// The longest point's cycle (4 000 time units) still fits several times
/// into the default measurement horizon, so every point averages over
/// multiple transients.
pub const OVERLOAD_LENGTHS: [f64; 4] = [25.0, 100.0, 400.0, 800.0];

/// Mean dwell in the MMPP quiet state (time units).
pub const DWELL_QUIET: f64 = 300.0;

/// Mean dwell in the MMPP burst state (time units).
pub const DWELL_BURST: f64 = 100.0;

/// The long-run load of every sweep point — high enough that bursts and
/// overload phases push the system through transient saturation, low
/// enough that the stationary baseline is comfortably stable (so the
/// degradation measured is attributable to the arrival dynamics, not to
/// permanent saturation).
pub const LOAD: f64 = 0.65;

/// The rate factor of the overload phase in the phased sweep (the quiet
/// factor is 1; factors are mean-normalized, so the overload phase runs
/// at `LOAD · 2.5/1.3 ≈ 1.44` instantaneous load).
pub const OVERLOAD_FACTOR: f64 = 2.5;

/// The strategy grid: {UD, EQS, EQF, ADAPT(EQF)} × {DIV-1, GF}.
pub fn strategy_grid() -> Vec<(String, SdaStrategy)> {
    let parallels = [
        ParallelStrategy::div(1.0).expect("1.0 is valid"),
        ParallelStrategy::GlobalsFirst,
    ];
    let mut grid = Vec::new();
    for parallel in parallels {
        for serial in [
            SerialStrategy::UltimateDeadline,
            SerialStrategy::EqualSlack,
            SerialStrategy::EqualFlexibility,
        ] {
            let s = SdaStrategy::new(serial, parallel);
            grid.push((format!("{serial}/{parallel}"), s));
        }
        let adaptive = SdaStrategy::adaptive(
            SdaStrategy::new(SerialStrategy::EqualFlexibility, parallel),
            AdaptiveSlack::default(),
        );
        grid.push((format!("ADAPT(EQF)/{parallel}"), adaptive));
    }
    grid
}

/// The MMPP arrival process at the given burst ratio (Poisson at 1, so
/// the leftmost sweep point is the bit-exact stationary baseline).
pub fn mmpp_at(burst_ratio: f64) -> ArrivalProcess {
    if burst_ratio <= 1.0 {
        ArrivalProcess::Poisson
    } else {
        ArrivalProcess::Mmpp2 {
            burst_ratio,
            dwell_quiet: DWELL_QUIET,
            dwell_burst: DWELL_BURST,
        }
    }
}

/// The phased overload script: 4 parts quiet at factor 1, 1 part
/// overload at [`OVERLOAD_FACTOR`], cycle length `5 · phase_len`.
pub fn overload_script(phase_len: f64) -> ArrivalProcess {
    ArrivalProcess::Phased {
        segments: vec![
            PhaseSegment::new(4.0 * phase_len, 1.0),
            PhaseSegment::new(phase_len, OVERLOAD_FACTOR),
        ],
    }
}

fn pipeline_config(strategy: SdaStrategy, arrivals: ArrivalProcess) -> SystemConfig {
    let mut cfg = SystemConfig::combined_baseline(strategy);
    cfg.workload.load = LOAD;
    cfg.workload.arrivals = arrivals;
    cfg
}

/// Burstiness sweep: `MD` vs MMPP burst ratio.
pub fn burstiness(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |ratio: f64| {
                pipeline_config(strategy, mmpp_at(ratio))
            })
        })
        .collect();
    run_sweep(
        "Ext — burstiness (MMPP arrivals, pipelines)",
        "burst ratio",
        &BURST_RATIOS,
        &series,
        opts,
    )
}

/// Overload-transient sweep: `MD` vs overload-phase length.
pub fn overload_phase(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |phase_len: f64| {
                pipeline_config(strategy, overload_script(phase_len))
            })
        })
        .collect();
    run_sweep(
        "Ext — overload transients (phased arrivals, pipelines)",
        "overload phase length",
        &OVERLOAD_LENGTHS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(seed: u64) -> ExperimentOpts {
        ExperimentOpts {
            reps: 3,
            warmup: 500.0,
            duration: 12_000.0,
            seed,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        }
    }

    #[test]
    fn grid_has_eight_series_with_adaptive_entries() {
        let grid = strategy_grid();
        assert_eq!(grid.len(), 8);
        let adaptive: Vec<_> = grid.iter().filter(|(_, s)| s.is_adaptive()).collect();
        assert_eq!(adaptive.len(), 2);
        assert!(grid.iter().any(|(l, _)| l == "ADAPT(EQF)/DIV-1"));
        assert!(grid.iter().any(|(l, _)| l == "EQF/GF"));
    }

    #[test]
    fn burstiness_hurts_and_adaptation_pays() {
        let data = burstiness(&opts(71)).unwrap();
        // Burstiness alone (same mean load) raises the global miss
        // ratio for the static strategies.
        for label in ["UD/DIV-1", "EQF/DIV-1"] {
            let calm = data.cell(label, 1.0).unwrap().md_global.mean;
            let bursty = data.cell(label, 8.0).unwrap().md_global.mean;
            assert!(
                bursty > calm,
                "{label}: MD at ratio 8 ({bursty:.1}%) must exceed Poisson ({calm:.1}%)"
            );
        }
        // The feedback loop beats static EQF under heavy bursts.
        let adapt = data.cell("ADAPT(EQF)/DIV-1", 8.0).unwrap().md_global.mean;
        let eqf = data.cell("EQF/DIV-1", 8.0).unwrap().md_global.mean;
        assert!(
            adapt < eqf,
            "ADAPT(EQF) ({adapt:.1}%) must beat EQF ({eqf:.1}%) under bursty overload"
        );
    }

    #[test]
    fn overload_phases_hurt_and_adaptation_pays() {
        let data = overload_phase(&opts(72)).unwrap();
        // Short transients are absorbed by queueing; sustained overload
        // phases are not.
        let short = data.cell("EQF/DIV-1", 25.0).unwrap().md_global.mean;
        let long = data.cell("EQF/DIV-1", 400.0).unwrap().md_global.mean;
        assert!(
            long > short,
            "EQF/DIV-1: MD at phase 400 ({long:.1}%) must exceed phase 25 ({short:.1}%)"
        );
        // Feedback pays on transients it can recover from: at the short
        // phase the adaptive wrapper clears the backlog the static
        // divider accumulates. (Under sustained saturation — the long
        // phases — all strategies converge; no assertion there.)
        let adapt = data.cell("ADAPT(EQF)/DIV-1", 25.0).unwrap().md_global.mean;
        let eqf = data.cell("EQF/DIV-1", 25.0).unwrap().md_global.mean;
        assert!(
            adapt < eqf,
            "ADAPT(EQF) ({adapt:.1}%) must beat EQF ({eqf:.1}%) across overload transients"
        );
    }
}
