//! Extension: DAG-structured global tasks.
//!
//! The paper's global tasks are serial chains and fans; this experiment
//! opens the precedence-**DAG** axis ([`GlobalShape::Dag`]) and asks
//! whether the slack-division insight survives when "remaining work" is
//! a critical path through an arbitrary fan-out/fan-in graph rather
//! than a stage sum:
//!
//! * **edge density** — `MD` vs the optional-edge probability of random
//!   layered DAGs at fixed depth. Density 0 is a sparse skeleton (near
//!   tree-like, wide waves, little fan-in); density 1 makes consecutive
//!   layers fully connected — the stage-structured limit where the DAG
//!   decomposition is bit-identical to the `FlatRun` pipelines of §6.
//!   More edges mean more fan-in synchronization (a wave waits for its
//!   *last* predecessor) with the same offered work;
//! * **depth** — `MD` vs the number of layers at fixed width and
//!   density. Deeper DAGs give the serial strategies more decomposition
//!   points, exactly like the §4.3 subtask-count sweep did for chains.
//!
//! Strategy grid: {UD, EQS, EQF, ADAPT(EQF)} serial × {DIV-1, GF}
//! parallel — the same grid as the burst study, so the two extension
//! axes are directly comparable.

use sda_core::SdaStrategy;
use sda_system::SystemConfig;
use sda_workload::{GlobalShape, SlackRange};

use crate::ext::burst::strategy_grid;
use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Optional-edge probabilities swept (1.0 = stage-structured limit).
pub const EDGE_DENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// DAG depths (layer counts) swept.
pub const DEPTHS: [f64; 4] = [2.0, 3.0, 5.0, 8.0];

/// Layer width bound of every sweep point (widths drawn `U[1, 3]`).
pub const MAX_WIDTH: usize = 3;

/// The fixed depth of the edge-density sweep.
pub const DENSITY_SWEEP_DEPTH: usize = 4;

/// The fixed edge density of the depth sweep.
pub const DEPTH_SWEEP_DENSITY: f64 = 0.3;

/// The load of every sweep point — high enough that deadline assignment
/// matters, low enough that every point is stable.
pub const LOAD: f64 = 0.65;

/// The system configuration of one sweep point.
pub fn dag_config(strategy: SdaStrategy, depth: usize, edge_density: f64) -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(strategy);
    cfg.workload.load = LOAD;
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.shape = GlobalShape::Dag {
        depth,
        max_width: MAX_WIDTH,
        edge_density,
    };
    cfg
}

/// Edge-density sweep: `MD` vs the optional-edge probability.
pub fn edge_density(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |density: f64| {
                dag_config(strategy, DENSITY_SWEEP_DEPTH, density)
            })
        })
        .collect();
    run_sweep(
        "Ext — DAG edge density",
        "edge density",
        &EDGE_DENSITIES,
        &series,
        opts,
    )
}

/// Depth sweep: `MD` vs the number of DAG layers.
pub fn depth(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |depth: f64| {
                dag_config(strategy, depth as usize, DEPTH_SWEEP_DENSITY)
            })
        })
        .collect();
    run_sweep("Ext — DAG depth", "DAG depth", &DEPTHS, &series, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(seed: u64) -> ExperimentOpts {
        ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        }
    }

    #[test]
    fn configs_validate_across_the_grid() {
        for (_, strategy) in strategy_grid() {
            for &d in &EDGE_DENSITIES {
                let cfg = dag_config(strategy, DENSITY_SWEEP_DEPTH, d);
                assert!(cfg.workload.validate().is_ok());
            }
            for &d in &DEPTHS {
                let cfg = dag_config(strategy, d as usize, DEPTH_SWEEP_DENSITY);
                assert!(cfg.workload.validate().is_ok());
            }
        }
    }

    #[test]
    fn deadline_assignment_pays_on_dags() {
        let data = edge_density(&opts(81)).unwrap();
        // The slack-division insight survives the DAG generalization:
        // EQF/DIV-1 beats the do-nothing UD/DIV-1 baseline at every
        // density.
        for &d in &EDGE_DENSITIES {
            let ud = data.cell("UD/DIV-1", d).unwrap().md_global.mean;
            let eqf = data.cell("EQF/DIV-1", d).unwrap().md_global.mean;
            assert!(
                eqf < ud,
                "density {d}: EQF ({eqf:.1}%) must beat UD ({ud:.1}%)"
            );
        }
    }

    #[test]
    fn depth_stresses_serial_decomposition() {
        let data = depth(&opts(82)).unwrap();
        // Deeper DAGs are harder end to end for the do-nothing baseline
        // (same effect as the §4.3 chain-length sweep)…
        let shallow = data.cell("UD/DIV-1", 2.0).unwrap().md_global.mean;
        let deep = data.cell("UD/DIV-1", 8.0).unwrap().md_global.mean;
        assert!(
            deep > shallow,
            "UD/DIV-1: MD at depth 8 ({deep:.1}%) must exceed depth 2 ({shallow:.1}%)"
        );
        // …and the gap EQF closes grows with depth.
        let eqf_deep = data.cell("EQF/DIV-1", 8.0).unwrap().md_global.mean;
        assert!(
            eqf_deep < deep,
            "EQF/DIV-1 ({eqf_deep:.1}%) must beat UD/DIV-1 ({deep:.1}%) at depth 8"
        );
    }
}
