//! §5.3/ref.\[7\] — the Globals First deep dive.
//!
//! GF is "most outstanding under high load … and when there is a
//! nontrivial population of local tasks": sweep `frac_local` at load
//! 0.7 and compare UD, DIV-1 and GF on both classes.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Fraction-of-local sweep.
pub const FRACS: [f64; 4] = [0.25, 0.5, 0.75, 0.9];

/// Load at which the sweep runs.
pub const LOAD: f64 = 0.7;

/// Runs the GF study on the PSP baseline.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |parallel: ParallelStrategy| {
        move |frac: f64| {
            let mut cfg = SystemConfig::psp_baseline(SdaStrategy::new(
                SerialStrategy::UltimateDeadline,
                parallel,
            ));
            cfg.workload.load = LOAD;
            cfg.workload.frac_local = frac;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(ParallelStrategy::UltimateDeadline)),
        SeriesSpec::new("DIV-1", mk(ParallelStrategy::Div { x: 1.0 })),
        SeriesSpec::new("GF", mk(ParallelStrategy::GlobalsFirst)),
    ];
    run_sweep(
        "Ext — Globals First vs DIV-1 vs UD across frac_local (PSP, load 0.7)",
        "frac_local",
        &FRACS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_shines_with_many_locals() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 79,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let gf = data.cell("GF", 0.9).unwrap();
        let ud = data.cell("UD", 0.9).unwrap();
        assert!(
            gf.md_global.mean < ud.md_global.mean,
            "GF ({:.1}%) must beat UD ({:.1}%) for globals",
            gf.md_global.mean,
            ud.md_global.mean
        );
        // GF taxes the locals relative to UD.
        assert!(
            gf.md_local.mean + 0.5 >= ud.md_local.mean,
            "GF locals ({:.1}%) should not beat UD locals ({:.1}%)",
            gf.md_local.mean,
            ud.md_local.mean
        );
    }
}
