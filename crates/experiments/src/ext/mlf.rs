//! §4.3 extension — minimum-laxity-first as the local scheduling
//! algorithm instead of EDF.
//!
//! Expected: the basic conclusions are unchanged — EQF still beats UD
//! for global tasks; MLF mostly reshuffles which *individual* jobs win.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_sched::Policy;
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep.
pub const LOADS: [f64; 3] = [0.3, 0.5, 0.7];

/// Runs the MLF sweep: UD and EQF under MLF, with EDF-EQF as reference.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy, policy: Policy| {
        move |load: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.load = load;
            cfg.policy = policy;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new(
            "UD/MLF",
            mk(SerialStrategy::UltimateDeadline, Policy::MinimumLaxityFirst),
        ),
        SeriesSpec::new(
            "EQF/MLF",
            mk(SerialStrategy::EqualFlexibility, Policy::MinimumLaxityFirst),
        ),
        SeriesSpec::new(
            "EQF/EDF",
            mk(
                SerialStrategy::EqualFlexibility,
                Policy::EarliestDeadlineFirst,
            ),
        ),
    ];
    run_sweep(
        "Ext — minimum-laxity-first local schedulers, SSP baseline",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_beats_ud_under_mlf_too() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 73,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let ud = data.cell("UD/MLF", 0.5).unwrap().md_global.mean;
        let eqf = data.cell("EQF/MLF", 0.5).unwrap().md_global.mean;
        assert!(eqf < ud, "EQF/MLF ({eqf:.1}%) must beat UD/MLF ({ud:.1}%)");
    }
}
