//! Extension: fleet churn — deadline assignment under node failures.
//!
//! The paper's fleet is immortal. This experiment injects exponential
//! node crash/repair churn (per-node MTTF/MTTR, see
//! [`sda_system::FailureModel`]) into the §6 serial-parallel pipelines
//! over a constant-delay network, and asks how much of each strategy's
//! edge survives when nodes actually go down:
//!
//! * **failure rate** — `MD` vs the per-node failure rate `1/MTTF` at a
//!   fixed repair time. Rate 0 is the bit-exact failure-free baseline.
//!   Every crash loses the node's queue and any in-flight hand-offs to
//!   it; the process manager re-dispatches lost subtasks to survivors
//!   and re-decomposes the *remaining* deadline budget, so the sweep
//!   measures how gracefully each strategy absorbs that churn;
//! * **repair time** — `MD` vs MTTR at a fixed failure rate. Longer
//!   outages concentrate the surviving fleet's overload: the same crash
//!   count costs more when each crash removes a node for longer.
//!
//! Strategy grid: {UD, EQS, EQF, ADAPT(EQF)} serial × {DIV-1, GF}
//! parallel — the adaptive wrapper sees crashes only through the
//! miss-ratio feedback it already measures, so any advantage it shows
//! here comes for free.

use sda_core::SdaStrategy;
use sda_system::{FailureModel, NetworkModel, SystemConfig};

use crate::ext::burst::strategy_grid;
use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Per-node failure rates swept (`1/MTTF`; 0 = failures disabled, the
/// bit-exact baseline).
pub const FAILURE_RATES: [f64; 4] = [0.0, 0.001, 0.0025, 0.005];

/// Mean repair times swept at the fixed [`MTTR_SWEEP_RATE`].
pub const MTTRS: [f64; 4] = [10.0, 25.0, 50.0, 100.0];

/// Mean time to repair in the failure-rate sweep (time units).
pub const BASE_MTTR: f64 = 40.0;

/// Per-node failure rate in the repair-time sweep (`1/MTTF`).
pub const MTTR_SWEEP_RATE: f64 = 0.0025;

/// The long-run load of every sweep point — moderate, so the measured
/// degradation is attributable to churn rather than baseline
/// saturation.
pub const LOAD: f64 = 0.6;

/// Constant per-hop network delay: positive so re-dispatched hand-offs
/// pay real transit and the sharded engine genuinely runs concurrently.
pub const HOP_DELAY: f64 = 0.5;

fn churn_config(strategy: SdaStrategy, failure: FailureModel) -> SystemConfig {
    let mut cfg = SystemConfig::combined_baseline(strategy);
    cfg.workload.load = LOAD;
    cfg.network = NetworkModel::Constant { delay: HOP_DELAY };
    cfg.failure = failure;
    cfg
}

/// The failure model at a given per-node failure rate (`None` at 0, so
/// the leftmost sweep point is the bit-exact failure-free baseline).
pub fn failures_at(rate: f64, mttr: f64) -> FailureModel {
    if rate <= 0.0 {
        FailureModel::None
    } else {
        FailureModel::Exponential {
            mttf: 1.0 / rate,
            mttr,
        }
    }
}

/// Failure-rate sweep: `MD` vs per-node failure rate at MTTR
/// [`BASE_MTTR`].
pub fn failure_rate(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |rate: f64| {
                churn_config(strategy, failures_at(rate, BASE_MTTR))
            })
        })
        .collect();
    run_sweep(
        "Ext — fleet churn (failure rate, pipelines)",
        "failure rate",
        &FAILURE_RATES,
        &series,
        opts,
    )
}

/// Repair-time sweep: `MD` vs MTTR at failure rate [`MTTR_SWEEP_RATE`].
pub fn repair_time(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |mttr: f64| {
                churn_config(strategy, failures_at(MTTR_SWEEP_RATE, mttr))
            })
        })
        .collect();
    run_sweep(
        "Ext — fleet churn (repair time, pipelines)",
        "mean time to repair",
        &MTTRS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(seed: u64) -> ExperimentOpts {
        ExperimentOpts {
            reps: 3,
            warmup: 500.0,
            duration: 12_000.0,
            seed,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        }
    }

    #[test]
    fn churn_degrades_md_monotonically_and_loses_work() {
        let data = failure_rate(&opts(81)).unwrap();
        for label in ["UD/DIV-1", "EQF/DIV-1"] {
            let mut prev = f64::NEG_INFINITY;
            for &rate in &FAILURE_RATES {
                let cell = data.cell(label, rate).unwrap();
                let md = cell.md_global.mean;
                assert!(
                    md >= prev - 1.0,
                    "{label}: MD must not improve as the failure rate grows \
                     (rate {rate}: {md:.1}% after {prev:.1}%)"
                );
                prev = md;
            }
            let calm = data.cell(label, 0.0).unwrap();
            let churned = data.cell(label, FAILURE_RATES[3]).unwrap();
            assert!(
                churned.md_global.mean > calm.md_global.mean,
                "{label}: churn must raise MD_global \
                 ({:.1}% vs {:.1}%)",
                churned.md_global.mean,
                calm.md_global.mean
            );
            assert_eq!(calm.lost.mean, 0.0, "{label}: no losses without failures");
            assert!(
                churned.lost.mean > 0.0,
                "{label}: crashes must lose some work"
            );
        }
    }

    #[test]
    fn eqf_keeps_its_edge_under_churn() {
        // The paper's headline — EQF beats UD — must survive a churning
        // fleet: re-decomposition hands every strategy the same residual
        // budgets, so the slack-division advantage carries over.
        let data = failure_rate(&opts(82)).unwrap();
        for &rate in &FAILURE_RATES[1..] {
            let eqf = data.cell("EQF/DIV-1", rate).unwrap().md_global.mean;
            let ud = data.cell("UD/DIV-1", rate).unwrap().md_global.mean;
            assert!(
                eqf < ud,
                "EQF/DIV-1 ({eqf:.1}%) must beat UD/DIV-1 ({ud:.1}%) at failure rate {rate}"
            );
        }
    }

    #[test]
    fn longer_repairs_hurt() {
        let data = repair_time(&opts(83)).unwrap();
        let quick = data.cell("EQF/DIV-1", MTTRS[0]).unwrap().md_global.mean;
        let slow = data.cell("EQF/DIV-1", MTTRS[3]).unwrap().md_global.mean;
        assert!(
            slow > quick,
            "EQF/DIV-1: MD at MTTR {} ({slow:.1}%) must exceed MTTR {} ({quick:.1}%)",
            MTTRS[3],
            MTTRS[0]
        );
    }
}
