//! §4.3 extension — error in the execution-time predictions.
//!
//! `pex = ex · U[1−e, 1+e]` for error level `e`; UD (which ignores
//! predictions entirely) is the reference line. Expected: EQF/ED degrade
//! gracefully as `e` grows and still beat UD at full ±100% noise.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;
use sda_workload::PexModel;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Relative error half-widths, 0 (perfect) to 1 (±100%).
pub const ERRORS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Runs the prediction-error sweep at the SSP baseline load (0.5).
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy| {
        move |error: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.pex = if error == 0.0 {
                PexModel::Perfect
            } else {
                PexModel::Noisy { error }
            };
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(SerialStrategy::UltimateDeadline)),
        SeriesSpec::new("ED", mk(SerialStrategy::EffectiveDeadline)),
        SeriesSpec::new("EQF", mk(SerialStrategy::EqualFlexibility)),
    ];
    run_sweep(
        "Ext — prediction error pex = ex·U[1−e,1+e] (SSP baseline, load 0.5)",
        "error e",
        &ERRORS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_beats_ud_even_with_noisy_predictions() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 71,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        // UD ignores pex, so its curve is flat up to noise.
        let ud0 = data.cell("UD", 0.0).unwrap().md_global.mean;
        let ud1 = data.cell("UD", 1.0).unwrap().md_global.mean;
        assert!(
            (ud0 - ud1).abs() < 5.0,
            "UD should not react to prediction error: {ud0:.1} vs {ud1:.1}"
        );
        // EQF with ±100% noise still beats UD (the paper's conclusion
        // that results are robust to estimation error).
        let eqf1 = data.cell("EQF", 1.0).unwrap().md_global.mean;
        assert!(
            eqf1 < ud1,
            "noisy EQF ({eqf1:.1}%) should still beat UD ({ud1:.1}%)"
        );
    }
}
