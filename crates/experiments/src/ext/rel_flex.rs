//! §4.3 extension — the slack-tightness sweep (`rel_flex`).
//!
//! "The EQF gains are more significant when there is *moderate* slack
//! and load. If slack is too tight … or too loose … the SSP policy
//! cannot make a difference; in the intermediate range EQF wins big."

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Relative flexibility of globals, tight to loose.
pub const REL_FLEX: [f64; 6] = [0.125, 0.25, 0.5, 1.0, 4.0, 16.0];

/// Runs the rel_flex sweep at load 0.5: UD vs EQF.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy| {
        move |rel_flex: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.rel_flex = rel_flex;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(SerialStrategy::UltimateDeadline)),
        SeriesSpec::new("EQF", mk(SerialStrategy::EqualFlexibility)),
    ];
    run_sweep(
        "Ext — global slack tightness (rel_flex), SSP baseline, load 0.5",
        "rel_flex",
        &REL_FLEX,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_gain_peaks_at_moderate_slack() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 77,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let gain = |rf: f64| {
            data.cell("UD", rf).unwrap().md_global.mean
                - data.cell("EQF", rf).unwrap().md_global.mean
        };
        // Moderate slack gains exceed the very-loose-slack gains.
        assert!(
            gain(1.0) > gain(16.0),
            "moderate gain {:.1} should exceed loose gain {:.1}",
            gain(1.0),
            gain(16.0)
        );
        // Very loose slack: almost nothing to miss under either strategy.
        let eqf_loose = data.cell("EQF", 16.0).unwrap().md_global.mean;
        let ud_loose = data.cell("UD", 16.0).unwrap().md_global.mean;
        assert!(
            eqf_loose < 10.0 && ud_loose < 35.0,
            "loose slack should miss little: EQF {eqf_loose:.1}%, UD {ud_loose:.1}%"
        );
    }

    #[test]
    fn analytic_screen_skips_the_loose_slack_tail_bit_exactly() {
        // The slack-tightness grid spans predicted global miss ratios
        // from ~89% (rel_flex = 0.125) down to ~0.02% (rel_flex = 16):
        // with the [SCREEN_LO_PCT, SCREEN_HI_PCT] band the loose-slack
        // tail (rel_flex ∈ {4, 16}) is screened in both series while
        // the contested region is still simulated.
        let base = ExperimentOpts {
            reps: 2,
            warmup: 200.0,
            duration: 1_500.0,
            seed: 31,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let unscreened = run(&base).unwrap();
        let screened = run(&ExperimentOpts {
            screen: true,
            ..base
        })
        .unwrap();

        let mut n_screened = 0;
        let mut n_total = 0;
        for (si, label) in screened.series_labels.iter().enumerate() {
            for (xi, &rf) in screened.xs.iter().enumerate() {
                n_total += 1;
                let cell = &screened.cells[si][xi];
                if cell.md_global.is_screened() {
                    n_screened += 1;
                    // Every metric of a screened cell is marked.
                    assert!(cell.utilization.is_screened(), "{label} rf={rf}");
                    assert!(cell.md_local.is_screened(), "{label} rf={rf}");
                } else {
                    // Contested points keep the unscreened seed lineage,
                    // so the whole cell matches bit for bit.
                    assert_eq!(
                        cell, &unscreened.cells[si][xi],
                        "simulated cell diverged at {label} rf={rf}"
                    );
                }
            }
        }
        // The issue's acceptance bar: ≥ 25% of the default grid skipped
        // (here exactly the rel_flex ∈ {4, 16} tail of each series).
        assert!(
            n_screened * 4 >= n_total,
            "screened only {n_screened}/{n_total} points"
        );
        assert!(cellwise_screened(&screened, 4.0) && cellwise_screened(&screened, 16.0));
        // The CSV carries the literal marker for plotting scripts.
        let csv = screened.csv(crate::harness::Metric::MdGlobal);
        assert!(csv.contains(",screened"), "{csv}");
    }

    fn cellwise_screened(data: &SweepData, rf: f64) -> bool {
        ["UD", "EQF"]
            .iter()
            .all(|label| data.cell(label, rf).unwrap().md_global.is_screened())
    }
}
