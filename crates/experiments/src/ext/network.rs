//! Beyond the paper — heterogeneous nodes and communication delays.
//!
//! The paper's model assumes homogeneous nodes and free communication
//! (§3.2) and names both as the obvious generalizations. This experiment
//! opens that axis on the §6 serial-parallel workload (2-stage × 3-branch
//! pipelines, where both strategy families engage):
//!
//! * **delay sensitivity** — `MD` vs the mean of an exponential per-hop
//!   message delay, for the cross product {UD, EQS, EQF} × {DIV-1, GF}.
//!   Slack-dividing serial strategies reserve slack for expected transit
//!   (see `SspInput::comm_after`), so their advantage over UD should
//!   survive — and widen — as delay grows;
//! * **speed skew** — `MD` vs a linear per-node speed ramp `1 ± s`
//!   (mean speed exactly 1, so offered work is unchanged while per-node
//!   utilization spreads apart).

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::{NetworkModel, SystemConfig};

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Mean per-hop delays swept (0 = the paper's free communication, via
/// `NetworkModel::Zero`), in units of the mean subtask service time.
pub const DELAYS: [f64; 5] = [0.0, 0.1, 0.25, 0.5, 1.0];

/// Speed-skew factors swept: node `i` of `k` runs at
/// `1 + s·(2i/(k−1) − 1)`, i.e. a ramp from `1 − s` to `1 + s`.
pub const SKEWS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// The strategy grid: {UD, EQS, EQF} serial × {DIV-1, GF} parallel.
fn strategy_grid() -> Vec<(String, SdaStrategy)> {
    let serials = [
        SerialStrategy::UltimateDeadline,
        SerialStrategy::EqualSlack,
        SerialStrategy::EqualFlexibility,
    ];
    let parallels = [
        ParallelStrategy::div(1.0).expect("1.0 is valid"),
        ParallelStrategy::GlobalsFirst,
    ];
    let mut grid = Vec::new();
    for serial in serials {
        for parallel in parallels {
            let s = SdaStrategy::new(serial, parallel);
            grid.push((format!("{serial}/{parallel}"), s));
        }
    }
    grid
}

/// The linear speed ramp for skew `s` over `k` nodes (mean exactly 1).
pub fn speed_ramp(k: usize, s: f64) -> Vec<f64> {
    if k == 1 {
        return vec![1.0];
    }
    (0..k)
        .map(|i| 1.0 + s * (2.0 * i as f64 / (k - 1) as f64 - 1.0))
        .collect()
}

/// Delay-sensitivity sweep: `MD` vs mean exponential hop delay.
pub fn delay_sensitivity(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |mean_delay: f64| {
                let mut cfg = SystemConfig::combined_baseline(strategy);
                cfg.network = if mean_delay > 0.0 {
                    NetworkModel::Exponential { mean: mean_delay }
                } else {
                    NetworkModel::Zero
                };
                cfg
            })
        })
        .collect();
    run_sweep(
        "Ext — delay sensitivity (pipelines, exponential hop delay)",
        "mean delay",
        &DELAYS,
        &series,
        opts,
    )
}

/// Heterogeneity sweep: `MD` vs node speed skew.
pub fn speed_skew(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = strategy_grid()
        .into_iter()
        .map(|(label, strategy)| {
            SeriesSpec::new(label, move |skew: f64| {
                let mut cfg = SystemConfig::combined_baseline(strategy);
                let k = cfg.workload.nodes;
                cfg.workload.node_speeds = if skew > 0.0 {
                    Some(speed_ramp(k, skew))
                } else {
                    None
                };
                cfg
            })
        })
        .collect();
    run_sweep(
        "Ext — heterogeneous node speeds (pipelines, linear ramp)",
        "speed skew",
        &SKEWS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(seed: u64) -> ExperimentOpts {
        ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        }
    }

    #[test]
    fn speed_ramp_has_unit_mean_and_full_spread() {
        for k in [2, 3, 6, 10] {
            for s in [0.0, 0.3, 0.75] {
                let ramp = speed_ramp(k, s);
                assert_eq!(ramp.len(), k);
                let mean = ramp.iter().sum::<f64>() / k as f64;
                assert!((mean - 1.0).abs() < 1e-12, "k={k} s={s} mean={mean}");
                assert!((ramp[0] - (1.0 - s)).abs() < 1e-12);
                assert!((ramp[k - 1] - (1.0 + s)).abs() < 1e-12);
            }
        }
        assert_eq!(speed_ramp(1, 0.5), vec![1.0]);
    }

    #[test]
    fn delays_hurt_and_slack_reservation_helps() {
        let data = delay_sensitivity(&opts(91)).unwrap();
        // Delay raises the global miss ratio for every strategy.
        for label in &data.series_labels {
            let free = data.cell(label, 0.0).unwrap().md_global.mean;
            let slow = data.cell(label, 1.0).unwrap().md_global.mean;
            assert!(
                slow > free,
                "{label}: MD at delay 1.0 ({slow:.1}%) must exceed free ({free:.1}%)"
            );
        }
        // Transit is observed exactly when delays exist.
        let cell = data.cell("EQF/DIV-1", 0.5).unwrap();
        assert!(
            (cell.transit.mean - 0.5).abs() < 0.1,
            "transit mean {} ≉ 0.5",
            cell.transit.mean
        );
        assert_eq!(data.cell("EQF/DIV-1", 0.0).unwrap().transit.mean, 0.0);
        // The comm-aware slack divider keeps beating UD under delay.
        let eqf = data.cell("EQF/DIV-1", 0.5).unwrap().md_global.mean;
        let ud = data.cell("UD/DIV-1", 0.5).unwrap().md_global.mean;
        assert!(
            eqf < ud,
            "EQF ({eqf:.1}%) must beat UD ({ud:.1}%) under delay"
        );
    }

    #[test]
    fn speed_skew_degrades_service() {
        let data = speed_skew(&opts(92)).unwrap();
        // A strongly skewed system misses more than a balanced one: the
        // slow nodes bottleneck (utilization there scales as 1/(1−s)).
        for label in ["EQF/DIV-1", "UD/DIV-1"] {
            let balanced = data.cell(label, 0.0).unwrap().md_global.mean;
            let skewed = data.cell(label, 0.75).unwrap().md_global.mean;
            assert!(
                skewed > balanced,
                "{label}: MD at skew 0.75 ({skewed:.1}%) must exceed balanced ({balanced:.1}%)"
            );
        }
    }
}
