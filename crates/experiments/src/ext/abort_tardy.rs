//! §4.3 extension — firm deadlines: tardy jobs are discarded at
//! dispatch, and a discarded subtask kills its whole global task.
//!
//! Expected: aborting sheds the hopeless work, so at high load *both*
//! classes miss far less than under no-abort. A second effect the paper
//! hints at in §5.3 (components that "discard tasks with a past deadline
//! (virtual or not)") shows up clearly here: slack-dividing strategies
//! assign *tight* virtual deadlines, so under a firm policy their
//! subtasks are discarded earlier and more often than UD's — at low
//! load EQF can lose **more** global tasks than UD, inverting the
//! no-abort ordering. This is why reference \[7\] prefers DIV-x over GF
//! when tardy-abort is in force, and it applies to EQF as well.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::{OverloadPolicy, SystemConfig};

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep.
pub const LOADS: [f64; 4] = [0.3, 0.5, 0.7, 0.8];

/// Runs the abort-tardy sweep: UD and EQF under the firm policy, with
/// no-abort EQF as the reference.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy, overload: OverloadPolicy| {
        move |load: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.load = load;
            cfg.overload = overload;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new(
            "UD/abort",
            mk(SerialStrategy::UltimateDeadline, OverloadPolicy::AbortTardy),
        ),
        SeriesSpec::new(
            "EQF/abort",
            mk(SerialStrategy::EqualFlexibility, OverloadPolicy::AbortTardy),
        ),
        SeriesSpec::new(
            "EQF/no-abort",
            mk(SerialStrategy::EqualFlexibility, OverloadPolicy::NoAbort),
        ),
    ];
    run_sweep(
        "Ext — firm deadlines (abort tardy at dispatch), SSP baseline",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aborting_sheds_load_at_high_load() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 72,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        // At high load, aborting saves both classes relative to no-abort.
        let abort = data.cell("EQF/abort", 0.8).unwrap();
        let keep = data.cell("EQF/no-abort", 0.8).unwrap();
        assert!(
            abort.md_global.mean < keep.md_global.mean - 5.0,
            "firm EQF globals ({:.1}%) should miss far less than no-abort ({:.1}%)",
            abort.md_global.mean,
            keep.md_global.mean
        );
        assert!(
            abort.md_local.mean < keep.md_local.mean - 5.0,
            "firm EQF locals ({:.1}%) should miss far less than no-abort ({:.1}%)",
            abort.md_local.mean,
            keep.md_local.mean
        );
        // The inversion effect: at low load, EQF's tight virtual
        // deadlines get discarded more often than UD's.
        let eqf_low = data.cell("EQF/abort", 0.3).unwrap().md_global.mean;
        let ud_low = data.cell("UD/abort", 0.3).unwrap().md_global.mean;
        assert!(
            eqf_low > ud_low,
            "under firm virtual deadlines at low load, EQF ({eqf_low:.1}%) \
             discards more than UD ({ud_low:.1}%)"
        );
    }
}
