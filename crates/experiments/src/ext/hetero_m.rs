//! §4.3 extension — global tasks with *different* numbers of subtasks
//! (`m ~ U{1..8}` vs the fixed `m = 4` baseline).
//!
//! Expected: conclusions unchanged; EQF handles mixed task sizes as
//! well as homogeneous ones since it divides each task's own slack.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;
use sda_workload::GlobalShape;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep.
pub const LOADS: [f64; 3] = [0.3, 0.5, 0.7];

/// Runs the heterogeneous-m sweep: UD and EQF with `m ~ U{1..8}`.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy, shape: GlobalShape| {
        move |load: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.load = load;
            cfg.workload.shape = shape;
            cfg
        }
    };
    let mixed = GlobalShape::SerialRandomM { min_m: 1, max_m: 8 };
    let series = vec![
        SeriesSpec::new("UD m~U{1..8}", mk(SerialStrategy::UltimateDeadline, mixed)),
        SeriesSpec::new("EQF m~U{1..8}", mk(SerialStrategy::EqualFlexibility, mixed)),
        SeriesSpec::new(
            "EQF m=4",
            mk(
                SerialStrategy::EqualFlexibility,
                GlobalShape::Serial { m: 4 },
            ),
        ),
    ];
    run_sweep(
        "Ext — heterogeneous subtask counts (m ~ U{1..8})",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqf_still_wins_with_mixed_sizes() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 75,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let ud = data.cell("UD m~U{1..8}", 0.5).unwrap().md_global.mean;
        let eqf = data.cell("EQF m~U{1..8}", 0.5).unwrap().md_global.mean;
        assert!(eqf < ud, "EQF ({eqf:.1}%) must beat UD ({ud:.1}%)");
    }
}
