//! Section 6 — integrated SSP + PSP on serial-parallel tasks:
//! UD-UD, UD-DIV1, EQF-UD and EQF-DIV1.
//!
//! Expected shape (paper §6): UD-UD misses vastly more global deadlines
//! than local ones; either EQF or DIV-1 alone helps significantly (mild
//! local increment); together, EQF-DIV1 keeps `MD_global` close to
//! `MD_local` even at high load — the benefits are *additive*.

use sda_core::SdaStrategy;
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep for the combined experiment.
pub const LOADS: [f64; 4] = [0.3, 0.5, 0.7, 0.8];

/// Runs the §6 sweep: the four SSP×PSP combinations over [`LOADS`] on
/// pipelines of parallel fans (2 stages × 3 branches).
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |strategy: SdaStrategy| {
        move |load: f64| {
            let mut cfg = SystemConfig::combined_baseline(strategy);
            cfg.workload.load = load;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD-UD", mk(SdaStrategy::ud_ud())),
        SeriesSpec::new("UD-DIV1", mk(SdaStrategy::ud_div1())),
        SeriesSpec::new("EQF-UD", mk(SdaStrategy::eqf_ud())),
        SeriesSpec::new("EQF-DIV1", mk(SdaStrategy::eqf_div1())),
    ];
    run_sweep(
        "Sec 6 — SSP+PSP combinations on serial-parallel tasks (2 stages × 3 branches)",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec6_shape_holds_at_reduced_scale() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 61,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let at = |label: &str| data.cell(label, 0.7).unwrap();

        let udud = at("UD-UD");
        let eqfdiv = at("EQF-DIV1");
        // UD-UD: globals far worse than locals.
        assert!(
            udud.md_global.mean > udud.md_local.mean,
            "UD-UD: global {:.1}% vs local {:.1}%",
            udud.md_global.mean,
            udud.md_local.mean
        );
        // The full combination shrinks the class gap.
        let gap_udud = udud.md_global.mean - udud.md_local.mean;
        let gap_full = eqfdiv.md_global.mean - eqfdiv.md_local.mean;
        assert!(
            gap_full < gap_udud,
            "EQF-DIV1 gap {gap_full:.1} should be below UD-UD gap {gap_udud:.1}"
        );
        // Each single correction already helps global tasks.
        assert!(at("UD-DIV1").md_global.mean < udud.md_global.mean);
        assert!(at("EQF-UD").md_global.mean < udud.md_global.mean);
        // And the combination is at least as good as the best single one.
        let best_single = at("UD-DIV1")
            .md_global
            .mean
            .min(at("EQF-UD").md_global.mean);
        assert!(
            eqfdiv.md_global.mean <= best_single + 2.0,
            "EQF-DIV1 ({:.1}%) should be near or below best single ({best_single:.1}%)",
            eqfdiv.md_global.mean
        );
    }
}
