//! # sda-experiments — regenerating the paper's tables and figures
//!
//! One module (and one binary) per artifact of the paper's evaluation,
//! plus the §4.3/§5/§6 extension studies. Every module exposes a
//! `run(&ExperimentOpts) -> SweepData` function so the same code drives
//! the standalone binaries, the Criterion benches and the integration
//! tests.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 (baseline setting) | [`table1`] | `table1_baseline` |
//! | Fig. 2(a)/(b) — SSP baseline | [`fig2`] | `fig2_ssp_baseline` |
//! | Fig. 3 — frac_local sweep | [`fig3`] | `fig3_frac_local` |
//! | Fig. 4 — PSP baseline | [`fig4`] | `fig4_psp` |
//! | §6 — combined SSP+PSP | [`sec6`] | `sec6_combined` |
//! | §4.3 — prediction error | [`ext::pex_error`] | `ext_pex_error` |
//! | §4.3 — abort tardy | [`ext::abort_tardy`] | `ext_abort_tardy` |
//! | §4.3 — MLF scheduling | [`ext::mlf`] | `ext_mlf` |
//! | §4.3 — subtask count m | [`ext::subtask_count`] | `ext_subtask_count` |
//! | §4.3 — heterogeneous m | [`ext::hetero_m`] | `ext_hetero_m` |
//! | §4.3 — unbalanced nodes | [`ext::hetero_load`] | `ext_hetero_load` |
//! | §4.3 — rel_flex sweep | [`ext::rel_flex`] | `ext_rel_flex` |
//! | §5.3/ref.\[7\] — DIV-x sweep | [`ext::divx`] | `ext_divx_sweep` |
//! | §5.3/ref.\[7\] — GF deep dive | [`ext::gf`] | `ext_gf` |
//! | §7 future work — EQF + artificial stages | [`ext::eqf_as`] | `ext_eqf_as` |
//! | beyond the paper — service-time variability | [`ext::service_cv`] | `ext_service_cv` |
//! | beyond the paper — preemptive EDF servers | [`ext::preemption`] | `ext_preemption` |
//! | beyond the paper — node speeds & message delays | [`ext::network`] | `ext_network` |
//! | beyond the paper — time-varying workloads & ADAPT | [`ext::burst`] | `ext_burst` |
//! | beyond the paper — DAG-structured tasks | [`ext::dag`] | `ext_dag` |
//!
//! Binaries accept `--full` (paper-scale runs: 2 × 10⁶ time units),
//! `--quick` (CI-scale), `--smoke` (single-rep end-to-end exercise),
//! `--reps N`, `--duration T`, `--warmup T`, `--seed S`, `--threads N`,
//! `--shards N` (split each run across N cores via the sharded
//! conservative-parallel engine — results are identical for any shard
//! count), `--mailbox-capacity N` (explicit cross-shard mailbox bound;
//! a sweep point that overflows it aborts the sweep with a one-line
//! structured error instead of buffering without bound), and
//! `--screen` (analytic screening: grid points whose
//! closed-form predicted miss ratio falls outside
//! [`SCREEN_LO_PCT`]‥[`SCREEN_HI_PCT`] are not simulated; their cells
//! carry the analytic value with a `screened` CSV marker, while the
//! remaining points are bit-identical to an unscreened run); the
//! default scale sits between quick and full.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod harness;

pub mod ext;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod sec6;
pub mod table1;

pub use harness::{
    emit, run_sweep, sweep_or_exit, CellStats, ExperimentOpts, Metric, PointStat, RunError,
    SeriesSpec, SweepData, SCREEN_HI_PCT, SCREEN_LO_PCT,
};
