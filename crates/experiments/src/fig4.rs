//! Figure 4 — performance of UD and DIV-x in the PSP baseline
//! experiment (parallel fans of 4 subtasks on distinct nodes, slack
//! `U[1.25, 5.0]` for both classes), plus the GF strategy §5.3 discusses.
//!
//! Expected shape (paper §5.3):
//! * under UD, global tasks miss ≈3× as often as locals;
//! * DIV-1 pulls the two classes together (mild local penalty);
//! * DIV-2 ≈ DIV-1 except at very high load;
//! * GF further reduces `MD_global` significantly, at local expense.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// Load sweep; PSP effects dominate at mid-to-high load.
pub const LOADS: [f64; 5] = [0.2, 0.4, 0.6, 0.7, 0.8];

/// Runs the Figure 4 sweep: UD, DIV-1, DIV-2 and GF over [`LOADS`].
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |parallel: ParallelStrategy| {
        move |load: f64| {
            let mut cfg = SystemConfig::psp_baseline(SdaStrategy::new(
                SerialStrategy::UltimateDeadline,
                parallel,
            ));
            cfg.workload.load = load;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(ParallelStrategy::UltimateDeadline)),
        SeriesSpec::new("DIV-1", mk(ParallelStrategy::Div { x: 1.0 })),
        SeriesSpec::new("DIV-2", mk(ParallelStrategy::Div { x: 2.0 })),
        SeriesSpec::new("GF", mk(ParallelStrategy::GlobalsFirst)),
    ];
    run_sweep(
        "Fig 4 — PSP strategies, baseline (parallel m=4, slack U[1.25,5])",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_holds_at_reduced_scale() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 41,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        let at = |label: &str, load: f64| data.cell(label, load).unwrap();

        // UD: globals miss far more than locals at load 0.6.
        let ud = at("UD", 0.6);
        assert!(
            ud.md_global.mean > 1.8 * ud.md_local.mean,
            "UD global ({:.1}%) should be ≫ local ({:.1}%)",
            ud.md_global.mean,
            ud.md_local.mean
        );
        // DIV-1 narrows the gap.
        let div1 = at("DIV-1", 0.6);
        let ud_gap = ud.md_global.mean - ud.md_local.mean;
        let div1_gap = (div1.md_global.mean - div1.md_local.mean).abs();
        assert!(
            div1_gap < ud_gap,
            "DIV-1 gap {div1_gap:.1} should be below UD gap {ud_gap:.1}"
        );
        // DIV-1 reduces global misses vs UD.
        assert!(div1.md_global.mean < ud.md_global.mean);
        // GF reduces MD_global below DIV-1.
        let gf = at("GF", 0.6);
        assert!(
            gf.md_global.mean < div1.md_global.mean + 1.0,
            "GF ({:.1}%) should be at or below DIV-1 ({:.1}%)",
            gf.md_global.mean,
            div1.md_global.mean
        );
        // GF costs locals something.
        assert!(gf.md_local.mean >= ud.md_local.mean - 1.0);
    }
}
