//! Extension: number of subtasks per global task.

use sda_experiments::{emit, ext::subtask_count, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = subtask_count::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
