//! Extension: number of subtasks per global task.

use sda_experiments::{emit, ext::subtask_count, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(subtask_count::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
