//! Calibration report: checks the simulator against closed-form results
//! before trusting any figure it produces.
//!
//! * single node, locals only, FCFS → M/M/1: `E[R] = 1/(μ−λ)`,
//!   `ρ = λ/μ`, `L_q = ρ²/(1−ρ)`;
//! * the k-node baseline's utilization must equal the configured load;
//! * a serial global task's total work must be Erlang-m (mean m/μ).

use sda_core::SdaStrategy;
use sda_experiments::ExperimentOpts;
use sda_sched::Policy;
use sda_sim::rng::RngFactory;
use sda_system::{run_once, RunConfig, SystemConfig};
use sda_workload::{TaskFactory, WorkloadConfig};

fn check(name: &str, measured: f64, expected: f64, tolerance: f64) -> bool {
    let rel = if expected.abs() > 1e-12 {
        (measured - expected).abs() / expected.abs()
    } else {
        (measured - expected).abs()
    };
    let ok = rel <= tolerance;
    println!(
        "{:<44} measured {:>9.4}  expected {:>9.4}  ({:>5.1}% off) {}",
        name,
        measured,
        expected,
        rel * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    ok
}

fn main() {
    let opts = ExperimentOpts::from_args();
    let run = RunConfig {
        warmup: opts.warmup.max(2_000.0),
        duration: opts.duration.max(100_000.0),
        seed: opts.seed,
        order_fuzz: 0,
    };
    let mut all_ok = true;
    println!("== M/M/1 calibration (1 node, locals only, FCFS) ==");
    for rho in [0.3, 0.6, 0.8] {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        cfg.workload.nodes = 1;
        cfg.workload.frac_local = 1.0;
        cfg.workload.load = rho;
        cfg.policy = Policy::Fcfs;
        let result = run_once(&cfg, &run).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        all_ok &= check(
            &format!("E[R] at rho={rho}"),
            result.metrics.local.response().mean(),
            1.0 / (1.0 - rho),
            0.05,
        );
        all_ok &= check(
            &format!("utilization at rho={rho}"),
            result.mean_utilization(),
            rho,
            0.03,
        );
        all_ok &= check(
            &format!("L_q at rho={rho}"),
            result.node_queue_length[0],
            rho * rho / (1.0 - rho),
            0.10,
        );
    }

    println!("\n== Baseline system (Table 1) ==");
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let result = run_once(&cfg, &run).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    all_ok &= check(
        "mean node utilization == load",
        result.mean_utilization(),
        0.5,
        0.03,
    );

    println!("\n== Workload generator ==");
    let mut factory = TaskFactory::new(WorkloadConfig::baseline(), &RngFactory::new(run.seed))
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let n = 50_000;
    let mean_work: f64 = (0..n)
        .map(|_| factory.make_global(0.0).spec.total_ex())
        .sum::<f64>()
        / f64::from(n);
    all_ok &= check("E[global total work] (Erlang-4)", mean_work, 4.0, 0.02);
    let mean_gap: f64 = (0..n)
        .map(|_| factory.next_global_interarrival().unwrap())
        .sum::<f64>()
        / f64::from(n);
    all_ok &= check("E[global interarrival]", mean_gap, 1.0 / 0.1875, 0.02);

    println!();
    if all_ok {
        println!("model validation PASSED");
    } else {
        println!("model validation FAILED");
        std::process::exit(1);
    }
}
