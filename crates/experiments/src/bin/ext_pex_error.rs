//! Extension: sensitivity to execution-time prediction error.

use sda_experiments::{emit, ext::pex_error, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = pex_error::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
