//! Extension: sensitivity to execution-time prediction error.

use sda_experiments::{emit, ext::pex_error, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(pex_error::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
