//! Regenerates the Section 6 experiment: UD-UD, UD-DIV1, EQF-UD and
//! EQF-DIV1 on serial-parallel tasks.

use sda_experiments::{emit, sec6, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(sec6::run(&opts));
    emit(&data, &opts, &[Metric::MdLocal, Metric::MdGlobal]);
    println!("(paper: UD-UD misses vastly more global deadlines than local;");
    println!(" EQF or DIV-1 alone help; EQF-DIV1 keeps MD_global ≈ MD_local —");
    println!(" the benefits are additive)");
}
