//! Extension beyond the paper: preemptive EDF node servers.

use sda_experiments::{emit, ext::preemption, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = preemption::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
