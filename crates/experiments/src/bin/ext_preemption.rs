//! Extension beyond the paper: preemptive EDF node servers.

use sda_experiments::{emit, ext::preemption, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(preemption::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
