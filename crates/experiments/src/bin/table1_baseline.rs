//! Prints Table 1 (the baseline setting) and the derived arrival rates.

fn main() {
    print!("{}", sda_experiments::table1::render());
}
