//! Extension: firm deadlines (tardy jobs discarded at dispatch).

use sda_experiments::{emit, ext::abort_tardy, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(abort_tardy::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
