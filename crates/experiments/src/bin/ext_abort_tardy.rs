//! Extension: firm deadlines (tardy jobs discarded at dispatch).

use sda_experiments::{emit, ext::abort_tardy, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = abort_tardy::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
