//! Regenerates Figure 4: UD vs DIV-1/DIV-2 (and GF) on the PSP
//! baseline (parallel fans).

use sda_experiments::{emit, fig4, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(fig4::run(&opts));
    emit(&data, &opts, &[Metric::MdLocal, Metric::MdGlobal]);
    println!("(paper: under UD globals miss ≈3× as often as locals; DIV-1");
    println!(" equalizes the classes; DIV-2 ≈ DIV-1; GF cuts MD_global further");
    println!(" at local expense)");
}
