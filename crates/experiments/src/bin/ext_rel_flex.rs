//! Extension: global slack tightness (rel_flex sweep).

use sda_experiments::{emit, ext::rel_flex, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(rel_flex::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
