//! Extension: Globals First vs DIV-1 vs UD across frac_local.

use sda_experiments::{emit, ext::gf, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(gf::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
