//! Extension: unbalanced local loads (one hot node).

use sda_experiments::{emit, ext::hetero_load, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(hetero_load::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
