//! Extension: unbalanced local loads (one hot node).

use sda_experiments::{emit, ext::hetero_load, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = hetero_load::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
