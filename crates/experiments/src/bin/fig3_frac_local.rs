//! Regenerates Figure 3: UD vs EQF as the fraction of local tasks
//! varies at load 0.5.

use sda_experiments::{emit, fig3, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(fig3::run(&opts));
    emit(&data, &opts, &[Metric::MdLocal, Metric::MdGlobal]);
    println!("(paper: UD curves rise with frac_local — discrimination against");
    println!(" globals grows; EQF curves stay nearly flat)");
}
