//! Extension: time-varying workloads (MMPP bursts, phased overload
//! transients) and the feedback-adaptive `ADAPT(EQF)` strategy — the
//! non-stationary scenario axis the paper leaves open.

use sda_experiments::{emit, ext::burst, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let bursty = sweep_or_exit(burst::burstiness(&opts));
    emit(
        &bursty,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::GlobalResponse],
    );
    let phased = sweep_or_exit(burst::overload_phase(&opts));
    emit(
        &phased,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::GlobalResponse],
    );
}
