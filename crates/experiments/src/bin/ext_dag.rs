//! Extension: DAG-structured global tasks — `MD` vs edge density and vs
//! DAG depth under critical-path deadline decomposition (the precedence
//! axis the paper's serial-parallel trees leave open).

use sda_experiments::{emit, ext::dag, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let density = sweep_or_exit(dag::edge_density(&opts));
    emit(
        &density,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::GlobalResponse],
    );
    let depth = sweep_or_exit(dag::depth(&opts));
    emit(
        &depth,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::GlobalResponse],
    );
}
