//! Extension beyond the paper: service-time variability (CV² sweep and
//! heavy-tailed Pareto execution times).

use sda_experiments::{emit, ext::service_cv, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(service_cv::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
    let pareto = sweep_or_exit(service_cv::run_pareto(&opts));
    emit(&pareto, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
