//! Extension: minimum-laxity-first local schedulers.

use sda_experiments::{emit, ext::mlf, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = mlf::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
