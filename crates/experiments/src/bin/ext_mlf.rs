//! Extension: minimum-laxity-first local schedulers.

use sda_experiments::{emit, ext::mlf, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(mlf::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
