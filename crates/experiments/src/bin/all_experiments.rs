//! Runs every experiment in sequence and prints all tables — the data
//! behind EXPERIMENTS.md.

use sda_experiments::{ext, fig2, fig3, fig4, sec6, sweep_or_exit, table1, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    println!("{}", table1::render());

    let both = [Metric::MdLocal, Metric::MdGlobal];
    let sections: Vec<(&str, sda_experiments::SweepData)> = vec![
        ("Fig 2", sweep_or_exit(fig2::run(&opts))),
        ("Fig 3", sweep_or_exit(fig3::run(&opts))),
        ("Fig 4", sweep_or_exit(fig4::run(&opts))),
        ("Sec 6", sweep_or_exit(sec6::run(&opts))),
        ("Ext: pex error", sweep_or_exit(ext::pex_error::run(&opts))),
        (
            "Ext: abort tardy",
            sweep_or_exit(ext::abort_tardy::run(&opts)),
        ),
        ("Ext: MLF", sweep_or_exit(ext::mlf::run(&opts))),
        (
            "Ext: subtask count",
            sweep_or_exit(ext::subtask_count::run(&opts)),
        ),
        ("Ext: hetero m", sweep_or_exit(ext::hetero_m::run(&opts))),
        (
            "Ext: hetero load",
            sweep_or_exit(ext::hetero_load::run(&opts)),
        ),
        ("Ext: rel_flex", sweep_or_exit(ext::rel_flex::run(&opts))),
        ("Ext: DIV-x sweep", sweep_or_exit(ext::divx::run(&opts))),
        ("Ext: GF", sweep_or_exit(ext::gf::run(&opts))),
        (
            "Ext: EQF artificial stages",
            sweep_or_exit(ext::eqf_as::run(&opts)),
        ),
        (
            "Ext: service CV²",
            sweep_or_exit(ext::service_cv::run(&opts)),
        ),
        (
            "Ext: heavy tail (Pareto)",
            sweep_or_exit(ext::service_cv::run_pareto(&opts)),
        ),
        (
            "Ext: preemptive EDF",
            sweep_or_exit(ext::preemption::run(&opts)),
        ),
    ];
    for (name, data) in &sections {
        println!("==== {name} ====");
        for m in both {
            println!("{}", data.table(m));
        }
    }
}
