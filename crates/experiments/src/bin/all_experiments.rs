//! Runs every experiment in sequence and prints all tables — the data
//! behind EXPERIMENTS.md.

use sda_experiments::{ext, fig2, fig3, fig4, sec6, table1, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    println!("{}", table1::render());

    let both = [Metric::MdLocal, Metric::MdGlobal];
    let sections: Vec<(&str, sda_experiments::SweepData)> = vec![
        ("Fig 2", fig2::run(&opts)),
        ("Fig 3", fig3::run(&opts)),
        ("Fig 4", fig4::run(&opts)),
        ("Sec 6", sec6::run(&opts)),
        ("Ext: pex error", ext::pex_error::run(&opts)),
        ("Ext: abort tardy", ext::abort_tardy::run(&opts)),
        ("Ext: MLF", ext::mlf::run(&opts)),
        ("Ext: subtask count", ext::subtask_count::run(&opts)),
        ("Ext: hetero m", ext::hetero_m::run(&opts)),
        ("Ext: hetero load", ext::hetero_load::run(&opts)),
        ("Ext: rel_flex", ext::rel_flex::run(&opts)),
        ("Ext: DIV-x sweep", ext::divx::run(&opts)),
        ("Ext: GF", ext::gf::run(&opts)),
        ("Ext: EQF artificial stages", ext::eqf_as::run(&opts)),
        ("Ext: service CV²", ext::service_cv::run(&opts)),
        (
            "Ext: heavy tail (Pareto)",
            ext::service_cv::run_pareto(&opts),
        ),
        ("Ext: preemptive EDF", ext::preemption::run(&opts)),
    ];
    for (name, data) in &sections {
        println!("==== {name} ====");
        for m in both {
            println!("{}", data.table(m));
        }
    }
}
