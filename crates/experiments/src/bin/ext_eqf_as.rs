//! Extension: EQF with artificial stages (the paper's §7 future work).

use sda_experiments::{emit, ext::eqf_as, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(eqf_as::run(&opts));
    emit(
        &data,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::SubtaskMiss],
    );
}
