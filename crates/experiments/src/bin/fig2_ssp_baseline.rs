//! Regenerates Figure 2: the four SSP strategies at the baseline,
//! (a) local and (b) global missed-deadline percentages vs load.

use sda_experiments::{emit, fig2, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(fig2::run(&opts));
    emit(
        &data,
        &opts,
        &[Metric::MdLocal, Metric::MdGlobal, Metric::SubtaskMiss],
    );
    println!("(paper reference at load 0.5: MD_global(UD) ≈ 40%, MD_local(UD) ≈ 24%;");
    println!(" ordering UD > ED ≥ EQS ≈ EQF for global tasks)");
}
