//! Extension: heterogeneous node speeds and inter-node message delays —
//! the network-aware scenario axis the paper leaves open.

use sda_experiments::{emit, ext::network, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let delays = sweep_or_exit(network::delay_sensitivity(&opts));
    emit(
        &delays,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::Transit],
    );
    let skew = sweep_or_exit(network::speed_skew(&opts));
    emit(
        &skew,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::Utilization],
    );
}
