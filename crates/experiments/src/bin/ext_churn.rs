//! Extension: fleet churn — `MD` vs node failure rate and repair time
//! under crash/recovery churn with re-dispatch and mid-task deadline
//! re-decomposition.

use sda_experiments::{emit, ext::churn, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let rates = sweep_or_exit(churn::failure_rate(&opts));
    emit(
        &rates,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::Lost],
    );
    let repairs = sweep_or_exit(churn::repair_time(&opts));
    emit(
        &repairs,
        &opts,
        &[Metric::MdGlobal, Metric::MdLocal, Metric::Lost],
    );
}
