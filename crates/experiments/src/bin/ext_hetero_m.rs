//! Extension: heterogeneous subtask counts (m ~ U{1..8}).

use sda_experiments::{emit, ext::hetero_m, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(hetero_m::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
