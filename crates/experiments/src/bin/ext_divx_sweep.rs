//! Extension: choosing x for DIV-x.

use sda_experiments::{emit, ext::divx, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = divx::run(&opts);
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
