//! Extension: choosing x for DIV-x.

use sda_experiments::{emit, ext::divx, sweep_or_exit, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    let data = sweep_or_exit(divx::run(&opts));
    emit(&data, &opts, &[Metric::MdGlobal, Metric::MdLocal]);
}
