//! Figure 3 — effect of varying the fraction of local tasks
//! (`frac_local` from 0.1 to 0.95 at load 0.5), for UD and EQF.
//!
//! Expected shape (paper §4.2.2): under UD, `MD_global` *rises* steeply
//! with `frac_local` (globals face ever more discrimination), and
//! `MD_local` rises mildly; under EQF both curves stay nearly flat.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// The paper's x axis: `frac_local` from 0.1 to 0.95.
pub const FRACS: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95];

/// Runs the Figure 3 sweep: UD and EQF over [`FRACS`] at load 0.5.
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let mk = |serial: SerialStrategy| {
        move |frac: f64| {
            let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                serial,
                ParallelStrategy::UltimateDeadline,
            ));
            cfg.workload.frac_local = frac;
            cfg
        }
    };
    let series = vec![
        SeriesSpec::new("UD", mk(SerialStrategy::UltimateDeadline)),
        SeriesSpec::new("EQF", mk(SerialStrategy::EqualFlexibility)),
    ];
    run_sweep(
        "Fig 3 — varying the fraction of local tasks (load = 0.5)",
        "frac_local",
        &FRACS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_holds_at_reduced_scale() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 31,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        // UD's global misses rise with frac_local.
        let ud_lo = data.cell("UD", 0.1).unwrap().md_global.mean;
        let ud_hi = data.cell("UD", 0.95).unwrap().md_global.mean;
        assert!(
            ud_hi > ud_lo + 3.0,
            "UD global misses should rise with frac_local: {ud_lo:.1} → {ud_hi:.1}"
        );
        // EQF stays much flatter and below UD at high frac_local.
        let eqf_lo = data.cell("EQF", 0.1).unwrap().md_global.mean;
        let eqf_hi = data.cell("EQF", 0.95).unwrap().md_global.mean;
        assert!(
            (eqf_hi - eqf_lo).abs() < (ud_hi - ud_lo),
            "EQF must be flatter than UD: Δ_EQF={:.1}, Δ_UD={:.1}",
            eqf_hi - eqf_lo,
            ud_hi - ud_lo
        );
        assert!(eqf_hi < ud_hi, "EQF below UD at frac_local=0.95");
    }
}
