//! Table 1 — the baseline setting, plus the derived arrival rates.

use sda_workload::WorkloadConfig;

/// Renders Table 1 (the baseline parameters) together with the §4.1
/// rate derivation, so the reader can check the load equation closes.
pub fn render() -> String {
    let cfg = WorkloadConfig::baseline();
    let rates = cfg.rates().expect("baseline is valid");
    let mut out = String::new();
    out.push_str("TABLE 1 — BASELINE SETTING\n");
    out.push_str("--------------------------------------------------------\n");
    let rows: Vec<(&str, String)> = vec![
        ("Overload Management Policy", "No Abort".to_string()),
        (
            "Local Scheduling Algorithm",
            "Earliest Deadline First".to_string(),
        ),
        ("mu_subtask", format!("{:.1}", 1.0 / cfg.mean_subtask_ex)),
        ("mu_local", format!("{:.1}", 1.0 / cfg.mean_local_ex)),
        ("k (# of nodes)", cfg.nodes.to_string()),
        (
            "m (# of subtasks of a global task)",
            format!("{}", cfg.shape.expected_subtasks() as u64),
        ),
        ("load", format!("{:.1}", cfg.load)),
        ("frac_local", format!("{:.2}", cfg.frac_local)),
        (
            "[Smin, Smax]",
            format!("[{}, {}]", cfg.slack.min, cfg.slack.max),
        ),
        ("rel_flex", format!("{:.1}", cfg.rel_flex)),
        ("pex(X)/ex(X)", "1.0".to_string()),
    ];
    for (k, v) in rows {
        out.push_str(&format!("{k:<40} {v}\n"));
    }
    out.push_str("--------------------------------------------------------\n");
    out.push_str("Derived rates (section 4.1):\n");
    out.push_str(&format!(
        "lambda_local (per node)     = load*frac_local*mu_local          = {:.4}\n",
        rates.lambda_local_per_node
    ));
    out.push_str(&format!(
        "lambda_global (system-wide) = load*k*(1-frac_local)*mu_subtask/m = {:.4}\n",
        rates.lambda_global
    ));
    out.push_str(&format!(
        "expected work per global task = {:.1}; realized load = {:.4}\n",
        rates.expected_global_work,
        rates.load(cfg.nodes)
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_contains_every_baseline_row() {
        let t = super::render();
        for needle in [
            "No Abort",
            "Earliest Deadline First",
            "k (# of nodes)",
            "0.75",
            "[0.25, 2.5]",
            "0.3750",
            "0.1875",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }
}
