//! Shared experiment machinery: options, parallel sweep execution and
//! table formatting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use sda_system::{
    run_replications_sharded_with_capacity, run_replications_with_threads, RunConfig, SystemConfig,
};

pub use sda_system::RunError;

/// Run-scale options shared by all experiments.
///
/// Parse from the command line with [`ExperimentOpts::from_args`]; the
/// recognized flags are documented at the [crate root](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOpts {
    /// Independent replications per data point.
    pub reps: usize,
    /// Warm-up discarded before measurement (time units).
    pub warmup: f64,
    /// Measured duration per run (time units).
    pub duration: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for data-point parallelism (0 = all cores).
    pub threads: usize,
    /// Shards per run for the conservative-parallel engine (`--shards N`;
    /// 1 = serial). Runs whose network has zero lookahead fall back to
    /// the serial engine regardless, with identical results.
    pub shards: usize,
    /// Directory to write per-metric CSV files into (`--csv DIR`).
    pub csv_dir: Option<std::path::PathBuf>,
    /// Seed for the event-queue order-fuzz harness (`--order-fuzz S`;
    /// 0 = off). Non-zero values apply a seeded permutation to
    /// same-timestamp event ties — metrics must be invariant.
    pub order_fuzz: u64,
    /// Analytic screening (`--screen`): evaluate the closed-form
    /// predictor at every grid point first and skip simulating points
    /// whose predicted miss ratio is decisively uninteresting (outside
    /// [`SCREEN_LO_PCT`]‥[`SCREEN_HI_PCT`]). Skipped cells carry the
    /// analytic value with a `screened` marker; points the predictor
    /// cannot handle (adaptive strategies, non-Poisson arrivals, …) are
    /// always simulated.
    pub screen: bool,
    /// Explicit cross-shard mailbox capacity (`--mailbox-capacity N`;
    /// `None` = the engine default, 2¹⁴). Only meaningful with
    /// `--shards`; a window that buffers more than this many events
    /// aborts the sweep with a structured mailbox-overflow error
    /// instead of buffering without bound.
    #[serde(default)]
    pub mailbox_capacity: Option<usize>,
}

/// Lower edge of the "interesting" predicted-miss band (percent): grid
/// points predicted below this are screened out as trivially feasible.
pub const SCREEN_LO_PCT: f64 = 10.0;

/// Upper edge of the "interesting" predicted-miss band (percent): grid
/// points predicted above this are screened out as hopelessly overloaded.
pub const SCREEN_HI_PCT: f64 = 90.0;

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            reps: 3,
            warmup: 2_000.0,
            duration: 30_000.0,
            seed: 0x5DA_0001,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        }
    }
}

impl ExperimentOpts {
    /// The paper's scale: two independent runs of 10⁶ time units each.
    pub fn full() -> ExperimentOpts {
        ExperimentOpts {
            reps: 2,
            warmup: 10_000.0,
            duration: 1_000_000.0,
            ..ExperimentOpts::default()
        }
    }

    /// A fast setting for CI and smoke tests.
    pub fn quick() -> ExperimentOpts {
        ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            ..ExperimentOpts::default()
        }
    }

    /// The fastest setting that still exercises every code path: one
    /// replication per point, minimal horizon. `--smoke` exists so CI can
    /// run each sweep binary end to end on every push without burning
    /// minutes on statistical quality.
    pub fn smoke() -> ExperimentOpts {
        ExperimentOpts {
            reps: 1,
            warmup: 200.0,
            duration: 1_500.0,
            ..ExperimentOpts::default()
        }
    }

    /// Parses `std::env::args`, starting from the defaults.
    ///
    /// Unknown flags abort with a usage message on stderr (exit code 2)
    /// rather than being silently ignored.
    #[allow(clippy::disallowed_methods)] // argv parsing — see the sda-lint allow below
    pub fn from_args() -> ExperimentOpts {
        // sda-lint: allow(banned-api, reason = "sweep-binary entry point: argv is read once into ExperimentOpts before any simulation starts")
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!(
                "usage: [--full|--quick|--smoke] [--reps N] [--duration T] [--warmup T] \
                 [--seed S] [--threads N] [--shards N] [--mailbox-capacity N] [--csv DIR] \
                 [--order-fuzz S] [--screen]"
            );
            std::process::exit(2);
        })
    }

    /// Parses a flag list (exposed for tests).
    pub fn parse(args: &[String]) -> Result<ExperimentOpts, String> {
        let mut opts = ExperimentOpts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--full" => {
                    let f = ExperimentOpts::full();
                    opts.reps = f.reps;
                    opts.warmup = f.warmup;
                    opts.duration = f.duration;
                }
                "--quick" => {
                    let q = ExperimentOpts::quick();
                    opts.reps = q.reps;
                    opts.warmup = q.warmup;
                    opts.duration = q.duration;
                }
                "--smoke" => {
                    let s = ExperimentOpts::smoke();
                    opts.reps = s.reps;
                    opts.warmup = s.warmup;
                    opts.duration = s.duration;
                }
                "--reps" => {
                    opts.reps = value_of("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?;
                }
                "--duration" => {
                    opts.duration = value_of("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?;
                }
                "--warmup" => {
                    opts.warmup = value_of("--warmup")?
                        .parse()
                        .map_err(|e| format!("--warmup: {e}"))?;
                }
                "--seed" => {
                    opts.seed = value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    opts.threads = value_of("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--shards" => {
                    opts.shards = value_of("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                }
                "--csv" => {
                    opts.csv_dir = Some(value_of("--csv")?.into());
                }
                "--order-fuzz" => {
                    opts.order_fuzz = value_of("--order-fuzz")?
                        .parse()
                        .map_err(|e| format!("--order-fuzz: {e}"))?;
                }
                "--screen" => {
                    opts.screen = true;
                }
                "--mailbox-capacity" => {
                    opts.mailbox_capacity = Some(
                        value_of("--mailbox-capacity")?
                            .parse()
                            .map_err(|e| format!("--mailbox-capacity: {e}"))?,
                    );
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if opts.reps == 0 {
            return Err("--reps must be ≥ 1".to_string());
        }
        if opts.shards == 0 {
            return Err("--shards must be ≥ 1".to_string());
        }
        if opts.mailbox_capacity == Some(0) {
            return Err("--mailbox-capacity must be ≥ 1".to_string());
        }
        Ok(opts)
    }

    /// The per-run configuration implied by these options.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            warmup: self.warmup,
            duration: self.duration,
            seed: self.seed,
            order_fuzz: self.order_fuzz,
        }
    }

    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A point estimate with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointStat {
    /// Across-replication mean — or the closed-form analytic value for
    /// a screened point (see [`PointStat::is_screened`]).
    pub mean: f64,
    /// 95% CI half-width (infinite for a single replication; negative
    /// infinity marks an analytically screened point, which has no
    /// sampling error at all).
    pub half_width: f64,
}

impl PointStat {
    fn from_reps(reps: &sda_sim::stats::Replications) -> PointStat {
        match reps.confidence_interval() {
            Some(ci) => PointStat {
                mean: ci.mean,
                half_width: ci.half_width,
            },
            None => PointStat {
                mean: reps.mean(),
                half_width: f64::INFINITY,
            },
        }
    }

    /// An analytically screened point: `mean` is the closed-form
    /// prediction (possibly non-finite for metrics the predictor does
    /// not model), with no replications behind it.
    fn screened(mean: f64) -> PointStat {
        PointStat {
            mean,
            half_width: f64::NEG_INFINITY,
        }
    }

    /// Whether this point was analytically screened rather than
    /// simulated (`--screen`).
    pub fn is_screened(&self) -> bool {
        self.half_width == f64::NEG_INFINITY
    }
}

/// All the statistics collected at one (series, x) data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// `MD_local` in percent.
    pub md_local: PointStat,
    /// `MD_global` in percent.
    pub md_global: PointStat,
    /// Subtask-level virtual-deadline misses in percent.
    pub subtask_miss: PointStat,
    /// Mean node utilization.
    pub utilization: PointStat,
    /// Mean end-to-end global response time.
    pub global_response: PointStat,
    /// Mean local response time.
    pub local_response: PointStat,
    /// Mean hand-off transit time (0 under free communication).
    pub transit: PointStat,
    /// Mean jobs lost to node crashes per replication (locals dropped
    /// on a down node plus in-flight subtask copies). 0 with failures
    /// disabled.
    pub lost: PointStat,
}

/// Which metric of a [`CellStats`] to tabulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `MD_local` (%).
    MdLocal,
    /// `MD_global` (%).
    MdGlobal,
    /// Subtask virtual-deadline misses (%).
    SubtaskMiss,
    /// Mean node utilization.
    Utilization,
    /// Mean global response time.
    GlobalResponse,
    /// Mean local response time.
    LocalResponse,
    /// Mean hand-off transit time.
    Transit,
    /// Mean jobs lost to node crashes per replication.
    Lost,
}

impl Metric {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::MdLocal => "MD_local (%)",
            Metric::MdGlobal => "MD_global (%)",
            Metric::SubtaskMiss => "subtask virtual misses (%)",
            Metric::Utilization => "node utilization",
            Metric::GlobalResponse => "global response time",
            Metric::LocalResponse => "local response time",
            Metric::Transit => "hand-off transit time",
            Metric::Lost => "jobs lost to crashes",
        }
    }

    fn pick(&self, cell: &CellStats) -> PointStat {
        match self {
            Metric::MdLocal => cell.md_local,
            Metric::MdGlobal => cell.md_global,
            Metric::SubtaskMiss => cell.subtask_miss,
            Metric::Utilization => cell.utilization,
            Metric::GlobalResponse => cell.global_response,
            Metric::LocalResponse => cell.local_response,
            Metric::Transit => cell.transit,
            Metric::Lost => cell.lost,
        }
    }
}

/// One series of a sweep: a label plus a function building the
/// [`SystemConfig`] for each x value.
pub struct SeriesSpec {
    /// Display label (e.g. `"EQF"`, `"DIV-1"`).
    pub label: String,
    /// Builds the configuration at a given x.
    pub build: Box<dyn Fn(f64) -> SystemConfig + Send + Sync>,
}

impl SeriesSpec {
    /// Creates a series.
    pub fn new(
        label: impl Into<String>,
        build: impl Fn(f64) -> SystemConfig + Send + Sync + 'static,
    ) -> SeriesSpec {
        SeriesSpec {
            label: label.into(),
            build: Box::new(build),
        }
    }
}

/// The result grid of a sweep: `cells[series][x]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepData {
    /// Name of the experiment (used as the table title).
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// The x values.
    pub xs: Vec<f64>,
    /// Series labels, in order.
    pub series_labels: Vec<String>,
    /// `cells[series_index][x_index]`.
    pub cells: Vec<Vec<CellStats>>,
}

impl SweepData {
    /// Looks up a cell by series label and x value.
    pub fn cell(&self, label: &str, x: f64) -> Option<&CellStats> {
        let si = self.series_labels.iter().position(|l| l == label)?;
        let xi = self.xs.iter().position(|&v| (v - x).abs() < 1e-12)?;
        Some(&self.cells[si][xi])
    }

    /// Formats one metric as an aligned text table (x rows × series
    /// columns), the same layout as the paper's figures.
    pub fn table(&self, metric: Metric) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.title, metric.name()));
        out.push_str(&format!("{:>12}", self.x_label));
        for label in &self.series_labels {
            out.push_str(&format!("  {label:>16}"));
        }
        out.push('\n');
        for (xi, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x:>12.3}"));
            for si in 0..self.series_labels.len() {
                let p = metric.pick(&self.cells[si][xi]);
                if p.is_screened() {
                    // Analytic value, marked; same 18-char column width.
                    if p.mean.is_finite() {
                        out.push_str(&format!("  {:>10.2} (scr)", p.mean));
                    } else {
                        out.push_str(&format!("  {:>16}", "(scr)"));
                    }
                } else if p.half_width.is_finite() {
                    out.push_str(&format!("  {:>9.2} ±{:>5.2}", p.mean, p.half_width));
                } else {
                    out.push_str(&format!("  {:>16.2}", p.mean));
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering of one metric (for plotting).
    ///
    /// A single-replication point has no confidence interval; its
    /// half-width is `inf`, which most CSV readers reject as a number —
    /// such cells emit an *empty* half-width field instead. Analytically
    /// screened points (`--screen`) emit the closed-form value (empty if
    /// the predictor does not model this metric) with the literal marker
    /// `screened` in the half-width column.
    pub fn csv(&self, metric: Metric) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for label in &self.series_labels {
            out.push_str(&format!(",{label},{label}_hw"));
        }
        out.push('\n');
        for (xi, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for si in 0..self.series_labels.len() {
                let p = metric.pick(&self.cells[si][xi]);
                if p.is_screened() {
                    if p.mean.is_finite() {
                        out.push_str(&format!(",{},screened", p.mean));
                    } else {
                        out.push_str(",,screened");
                    }
                } else if p.half_width.is_finite() {
                    out.push_str(&format!(",{},{}", p.mean, p.half_width));
                } else {
                    out.push_str(&format!(",{},", p.mean));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Collapses a display string into a file-name slug: alphanumerics are
/// lowercased, every run of anything else becomes one `_`, and edge
/// underscores are trimmed.
fn slugify(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

/// Prints the tables for `metrics` and, when `--csv DIR` was given,
/// writes one CSV file per metric into the directory (created if
/// missing). File names are derived from the sweep title.
pub fn emit(data: &SweepData, opts: &ExperimentOpts, metrics: &[Metric]) {
    for m in metrics {
        println!("{}", data.table(*m));
    }
    let Some(dir) = &opts.csv_dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    // Slug over the *whole* title: several sweeps in one binary share
    // the prefix before the em-dash (e.g. "Ext — delay sensitivity" and
    // "Ext — heterogeneous node speeds"), and a prefix-only slug made
    // the second sweep overwrite the first's CSV files.
    let slug: String = slugify(&data.title);
    for m in metrics {
        let metric_slug = slugify(m.name());
        let path = dir.join(format!("{slug}_{metric_slug}.csv"));
        if let Err(e) = std::fs::write(&path, data.csv(*m)) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Runs a full sweep: every `(series, x)` pair is an independent
/// replicated experiment; points are executed in parallel across worker
/// threads.
///
/// With [`ExperimentOpts::screen`] set, each point is first evaluated by
/// the closed-form predictor ([`sda_analytic::predict()`]); points whose
/// predicted miss ratio falls outside [`SCREEN_LO_PCT`]‥[`SCREEN_HI_PCT`]
/// are not simulated and carry the analytic value instead (marked via
/// [`PointStat::is_screened`]). Simulated points keep the exact seed
/// lineage of an unscreened run, so their cells are bit-identical.
///
/// # Errors
///
/// Returns the first failing point's [`RunError`] (in deterministic
/// point order, independent of worker scheduling): `Config` if a
/// configuration fails validation, `MailboxOverflow` if a sharded run
/// overruns its cross-shard mailbox (`--shards` with a tight
/// `--mailbox-capacity`). The sweep binaries surface this as a one-line
/// `error: …` with a nonzero exit instead of a panic backtrace.
pub fn run_sweep(
    title: &str,
    x_label: &str,
    xs: &[f64],
    series: &[SeriesSpec],
    opts: &ExperimentOpts,
) -> Result<SweepData, RunError> {
    struct Point {
        si: usize,
        xi: usize,
        config: SystemConfig,
    }
    let mut points = Vec::with_capacity(series.len() * xs.len());
    for (si, s) in series.iter().enumerate() {
        for (xi, &x) in xs.iter().enumerate() {
            points.push(Point {
                si,
                xi,
                config: (s.build)(x),
            });
        }
    }

    let results: Mutex<Vec<Option<Result<CellStats, RunError>>>> =
        Mutex::new(vec![None; points.len()]);
    let next = AtomicUsize::new(0);
    let workers = opts.worker_count().min(points.len()).max(1);
    let base_run = opts.run_config();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let p = &points[i];
                // Analytic screening: skip simulating points whose
                // predicted miss ratio is decisively outside the
                // interesting band. The decision is pure closed-form —
                // it never consumes randomness — so the seed lineage of
                // every *simulated* point is identical to an unscreened
                // run and contested-region cells match bit for bit.
                if opts.screen {
                    if let Ok(pred) = sda_analytic::predict(&p.config) {
                        let miss = pred.screen_miss_pct();
                        if !(SCREEN_LO_PCT..=SCREEN_HI_PCT).contains(&miss) {
                            let cell = CellStats {
                                md_local: PointStat::screened(pred.local_miss_pct),
                                md_global: PointStat::screened(
                                    pred.global_miss_pct.unwrap_or(f64::NAN),
                                ),
                                subtask_miss: PointStat::screened(f64::NAN),
                                utilization: PointStat::screened(pred.mean_utilization),
                                global_response: PointStat::screened(
                                    pred.global_response.unwrap_or(f64::NAN),
                                ),
                                local_response: PointStat::screened(pred.local_response),
                                transit: PointStat::screened(p.config.network.expected_hop_delay()),
                                lost: PointStat::screened(0.0),
                            };
                            results.lock().expect("no poisoned lock")[i] = Some(Ok(cell));
                            continue;
                        }
                    }
                    // Predictor out of scope (adaptive strategy,
                    // non-Poisson arrivals, failures, …) → simulate.
                }
                // Give every point its own seed lineage so series/x
                // points are statistically independent.
                let run = RunConfig {
                    seed: base_run
                        .seed
                        .wrapping_add((p.si as u64) << 32)
                        .wrapping_add(p.xi as u64),
                    ..base_run
                };
                // The sweep already saturates the cores with one worker
                // per point; run the replications serially inside each
                // worker instead of nesting a second thread pool
                // (results are thread-count-invariant either way). With
                // `--shards N` the cores go *inside* each run instead:
                // useful for few-point/long-horizon sweeps where data
                // points are scarcer than cores. Results are identical
                // either way (shard count is not a semantic knob).
                let rep = if opts.shards > 1 {
                    run_replications_sharded_with_capacity(
                        &p.config,
                        &run,
                        opts.reps,
                        opts.shards,
                        opts.mailbox_capacity,
                    )
                } else {
                    run_replications_with_threads(&p.config, &run, opts.reps, 1)
                        .map_err(RunError::from)
                };
                let cell = rep.map(|rep| CellStats {
                    md_local: PointStat::from_reps(&rep.local_miss_pct),
                    md_global: PointStat::from_reps(&rep.global_miss_pct),
                    subtask_miss: PointStat::from_reps(&rep.subtask_miss_pct),
                    utilization: PointStat::from_reps(&rep.utilization),
                    global_response: PointStat::from_reps(&rep.global_response),
                    local_response: PointStat::from_reps(&rep.local_response),
                    transit: PointStat::from_reps(&rep.transit),
                    lost: PointStat::from_reps(&rep.lost),
                });
                results.lock().expect("no poisoned lock")[i] = Some(cell);
            });
        }
    });

    // Surface the first failure in deterministic *point* order (not
    // completion order), so the reported error is scheduling-invariant.
    let results = results.into_inner().expect("no poisoned lock");
    let mut cells = vec![vec![]; series.len()];
    for (p, cell) in points.iter().zip(results) {
        debug_assert_eq!(cells[p.si].len(), p.xi);
        cells[p.si].push(cell.expect("every point computed")?);
    }
    Ok(SweepData {
        title: title.to_string(),
        x_label: x_label.to_string(),
        xs: xs.to_vec(),
        series_labels: series.iter().map(|s| s.label.clone()).collect(),
        cells,
    })
}

/// Unwraps a sweep result in a binary's `main`: on error, prints the
/// structured one-line `error: …` to stderr and exits with status 1
/// (no panic backtrace).
pub fn sweep_or_exit(result: Result<SweepData, RunError>) -> SweepData {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_core::SdaStrategy;

    fn tiny_opts() -> ExperimentOpts {
        ExperimentOpts {
            reps: 2,
            warmup: 100.0,
            duration: 1_500.0,
            seed: 9,
            threads: 2,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        }
    }

    #[test]
    fn parse_flags() {
        let opts = ExperimentOpts::parse(&[
            "--reps".into(),
            "5".into(),
            "--duration".into(),
            "123.0".into(),
            "--seed".into(),
            "77".into(),
        ])
        .unwrap();
        assert_eq!(opts.reps, 5);
        assert_eq!(opts.duration, 123.0);
        assert_eq!(opts.seed, 77);
        assert!(ExperimentOpts::parse(&["--bogus".into()]).is_err());
        assert!(ExperimentOpts::parse(&["--reps".into()]).is_err());
        assert!(ExperimentOpts::parse(&["--reps".into(), "0".into()]).is_err());
        let sharded = ExperimentOpts::parse(&["--shards".into(), "4".into()]).unwrap();
        assert_eq!(sharded.shards, 4);
        assert!(ExperimentOpts::parse(&["--shards".into(), "0".into()]).is_err());
        let full = ExperimentOpts::parse(&["--full".into()]).unwrap();
        assert_eq!(full.duration, 1_000_000.0);
        let smoke = ExperimentOpts::parse(&["--smoke".into()]).unwrap();
        assert_eq!(smoke.reps, 1);
        assert!(smoke.duration < ExperimentOpts::quick().duration);
        assert!(!smoke.screen);
        let screened = ExperimentOpts::parse(&["--screen".into()]).unwrap();
        assert!(screened.screen);
    }

    #[test]
    fn parse_mailbox_capacity_flag() {
        assert_eq!(ExperimentOpts::default().mailbox_capacity, None);
        let opts = ExperimentOpts::parse(&["--mailbox-capacity".into(), "4096".into()]).unwrap();
        assert_eq!(opts.mailbox_capacity, Some(4096));
        assert!(ExperimentOpts::parse(&["--mailbox-capacity".into(), "0".into()]).is_err());
        assert!(ExperimentOpts::parse(&["--mailbox-capacity".into()]).is_err());
        assert!(ExperimentOpts::parse(&["--mailbox-capacity".into(), "many".into()]).is_err());
    }

    #[test]
    fn tiny_mailbox_fails_the_sweep_with_a_structured_error() {
        // Regression: a cross-shard mailbox overflow used to panic the
        // sweep worker thread (`expect("experiment configurations are
        // valid")`), tearing down the whole binary with a backtrace.
        // It must surface as a structured `RunError` instead.
        let build = |load: f64| {
            let mut c = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
            c.workload.load = load;
            c.network = sda_system::NetworkModel::Constant { delay: 1.0 };
            c
        };
        let series = vec![SeriesSpec::new("EQF", build)];
        let opts = ExperimentOpts {
            shards: 3,
            mailbox_capacity: Some(1),
            ..tiny_opts()
        };
        let err = run_sweep("tiny-mailbox", "load", &[0.6], &series, &opts)
            .expect_err("a 1-slot mailbox cannot hold a window of hand-offs");
        assert!(
            matches!(err, RunError::MailboxOverflow { capacity: 1, .. }),
            "unexpected error: {err:?}"
        );
        assert!(
            err.to_string().contains("mailbox overflow (capacity 1)"),
            "one-line message lost its context: {err}"
        );
        // A generous capacity on the same grid succeeds.
        let ok = run_sweep(
            "roomy-mailbox",
            "load",
            &[0.6],
            &series,
            &ExperimentOpts {
                mailbox_capacity: Some(1 << 14),
                ..opts
            },
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn screened_cells_render_with_marker() {
        let sim = PointStat {
            mean: 42.0,
            half_width: 1.5,
        };
        let cell = CellStats {
            md_local: PointStat::screened(3.25),
            md_global: PointStat::screened(f64::NAN),
            subtask_miss: sim,
            utilization: sim,
            global_response: sim,
            local_response: sim,
            transit: sim,
            lost: sim,
        };
        let data = SweepData {
            title: "screen-render".to_string(),
            x_label: "load".to_string(),
            xs: vec![0.5],
            series_labels: vec!["UD".to_string()],
            cells: vec![vec![cell]],
        };
        // Finite analytic value: emitted with the `screened` marker.
        assert_eq!(
            data.csv(Metric::MdLocal),
            "load,UD,UD_hw\n0.5,3.25,screened\n"
        );
        // Metric the predictor does not model: empty value, still marked.
        assert_eq!(data.csv(Metric::MdGlobal), "load,UD,UD_hw\n0.5,,screened\n");
        // Simulated metrics are untouched.
        assert_eq!(data.csv(Metric::Utilization), "load,UD,UD_hw\n0.5,42,1.5\n");
        // Table columns stay 18 characters wide in all three shapes.
        for (metric, needle) in [
            (Metric::MdLocal, "(scr)"),
            (Metric::MdGlobal, "(scr)"),
            (Metric::Utilization, "±"),
        ] {
            let table = data.table(metric);
            assert!(table.contains(needle), "{metric:?}: {table}");
        }
        let row = data.table(Metric::MdLocal);
        let line = row.lines().last().unwrap();
        assert_eq!(line.len(), 12 + 18, "column width changed: {line:?}");
    }

    #[test]
    fn sweep_produces_grid_and_tables() {
        let series = vec![
            SeriesSpec::new("UD", |load| {
                let mut c = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
                c.workload.load = load;
                c
            }),
            SeriesSpec::new("EQF", |load| {
                let mut c = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
                c.workload.load = load;
                c
            }),
        ];
        let data = run_sweep("smoke", "load", &[0.3, 0.5], &series, &tiny_opts()).unwrap();
        assert_eq!(data.cells.len(), 2);
        assert_eq!(data.cells[0].len(), 2);
        assert!(data.cell("UD", 0.5).is_some());
        assert!(data.cell("nope", 0.5).is_none());
        let table = data.table(Metric::MdGlobal);
        assert!(table.contains("MD_global"));
        assert!(table.contains("UD"));
        let csv = data.csv(Metric::MdLocal);
        assert!(csv.lines().count() == 3);
    }

    #[test]
    fn csv_emits_empty_half_width_for_single_replication() {
        // One replication → infinite half-width → the CSV cell must be
        // empty, not "inf" (which numeric CSV readers reject).
        let cell = CellStats {
            md_local: PointStat {
                mean: 12.5,
                half_width: f64::INFINITY,
            },
            md_global: PointStat {
                mean: 1.0,
                half_width: 0.5,
            },
            subtask_miss: PointStat {
                mean: 0.0,
                half_width: f64::INFINITY,
            },
            utilization: PointStat {
                mean: 0.5,
                half_width: 0.1,
            },
            global_response: PointStat {
                mean: 2.0,
                half_width: f64::INFINITY,
            },
            local_response: PointStat {
                mean: 1.0,
                half_width: 0.2,
            },
            transit: PointStat {
                mean: 0.0,
                half_width: f64::INFINITY,
            },
            lost: PointStat {
                mean: 0.0,
                half_width: f64::INFINITY,
            },
        };
        let data = SweepData {
            title: "single-rep".to_string(),
            x_label: "load".to_string(),
            xs: vec![0.5],
            series_labels: vec!["UD".to_string()],
            cells: vec![vec![cell]],
        };
        let csv = data.csv(Metric::MdLocal);
        assert_eq!(csv, "load,UD,UD_hw\n0.5,12.5,\n");
        assert!(!csv.contains("inf"));
        // Finite half-widths still round-trip.
        let csv = data.csv(Metric::MdGlobal);
        assert_eq!(csv, "load,UD,UD_hw\n0.5,1,0.5\n");
    }

    #[test]
    fn emit_writes_csv_files() {
        let series = vec![SeriesSpec::new("UD", |load| {
            let mut c = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
            c.workload.load = load;
            c
        })];
        #[allow(clippy::disallowed_methods)] // test scratch space, not simulation input
        let dir = std::env::temp_dir().join(format!("sda-emit-test-{}", std::process::id()));
        let opts = ExperimentOpts {
            csv_dir: Some(dir.clone()),
            ..tiny_opts()
        };
        let data = run_sweep("CSV smoke — test", "load", &[0.3], &series, &opts).unwrap();
        emit(&data, &opts, &[Metric::MdGlobal]);
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("csv dir created")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries.len(), 1, "{entries:?}");
        assert!(entries[0].ends_with(".csv"));
        let body = std::fs::read_to_string(dir.join(&entries[0])).unwrap();
        assert!(body.starts_with("load,UD,UD_hw"));
        assert_eq!(body.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slugs_distinguish_sweeps_sharing_a_prefix() {
        // Regression: the slug used to stop at the first em-dash, so
        // every "Ext — …" sweep in one binary overwrote the previous
        // sweep's CSV files.
        let a = slugify("Ext — burstiness (MMPP arrivals, pipelines)");
        let b = slugify("Ext — overload transients (phased arrivals, pipelines)");
        assert_ne!(a, b);
        assert_eq!(a, "ext_burstiness_mmpp_arrivals_pipelines");
        assert_eq!(slugify("MD_global (%)"), "md_global");
        assert_eq!(slugify("  — "), "");
    }

    #[test]
    fn sweep_is_invariant_across_shard_counts() {
        // `--shards` must be a pure performance knob: the same sweep run
        // through the sharded engine (positive-lookahead network, so the
        // shards genuinely run concurrently) produces the same grid.
        let build = |load: f64| {
            let mut c = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
            c.workload.load = load;
            c.network = sda_system::NetworkModel::Constant { delay: 1.0 };
            c
        };
        let mk = |shards| {
            let series = vec![SeriesSpec::new("EQF", build)];
            let opts = ExperimentOpts {
                shards,
                ..tiny_opts()
            };
            run_sweep("shards", "load", &[0.3, 0.6], &series, &opts)
        };
        let serial = mk(1);
        let sharded = mk(3);
        assert_eq!(serial, sharded, "shard count must not affect results");
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let build = |load: f64| {
            let mut c = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
            c.workload.load = load;
            c
        };
        let mk = |threads| {
            let series = vec![SeriesSpec::new("UD", build)];
            let opts = ExperimentOpts {
                threads,
                ..tiny_opts()
            };
            run_sweep("det", "load", &[0.2, 0.4], &series, &opts)
        };
        let a = mk(1);
        let b = mk(4);
        assert_eq!(a, b, "thread count must not affect results");
    }
}
