//! Figure 2 — performance of the four SSP strategies in the baseline
//! experiment: (a) local tasks, (b) global tasks, as load varies from
//! 0.1 to 0.5.
//!
//! Expected shape (paper §4.2.1):
//! * (a) the SSP strategy barely affects local tasks (75% of contention
//!   is local–local);
//! * (b) at load 0.5 the ordering is UD ≫ ED ≳ EQS ≈ EQF, with the paper
//!   citing `MD_global(UD) ≈ 40%` vs `MD_local(UD) ≈ 24%`.

use sda_core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda_system::SystemConfig;

use crate::harness::{run_sweep, ExperimentOpts, RunError, SeriesSpec, SweepData};

/// The paper's x axis: load from 0.1 to 0.5.
pub const LOADS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// Runs the Figure 2 sweep: all four SSP strategies over [`LOADS`].
pub fn run(opts: &ExperimentOpts) -> Result<SweepData, RunError> {
    let series: Vec<SeriesSpec> = SerialStrategy::ALL
        .iter()
        .map(|&s| {
            SeriesSpec::new(s.short_name(), move |load| {
                let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
                    s,
                    ParallelStrategy::UltimateDeadline,
                ));
                cfg.workload.load = load;
                cfg
            })
        })
        .collect();
    run_sweep(
        "Fig 2 — SSP strategies, baseline (serial m=4, frac_local=0.75)",
        "load",
        &LOADS,
        &series,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Metric;

    #[test]
    fn fig2_shape_holds_at_reduced_scale() {
        let opts = ExperimentOpts {
            reps: 2,
            warmup: 500.0,
            duration: 8_000.0,
            seed: 21,
            threads: 0,
            shards: 1,
            csv_dir: None,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
        };
        let data = run(&opts).unwrap();
        // (b): at load 0.5, EQF must beat UD for global tasks, clearly.
        let ud = data.cell("UD", 0.5).unwrap().md_global.mean;
        let eqf = data.cell("EQF", 0.5).unwrap().md_global.mean;
        assert!(
            eqf < ud,
            "EQF global miss ({eqf:.1}%) must beat UD ({ud:.1}%)"
        );
        // ED sits between UD and EQF (allow small statistical slop).
        let ed = data.cell("ED", 0.5).unwrap().md_global.mean;
        assert!(
            ed <= ud + 2.0 && ed + 2.0 >= eqf,
            "ED {ed:.1} between {eqf:.1} and {ud:.1}"
        );
        // (a): local misses barely depend on the strategy at load 0.5.
        let ud_l = data.cell("UD", 0.5).unwrap().md_local.mean;
        let eqf_l = data.cell("EQF", 0.5).unwrap().md_local.mean;
        assert!(
            (ud_l - eqf_l).abs() < 6.0,
            "local misses should be strategy-insensitive: {ud_l:.1} vs {eqf_l:.1}"
        );
        // Monotone-ish in load: higher load, more misses (every strategy).
        for label in ["UD", "EQF"] {
            let lo = data.cell(label, 0.1).unwrap().md_global.mean;
            let hi = data.cell(label, 0.5).unwrap().md_global.mean;
            assert!(hi > lo, "{label}: misses should grow with load");
        }
        let table = data.table(Metric::MdGlobal);
        assert!(table.contains("EQF"));
    }
}
