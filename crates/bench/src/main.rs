fn main() {
    println!("sda-bench: run `cargo bench` for the benchmark suite");
}
