//! `sda-bench` — the machine-readable hot-path benchmark runner.
//!
//! Criterion (under `cargo bench`) remains the statistical perf gate;
//! this binary is its quick, scriptable companion: it times the same
//! hot-path scenarios end to end, **interleaves** the samples of every
//! scenario round-robin (so thermal drift and background noise spread
//! evenly instead of biasing whichever variant runs last — the classic
//! A/B mistake), keeps the **best** sample per scenario (minimum wall
//! time ≈ least-perturbed run) and writes `BENCH_hot_path.json` for
//! CHANGES.md bookkeeping and cross-PR comparison.
//!
//! The scenario list covers the serial engine's four classic regimes
//! plus a shard-count sweep of the conservative-parallel engine on a
//! 96-node heterogeneous system under a constant-delay network (positive
//! lookahead, so the shards genuinely run concurrently). Every variant
//! of the sweep produces bit-identical metrics — only wall time may
//! differ — so the comparison is pure engine overhead vs. parallelism.
//! `host_cores` is recorded alongside the numbers: on a single-core
//! host the sharded variants *cannot* win (same work plus barrier and
//! merge overhead, no parallel hardware), and the JSON says so instead
//! of hiding it.
//!
//! Usage: `cargo run --release -p sda-bench [-- --samples N --out PATH]`

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Measuring wall time is this binary's purpose; the sda-lint allows
// below mark the individual reads. Clippy's disallowed lists (the
// native mirror of the same rules) are waived here wholesale.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

// sda-lint: allow(banned-api, reason = "wall time is the measurement this harness exists to take")
use std::time::Instant;

use sda_core::SdaStrategy;
use sda_experiments::ext::network::speed_ramp;
use sda_system::{run_once_sharded, NetworkModel, RunConfig, SystemConfig};
use sda_workload::{GlobalShape, SlackRange};

struct Scenario {
    name: &'static str,
    cfg: SystemConfig,
    run: RunConfig,
    shards: usize,
}

struct Sample {
    best_secs: f64,
    events: u64,
}

fn hot_run() -> RunConfig {
    RunConfig {
        warmup: 200.0,
        duration: 8_000.0,
        seed: 0x0907,
        order_fuzz: 0,
    }
}

fn high_load_config(preemptive: bool) -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9;
    cfg.preemptive = preemptive;
    cfg
}

fn arrival_heavy_config() -> SystemConfig {
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.95;
    cfg.workload.frac_local = 0.25;
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.shape = GlobalShape::SerialParallel {
        stages: 4,
        branches: 3,
    };
    cfg
}

fn dag_heavy_config() -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.95;
    cfg.workload.frac_local = 0.25;
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.shape = GlobalShape::Dag {
        depth: 4,
        max_width: 3,
        edge_density: 0.4,
    };
    cfg
}

/// The sharded engine's showcase: 96 heterogeneous nodes (linear speed
/// ramp, mean 1) under a constant 1.5-time-unit network — enough nodes
/// that each shard holds a substantial sub-system, and a lookahead wide
/// enough that windows amortize the two barriers they cost.
fn sharded_showcase_config() -> SystemConfig {
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.nodes = 96;
    cfg.workload.load = 0.9;
    cfg.workload.node_speeds = Some(speed_ramp(96, 0.4));
    cfg.network = NetworkModel::Constant { delay: 1.5 };
    cfg
}

fn scenarios() -> Vec<Scenario> {
    let mut list = vec![
        Scenario {
            name: "edf_rho09",
            cfg: high_load_config(false),
            run: hot_run(),
            shards: 1,
        },
        Scenario {
            name: "edf_rho09_preemptive",
            cfg: high_load_config(true),
            run: hot_run(),
            shards: 1,
        },
        Scenario {
            name: "pipelines_rho095",
            cfg: arrival_heavy_config(),
            run: hot_run(),
            shards: 1,
        },
        Scenario {
            name: "dag_rho095",
            cfg: dag_heavy_config(),
            run: hot_run(),
            shards: 1,
        },
    ];
    // The shard sweep shares one config and one run so the *only*
    // difference between its variants is the engine's shard count.
    let showcase_run = RunConfig {
        warmup: 200.0,
        duration: 2_000.0,
        seed: 0x0907,
        order_fuzz: 0,
    };
    for (name, shards) in [
        ("hetero96_net_serial", 1),
        ("hetero96_net_shards2", 2),
        ("hetero96_net_shards4", 4),
        ("hetero96_net_shards8", 8),
    ] {
        list.push(Scenario {
            name,
            cfg: sharded_showcase_config(),
            run: showcase_run,
            shards,
        });
    }
    list
}

fn main() {
    let mut samples = 3usize;
    let mut out = String::from("BENCH_hot_path.json");
    // sda-lint: allow(banned-api, reason = "CLI entry point: argv is read once, before any simulation state exists")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let list = scenarios();
    let mut results: Vec<Sample> = list
        .iter()
        .map(|_| Sample {
            best_secs: f64::INFINITY,
            events: 0,
        })
        .collect();

    // Interleave: one sample of every scenario per round.
    for round in 0..samples {
        for (i, s) in list.iter().enumerate() {
            // sda-lint: allow(banned-api, reason = "timing the run is the benchmark; determinism is asserted on events below")
            let start = Instant::now();
            let result = run_once_sharded(&s.cfg, &s.run, s.shards).expect("bench config is valid");
            let secs = start.elapsed().as_secs_f64();
            let r = &mut results[i];
            if round > 0 {
                assert_eq!(
                    r.events, result.events,
                    "{}: a benchmark run must be deterministic",
                    s.name
                );
            }
            r.events = result.events;
            if secs < r.best_secs {
                r.best_secs = secs;
            }
        }
        eprintln!("round {}/{samples} done", round + 1);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "{:<24} {:>7} {:>12} {:>10} {:>14}",
        "scenario", "shards", "events", "best ms", "events/s"
    );
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"scenarios\": {\n");
    for (i, (s, r)) in list.iter().zip(&results).enumerate() {
        let ms = r.best_secs * 1e3;
        let eps = r.events as f64 / r.best_secs;
        println!(
            "{:<24} {:>7} {:>12} {:>10.2} {:>14.0}",
            s.name, s.shards, r.events, ms, eps
        );
        json.push_str(&format!(
            "    \"{}\": {{ \"shards\": {}, \"events\": {}, \"best_ms\": {:.3}, \"events_per_sec\": {:.0} }}{}\n",
            s.name,
            s.shards,
            r.events,
            ms,
            eps,
            if i + 1 < list.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out, &json).expect("write benchmark json");
    eprintln!("wrote {out}");
}

fn usage() -> ! {
    eprintln!("usage: sda-bench [--samples N] [--out PATH]");
    std::process::exit(2);
}
