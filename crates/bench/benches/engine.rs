//! Micro-benchmarks of the simulation substrate: event-queue operations
//! and end-to-end engine throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sda_sim::{Context, Engine, EventQueue, SimTime, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Reversed times exercise the heap's worst insert path.
                    q.schedule(SimTime::from((n - i) as f64), i);
                }
                let mut sum = 0usize;
                while let Some(ev) = q.pop() {
                    sum += ev.event;
                }
                black_box(sum)
            });
        });
        group.bench_with_input(BenchmarkId::new("cancel_half", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let handles: Vec<_> = (0..n)
                    .map(|i| q.schedule(SimTime::from(i as f64), i))
                    .collect();
                for h in handles.iter().step_by(2) {
                    q.cancel(*h);
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
    }
    group.finish();
}

/// A self-driving model for raw engine throughput.
struct Pingpong {
    remaining: u64,
}

impl Simulation for Pingpong {
    type Event = ();
    fn handle(&mut self, ctx: &mut Context<()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(1.0, ());
        }
    }
}

fn bench_engine_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let events = 100_000u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("handle_100k_events", |b| {
        b.iter(|| {
            let mut engine = Engine::new(Pingpong { remaining: events });
            engine.context_mut().schedule_at(SimTime::ZERO, ());
            engine.run();
            black_box(engine.context().events_handled())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_engine_loop);
criterion_main!(benches);
