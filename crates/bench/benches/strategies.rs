//! Cost of the deadline-assignment strategies themselves: the per-subtask
//! computation a real process manager would run on its critical path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sda_core::{
    Completion, NodeId, ParallelStrategy, PspInput, SdaStrategy, SerialStrategy, SspInput, TaskRun,
    TaskSpec,
};

fn bench_ssp_formulas(c: &mut Criterion) {
    let pex_rest: Vec<f64> = (0..16).map(|i| 1.0 + i as f64 * 0.1).collect();
    let mut group = c.benchmark_group("ssp_deadline");
    for strategy in SerialStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.short_name()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    let input = SspInput {
                        submit_time: black_box(10.0),
                        global_deadline: black_box(100.0),
                        pex_current: black_box(2.0),
                        pex_remaining_after: black_box(&pex_rest),
                        comm_current: 0.0,
                        comm_after: 0.0,
                        slack_scale: 1.0,
                    };
                    black_box(s.deadline(&input))
                });
            },
        );
    }
    group.finish();
}

fn bench_psp_formulas(c: &mut Criterion) {
    let mut group = c.benchmark_group("psp_deadline");
    let strategies = [
        ("UD", ParallelStrategy::UltimateDeadline),
        ("DIV-1", ParallelStrategy::Div { x: 1.0 }),
        ("GF", ParallelStrategy::GlobalsFirst),
    ];
    for (name, s) in strategies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let input = PspInput {
                    arrival_time: black_box(10.0),
                    global_deadline: black_box(100.0),
                    branch_count: black_box(8),
                    comm_current: 0.0,
                    comm_after: 0.0,
                    slack_scale: 1.0,
                };
                black_box(s.deadline(&input))
            });
        });
    }
    group.finish();
}

fn chain(m: usize) -> TaskSpec {
    TaskSpec::serial(
        (0..m)
            .map(|i| TaskSpec::simple(NodeId::new(i as u32 % 6), 1.0, 1.0))
            .collect(),
    )
}

fn bench_taskrun_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("taskrun");
    for &m in &[4usize, 16, 64] {
        let spec = chain(m);
        let strategy = SdaStrategy::eqf_div1();
        group.bench_with_input(BenchmarkId::new("serial_chain", m), &m, |b, _| {
            b.iter(|| {
                let mut run = TaskRun::new(&spec, 0.0, 2.0 * m as f64).unwrap();
                let mut pending = run.start(&strategy, 0.0);
                let mut now = 0.0;
                while let Some(sub) = pending.pop() {
                    now += sub.ex;
                    match run.complete(sub.subtask, &strategy, now) {
                        Completion::Submitted(next) => pending.extend(next),
                        Completion::Finished => break,
                    }
                }
                black_box(now)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ssp_formulas,
    bench_psp_formulas,
    bench_taskrun_lifecycle
);
criterion_main!(benches);
