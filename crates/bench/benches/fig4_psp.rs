//! Figure 4 regression bench: the PSP baseline (UD, DIV-1, DIV-2, GF)
//! at a reduced scale, with the regenerated series printed once.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sda_experiments::{fig4, ExperimentOpts, Metric};

fn bench_fig4(c: &mut Criterion) {
    let print_opts = ExperimentOpts {
        reps: 2,
        warmup: 500.0,
        duration: 8_000.0,
        seed: 0xF164,
        threads: 0,
        shards: 1,
        order_fuzz: 0,
        screen: false,
        mailbox_capacity: None,
        csv_dir: None,
    };
    let data = fig4::run(&print_opts).unwrap();
    println!("{}", data.table(Metric::MdLocal));
    println!("{}", data.table(Metric::MdGlobal));

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("psp_baseline_sweep_reduced", |b| {
        let opts = ExperimentOpts {
            reps: 1,
            warmup: 200.0,
            duration: 2_000.0,
            seed: 0xF164,
            threads: 0,
            shards: 1,
            order_fuzz: 0,
            screen: false,
            mailbox_capacity: None,
            csv_dir: None,
        };
        b.iter(|| black_box(fig4::run(&opts).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
