//! The perf-gate bench for the simulation hot path: end-to-end events/sec
//! of the full system model in the paper's hardest regime — high
//! utilization (ρ = 0.9), EDF, non-preemptive — plus a preemptive
//! variant that exercises completion invalidation.
//!
//! Record the `events_per_sec` throughput numbers in `CHANGES.md` when
//! touching the event loop; they are the baseline later PRs compare
//! against.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sda_core::SdaStrategy;
use sda_system::{run_once, RunConfig, SystemConfig};

fn high_load_config(preemptive: bool) -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9;
    cfg.preemptive = preemptive;
    cfg
}

fn run(cfg: &SystemConfig) -> u64 {
    let run_cfg = RunConfig {
        warmup: 200.0,
        duration: 8_000.0,
        seed: 0x0907,
    };
    let result = run_once(cfg, &run_cfg).expect("baseline config is valid");
    result.events
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");

    // Calibrate throughput from the actual event count of one run so the
    // reported rate is true events/sec.
    let cfg = high_load_config(false);
    let events = run(&cfg);
    group.throughput(Throughput::Elements(events));
    group.bench_function("edf_rho09_events_per_sec", |b| {
        b.iter(|| black_box(run(&cfg)));
    });

    let cfg_preempt = high_load_config(true);
    let events_preempt = run(&cfg_preempt);
    group.throughput(Throughput::Elements(events_preempt));
    group.bench_function("edf_rho09_preemptive_events_per_sec", |b| {
        b.iter(|| black_box(run(&cfg_preempt)));
    });

    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
