//! The perf-gate bench for the simulation hot path: end-to-end events/sec
//! of the full system model in the paper's hardest regime — high
//! utilization (ρ = 0.9), EDF, non-preemptive — plus a preemptive
//! variant that exercises completion invalidation, and an
//! *arrival-heavy* scenario (ρ = 0.95, mostly global traffic in deep
//! serial-parallel pipelines) that stresses the task-generation and
//! lifecycle path rather than the event loop itself.
//!
//! Record the `events_per_sec` throughput numbers in `CHANGES.md` when
//! touching the event loop or the task lifecycle; they are the baseline
//! later PRs compare against.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sda_core::SdaStrategy;
use sda_system::{run_once, RunConfig, SystemConfig};
use sda_workload::{GlobalShape, SlackRange};

fn high_load_config(preemptive: bool) -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9;
    cfg.preemptive = preemptive;
    cfg
}

/// The allocation-path stressor: ρ = 0.95 with 75% of the load carried
/// by global tasks shaped as 4-stage × 3-branch pipelines (12 subtasks
/// per task), so per-arrival task construction, deadline decomposition
/// and precedence bookkeeping — not just the event loop — dominate.
fn arrival_heavy_config() -> SystemConfig {
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.95;
    cfg.workload.frac_local = 0.25;
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.shape = GlobalShape::SerialParallel {
        stages: 4,
        branches: 3,
    };
    cfg
}

/// The DAG-path stressor: the same arrival-heavy regime (ρ = 0.95, 75%
/// global load) with random layered DAGs instead of pipelines, so wave
/// activation, CSR fan-in countdown and the per-task reverse-topological
/// critical-path pass sit on the measured path.
fn dag_heavy_config() -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.95;
    cfg.workload.frac_local = 0.25;
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.shape = GlobalShape::Dag {
        depth: 4,
        max_width: 3,
        edge_density: 0.4,
    };
    cfg
}

fn run(cfg: &SystemConfig) -> u64 {
    let run_cfg = RunConfig {
        warmup: 200.0,
        duration: 8_000.0,
        seed: 0x0907,
        order_fuzz: 0,
    };
    let result = run_once(cfg, &run_cfg).expect("baseline config is valid");
    result.events
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");

    // Calibrate throughput from the actual event count of one run so the
    // reported rate is true events/sec.
    let cfg = high_load_config(false);
    let events = run(&cfg);
    group.throughput(Throughput::Elements(events));
    group.bench_function("edf_rho09_events_per_sec", |b| {
        b.iter(|| black_box(run(&cfg)));
    });

    let cfg_preempt = high_load_config(true);
    let events_preempt = run(&cfg_preempt);
    group.throughput(Throughput::Elements(events_preempt));
    group.bench_function("edf_rho09_preemptive_events_per_sec", |b| {
        b.iter(|| black_box(run(&cfg_preempt)));
    });

    let cfg_arrivals = arrival_heavy_config();
    let events_arrivals = run(&cfg_arrivals);
    group.throughput(Throughput::Elements(events_arrivals));
    group.bench_function("pipelines_rho095_events_per_sec", |b| {
        b.iter(|| black_box(run(&cfg_arrivals)));
    });

    let cfg_dag = dag_heavy_config();
    let events_dag = run(&cfg_dag);
    group.throughput(Throughput::Elements(events_dag));
    group.bench_function("dag_rho095_events_per_sec", |b| {
        b.iter(|| black_box(run(&cfg_dag)));
    });

    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
