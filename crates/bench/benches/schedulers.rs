//! Ready-queue operation cost under every discipline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sda_core::TaskId;
use sda_sched::{Job, Policy, ReadyQueue};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("ready_queue");
    let n = 10_000usize;
    group.throughput(Throughput::Elements(n as u64));
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::new("push_pop_10k", policy.short_name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut q = ReadyQueue::new(policy);
                    for i in 0..n {
                        // Scatter deadlines so EDF/MLF heaps do real work.
                        let dl = ((i * 7919) % n) as f64;
                        let pex = 0.5 + ((i * 104_729) % 100) as f64 / 100.0;
                        let mut job = Job::local(TaskId::new(i as u64), 0.0, pex, dl);
                        job.pex = pex;
                        q.push(job);
                    }
                    let mut sum = 0.0;
                    while let Some(j) = q.pop() {
                        sum += j.deadline;
                    }
                    black_box(sum)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_push_pop);
criterion_main!(benches);
