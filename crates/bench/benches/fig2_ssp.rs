//! Figure 2 regression bench: regenerates the SSP-baseline sweep at a
//! reduced scale and times it. The printed tables are the figure's
//! series; run the `fig2_ssp_baseline` binary (optionally `--full`) for
//! paper-scale output.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sda_experiments::{fig2, ExperimentOpts, Metric};

fn reduced_opts() -> ExperimentOpts {
    ExperimentOpts {
        reps: 1,
        warmup: 200.0,
        duration: 2_000.0,
        seed: 0xF162,
        threads: 0,
        shards: 1,
        order_fuzz: 0,
        screen: false,
        mailbox_capacity: None,
        csv_dir: None,
    }
}

fn bench_fig2(c: &mut Criterion) {
    // Regenerate and print the figure once at a moderate scale so the
    // bench run leaves the actual series in its log.
    let print_opts = ExperimentOpts {
        reps: 2,
        warmup: 500.0,
        duration: 8_000.0,
        seed: 0xF162,
        threads: 0,
        shards: 1,
        order_fuzz: 0,
        screen: false,
        mailbox_capacity: None,
        csv_dir: None,
    };
    let data = fig2::run(&print_opts).unwrap();
    println!("{}", data.table(Metric::MdLocal));
    println!("{}", data.table(Metric::MdGlobal));

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("ssp_baseline_sweep_reduced", |b| {
        let opts = reduced_opts();
        b.iter(|| black_box(fig2::run(&opts).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
