//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace. The matching `serde` stub blanket-implements its marker
//! traits, so the derives only have to *accept* the input (including
//! `#[serde(...)]` helper attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; the stub `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; the stub `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
