//! Offline stand-in for the subset of the `criterion` bench API this
//! workspace uses — but one that really measures.
//!
//! No crates.io access means no real criterion; rather than stub the
//! benches out, this crate re-implements the API surface
//! (`criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`]) over `std::time::Instant`: each benchmark is warmed up,
//! then timed over enough iterations to fill the group's measurement
//! window, and the median-of-samples ns/iteration plus derived throughput
//! is printed in a criterion-like one-line format. Good enough for
//! before/after comparisons on the same machine, which is all the perf
//! acceptance gates here need.

#![forbid(unsafe_code)]
// Wall-clock timing is this crate's entire purpose (it is the benchmark
// harness); it is `exempt`-tier in analysis/lints.toml for the same
// reason.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks `f` directly, outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, like `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing throughput settings and a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total time budget spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
    }

    /// Ends the group. (Reports are printed as each bench completes.)
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns_per_iter: Vec::new(),
        };
        f(&mut bencher);
        report(&label, &bencher.samples_ns_per_iter, self.throughput);
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, discarding a warm-up and then collecting the
    /// configured number of samples within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fit ~1/20 of
        // the measurement window, so each sample is long enough to trust
        // Instant but short enough to collect sample_size of them.
        let calibrate_start = Instant::now();
        black_box(routine());
        let once = calibrate_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / (self.sample_size as u32).max(1);
        let iters_per_sample =
            (per_sample.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e9) as u64;

        let deadline = Instant::now() + self.measurement_time;
        self.samples_ns_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() > deadline && self.samples_ns_per_iter.len() >= 2 {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<40} no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    // Throughput derives from the *best* sample: on a shared machine the
    // minimum time is the least-interference estimate (every source of
    // noise only ever makes a sample slower), so it is the stable number
    // to compare across runs.
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => (n as f64 / (lo / 1e9), "elem/s"),
        Throughput::Bytes(n) => (n as f64 / (lo / 1e9), "B/s"),
    });
    match rate {
        Some((r, unit)) => println!(
            "{label:<40} time: [{} {} {}]  thrpt: {} {unit}",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
            fmt_rate(r),
        ),
        None => println!(
            "{label:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
        ),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.3}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Declares a bench group function running each listed bench in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
