//! Offline stand-in for the `rand` trait surface this workspace uses.
//!
//! The simulation implements its own generators (xoshiro256** seeded via
//! SplitMix64, in `sda-sim`) precisely so reproducibility never depends on
//! an external crate's algorithm; all it needs from `rand` are the trait
//! *names*: [`RngCore`], [`SeedableRng`] and the [`Rng::gen`] extension.
//! This stub provides exactly those, with `gen::<f64>()` producing the
//! same 53-bit uniform mapping rand 0.8's `Standard` distribution uses,
//! so replacing the stub with the real crate preserves every sampled
//! stream bit-for-bit.

#![forbid(unsafe_code)]

use core::fmt;

/// Error type for [`RngCore::try_fill_bytes`]; never produced by the
/// deterministic generators in this workspace.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// Core uniform bit source, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        R::try_fill_bytes(self, dest)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed (SplitMix64, as rand does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from raw generator bits — the subset of
/// rand's `Standard` distribution this workspace consumes.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` from the high 53 bits, exactly as rand 0.8.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` from the high 24 bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`], mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard uniform distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
