//! Offline mini re-implementation of the `proptest` subset this workspace
//! uses.
//!
//! With no crates.io access the real proptest cannot be vendored, so this
//! crate provides a deterministic random-testing harness behind the same
//! names: the [`proptest!`] macro (`name in strategy` argument syntax,
//! optional `#![proptest_config(..)]`), the [`Strategy`] trait with
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`], range and tuple
//! strategies, [`any`], `prop::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the sampled inputs via
//!   the assertion message instead of a minimized counterexample;
//! * sampling is driven by a fixed SplitMix64 stream seeded from the test
//!   name, so every run of a given test binary explores the same cases
//!   (reproducibility over coverage novelty).

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic sample source for strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name, so each test explores a
    /// fixed, reproducible case sequence.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-case-generation quality.
        self.next_u64() % bound
    }
}

/// How many random cases a [`proptest!`] test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values, optionally rejecting some samples.
///
/// `sample` returns `None` when a `prop_filter` predicate rejects the
/// draw; the harness then retries with fresh randomness.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` if this draw was filtered out.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`; `reason` labels the filter.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            _reason: reason,
        }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy adapter created by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    _reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> Option<f32> {
        Some(self.start + (rng.unit_f64() as f32) * (self.end - self.start))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let span = self.end.checked_sub(self.start).filter(|&s| s > 0)?;
                Some(self.start + rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let span = (self.end as i128).checked_sub(self.start as i128)?;
                if span <= 0 {
                    return None;
                }
                Some((self.start as i128 + rng.below(span as u64) as i128) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i64, i32, i16, i8, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: arbitrary NaN/inf would make nearly every
        // numeric property vacuous or panicky.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The whole-domain strategy for `T`, as proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bounds for [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy over `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };

    /// The crate root under its conventional `prop::` alias
    /// (`prop::collection::vec`, …).
    pub use crate as prop;
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption fails (counts as a
/// rejected sample, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`
/// with an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ( $( $strategy, )+ );
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).saturating_add(1_000),
                        "{}: too many rejected samples ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases,
                    );
                    let ( $( $arg, )+ ) = match $crate::Strategy::sample(&strategy, &mut rng) {
                        Some(values) => values,
                        None => continue,
                    };
                    // The body may `continue` via prop_assume!, which
                    // counts as a rejection because `accepted` is only
                    // bumped after it completes.
                    $body
                    accepted += 1;
                }
            }
        )*
    };
}
