//! Offline stand-in for `serde`.
//!
//! This workspace builds in a sandbox with no access to crates.io, so the
//! real `serde` cannot be vendored. The codebase only uses serde as
//! *annotations* — `#[derive(Serialize, Deserialize)]` plus `#[serde(...)]`
//! helper attributes — and never calls a serializer, so this stub keeps
//! those annotations compiling with zero behavior:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type;
//! * the re-exported derive macros accept the usual input and expand to
//!   nothing.
//!
//! Swapping in the real `serde` later is a one-line change per manifest
//! and requires no source edits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
