//! Self-tests over the deliberately-violating corpora in
//! `tests/fixtures/`: every pass must fire on its fixture, at the right
//! place, with the right message — and must *not* fire where an
//! escape hatch or a scope rule says so.

use std::path::Path;

use sda_analysis::diag::{Diagnostic, Lint};

fn fixture(name: &str) -> Vec<Diagnostic> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let report = sda_analysis::analyze(&root);
    report.diagnostics
}

/// The diagnostics of one lint, as (file, line, message) triples.
fn of_lint(diags: &[Diagnostic], lint: Lint) -> Vec<(String, u32, String)> {
    diags
        .iter()
        .filter(|d| d.lint == lint)
        .map(|d| (d.file.display().to_string(), d.line, d.message.clone()))
        .collect()
}

#[track_caller]
fn assert_fires(findings: &[(String, u32, String)], file: &str, line: u32, message_fragment: &str) {
    assert!(
        findings
            .iter()
            .any(|(f, l, m)| f == file && *l == line && m.contains(message_fragment)),
        "expected a finding at {file}:{line} containing {message_fragment:?}; got {findings:#?}"
    );
}

#[test]
fn banned_api_fixture_fires_and_respects_the_escape_hatch() {
    let diags = fixture("banned_api");
    let banned = of_lint(&diags, Lint::BannedApi);
    let lib = "det/src/lib.rs";
    assert_fires(&banned, lib, 5, "std::collections::HashMap");
    assert_fires(&banned, lib, 9, "std::time::Instant");
    assert_fires(&banned, lib, 15, "std::env");
    assert_fires(&banned, lib, 20, "std::collections::HashMap");
    // Line 22's HashSet carries a sda-lint allow — suppressed.
    assert!(
        !banned.iter().any(|(_, l, _)| *l == 22),
        "the allow-annotated HashSet must be suppressed: {banned:#?}"
    );
    // The HashMap inside #[cfg(test)] is out of scope entirely.
    assert!(
        !banned.iter().any(|(_, l, _)| *l > 25),
        "test-module code must not be scanned: {banned:#?}"
    );
    // The allow was used, so no unused-allow config finding.
    assert!(
        of_lint(&diags, Lint::Config).is_empty(),
        "no config findings expected: {diags:#?}"
    );
}

#[test]
fn streams_fixture_fires_every_registry_rule() {
    let diags = fixture("streams");
    let streams = of_lint(&diags, Lint::StreamRegistry);
    let lib = "det/src/lib.rs";
    assert_fires(
        &streams,
        lib,
        8,
        "unregistered stream name `det.unregistered`",
    );
    assert_fires(
        &streams,
        lib,
        10,
        "literal stream `fam.7` shadows the indexed family",
    );
    assert_fires(&streams, lib, 11, "built dynamically");
    assert_fires(
        &streams,
        lib,
        12,
        "owned by subsystem `other` but used from `det`",
    );
    assert_fires(
        &streams,
        lib,
        15,
        "format-string stream with prefix `det.dynfam.` matches no indexed family",
    );
    let reg = "analysis/streams.toml";
    let reused = streams
        .iter()
        .find(|(f, _, m)| f == reg && m.contains("`det.reused` has 2 call sites but no `note`"));
    assert!(reused.is_some(), "missing reuse-note finding: {streams:#?}");
    let stale = streams
        .iter()
        .find(|(f, _, m)| f == reg && m.contains("stale registry entry `det.retired`"));
    assert!(stale.is_some(), "missing stale-entry finding: {streams:#?}");
    // The correct sites must stay clean: det.known (line 7), the
    // stream_indexed("fam", 3) site (line 9), and other's own use of
    // other.owned.
    assert!(
        !streams
            .iter()
            .any(|(f, l, _)| f == lib && (*l == 7 || *l == 9)),
        "registered sites must not fire: {streams:#?}"
    );
    assert!(
        !streams.iter().any(|(f, _, _)| f == "other/src/lib.rs"),
        "the owning subsystem's own use must not fire: {streams:#?}"
    );
    assert_eq!(
        streams.len(),
        7,
        "exactly the expected findings: {streams:#?}"
    );
}

#[test]
fn lint_header_fixture_fires_for_both_missing_attrs() {
    let diags = fixture("lint_header");
    let headers = of_lint(&diags, Lint::LintHeader);
    let lib = "det/src/lib.rs";
    // warn(missing_docs) is present but is NOT deny — must still fire.
    assert_fires(&headers, lib, 1, "#![deny(missing_docs)]");
    assert_fires(&headers, lib, 1, "#![forbid(unsafe_code)]");
    assert_eq!(headers.len(), 2, "{headers:#?}");
}

#[test]
fn golden_fixture_reports_only_the_unpinned_variant() {
    let diags = fixture("golden");
    let golden = of_lint(&diags, Lint::GoldenCoverage);
    assert_fires(&golden, "det/src/lib.rs", 17, "Color::Blue");
    assert!(
        !golden
            .iter()
            .any(|(_, _, m)| m.contains("Color::Red") || m.contains("Color::Green")),
        "pinned variants must not fire: {golden:#?}"
    );
    assert_eq!(golden.len(), 1, "{golden:#?}");
}

#[test]
fn clippy_sync_fixture_reports_drift_both_ways() {
    let diags = fixture("clippy_sync");
    let sync = of_lint(&diags, Lint::ClippySync);
    assert!(
        sync.iter()
            .any(|(_, _, m)| m.contains("missing `std::time::Instant`")),
        "missing mirror not reported: {sync:#?}"
    );
    assert!(
        sync.iter()
            .any(|(_, _, m)| m.contains("`regex::Regex`") && m.contains("does not ban")),
        "extra entry not reported: {sync:#?}"
    );
    assert!(
        sync.iter()
            .any(|(_, _, m)| m.contains("`std::env::var` needs a non-empty `reason`")),
        "missing reason not reported: {sync:#?}"
    );
    assert_eq!(sync.len(), 3, "{sync:#?}");
}
