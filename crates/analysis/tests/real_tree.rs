//! The linter's own acceptance gate: the real workspace must be clean.
//!
//! This is the same check CI runs via `cargo run -p sda-analysis --
//! --deny`, expressed as a test so `cargo test` alone also catches a
//! violation (and prints the findings when it does).

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = sda_analysis::analyze(&root);
    assert!(
        report.is_clean(),
        "sda-analysis found {} issue(s) in the real tree:\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect::<String>()
    );
    // Sanity: the scan actually covered the tree (all eleven non-exempt
    // members, every registered stream, every golden enum).
    assert_eq!(report.stats.members, 11);
    assert!(report.stats.files > 100, "{:?}", report.stats);
    assert!(report.stats.stream_sites >= 45, "{:?}", report.stats);
    assert!(report.stats.stream_entries >= 33, "{:?}", report.stats);
    assert_eq!(report.stats.enums, 5);
}
