//! Fixture crate declaring a config enum whose variants are only
//! partially pinned by the fixture's test suite.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A three-variant config enum; `Blue` has no test naming it.
#[derive(Debug, Clone, Copy)]
pub enum Color {
    /// Pinned by tests/pin.rs.
    Red,
    /// Pinned by tests/pin.rs.
    Green {
        /// Struct variants must still be detected.
        luma: f64,
    },
    /// Deliberately unpinned.
    Blue(u8),
}
