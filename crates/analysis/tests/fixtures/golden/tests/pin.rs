//! Names two of Color's three variants; a comment mentioning
//! Color::Blue must NOT count as coverage.

#[test]
fn pins_red_and_green() {
    let _ = Color::Red;
    let _ = Color::Green { luma: 0.5 };
}
