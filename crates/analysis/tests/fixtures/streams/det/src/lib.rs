//! Deliberately-violating fixture for the stream-registry pass.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Draws from a mix of registered and unregistered streams.
pub fn draw(f: &Factory, name: &str) {
    let _ = f.stream("det.known");
    let _ = f.stream("det.unregistered");
    let _ = f.stream_indexed("fam", 3);
    let _ = f.stream("fam.7");
    let _ = f.stream(name);
    let _ = f.stream("other.owned");
    let _ = f.stream("det.reused");
    let _ = f.stream("det.reused");
    let _ = f.stream(&format!("det.dynfam.{i}"));
}
