//! The subsystem that owns `other.owned`.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Draws the stream this subsystem owns.
pub fn draw(f: &Factory) {
    let _ = f.stream("other.owned");
}
