//! Fixture crate whose headers are wrong: `warn(missing_docs)` instead
//! of `deny`, and no `forbid(unsafe_code)` at all.
#![warn(missing_docs)]

/// Harmless.
pub fn noop() {}
