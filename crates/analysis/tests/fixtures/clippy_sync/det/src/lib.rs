//! Clean fixture crate; only clippy.toml is wrong in this tree.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Harmless.
pub fn noop() {}
