//! Deliberately-violating fixture for the banned-api pass.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::HashMap;

/// Times something with the wall clock (banned).
pub fn timed() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs()
}

/// Reads the ambient environment (banned).
pub fn from_env() -> Option<String> {
    std::env::var("SEED").ok()
}

/// Uses a hash map (banned) and an annotated, allowed hash set.
pub fn collections() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    // sda-lint: allow(banned-api, reason = "fixture: proves the escape hatch suppresses the next line")
    let s: std::collections::HashSet<u32> = std::collections::HashSet::new();
    m.len() + s.len()
}

#[cfg(test)]
mod tests {
    /// Banned APIs inside #[cfg(test)] items are out of scope.
    #[test]
    fn test_code_may_use_hash() {
        let _ = std::collections::HashMap::<u8, u8>::new();
    }
}
