//! `sda-analysis` — the workspace determinism linter.
//!
//! Every guarantee this reproduction makes — bit-exact serial-vs-sharded
//! parity, shard-count invariance, seeded replay of the Kao &
//! Garcia-Molina sweeps — rests on invariants the golden fingerprints
//! only *sample*: no wall-clock reads, no hash-iteration order, no
//! ambient RNG, no colliding stream names, no config variant left
//! unpinned. This crate enforces those invariants *mechanically*, over
//! the source text, so a violation fails CI the moment it is written
//! instead of whenever a golden happens to flip.
//!
//! It is deliberately dependency-free: a hand-rolled comment/string-aware
//! [lexer] feeds five [passes] configured by two committed
//! files —
//!
//! * `analysis/lints.toml` — per-crate policy tiers (`deterministic` /
//!   `harness` / `exempt`), missing-docs exemptions and the registered
//!   golden config enums;
//! * `analysis/streams.toml` — the registry of every named RNG stream in
//!   the workspace.
//!
//! Run it locally with `cargo run -p sda-analysis`; CI runs it with
//! `--deny` before anything expensive. Findings can be suppressed, one
//! line at a time and never silently, with
//! `// sda-lint: allow(<lint>, reason = "…")`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod minitoml;
pub mod passes;
pub mod source;
pub mod workspace;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::{LintsConfig, StreamRegistry, Tier};
use diag::{Diagnostic, Lint};
use minitoml::Document;
use source::SourceFile;
use workspace::Workspace;

/// Scan statistics, for the CLI summary line.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Workspace members linted (non-exempt).
    pub members: usize,
    /// Source files lexed.
    pub files: usize,
    /// `stream(...)` call sites extracted.
    pub stream_sites: usize,
    /// Registry entries checked.
    pub stream_entries: usize,
    /// Golden enums checked.
    pub enums: usize,
}

/// The result of a full analysis run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by file, line, lint.
    pub diagnostics: Vec<Diagnostic>,
    /// What was scanned.
    pub stats: Stats,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every pass over the workspace at `root`.
pub fn analyze(root: &Path) -> Report {
    let mut diags = Vec::new();
    let mut stats = Stats::default();

    let lints = match load_doc(root, "analysis/lints.toml", &mut diags) {
        Some(doc) => LintsConfig::parse(&doc, Path::new("analysis/lints.toml"), &mut diags),
        None => LintsConfig::default(),
    };
    let registry = match load_doc(root, "analysis/streams.toml", &mut diags) {
        Some(doc) => StreamRegistry::parse(&doc, Path::new("analysis/streams.toml"), &mut diags),
        None => StreamRegistry::default(),
    };
    stats.stream_entries = registry.entries.len();

    let ws = Workspace::discover(root, &lints, &mut diags);

    // Load every file once.
    let mut files: BTreeMap<PathBuf, SourceFile> = BTreeMap::new();
    for member in ws.in_tiers(&[Tier::Deterministic, Tier::Harness]) {
        stats.members += 1;
        for rel in member.src_files.iter().chain(&member.test_files) {
            if let Some(sf) = source::load(root, rel, &mut diags) {
                files.insert(rel.clone(), sf);
            }
        }
    }

    // Pass 1: banned APIs (crate src only; tests may read env etc.).
    for member in ws.in_tiers(&[Tier::Deterministic, Tier::Harness]) {
        for rel in &member.src_files {
            if let Some(sf) = files.get(rel) {
                passes::banned_api::run(sf, member.tier, &mut diags);
            }
        }
    }

    // Pass 2: stream registry (src + tests + examples — every call site).
    let mut sites = Vec::new();
    for member in ws.in_tiers(&[Tier::Deterministic, Tier::Harness]) {
        for rel in member.src_files.iter().chain(&member.test_files) {
            if let Some(sf) = files.get(rel) {
                sites.extend(passes::streams::extract(sf, &member.label));
            }
        }
    }
    stats.stream_sites = sites.len();
    {
        let file_refs: BTreeMap<PathBuf, &SourceFile> =
            files.iter().map(|(k, v)| (k.clone(), v)).collect();
        passes::streams::check(&sites, &registry, &file_refs, &mut diags);
    }

    // Pass 3: lint headers on crate roots.
    for member in ws.in_tiers(&[Tier::Deterministic, Tier::Harness]) {
        match &member.root_file {
            Some(rel) => {
                if let Some(sf) = files.get(rel) {
                    passes::lint_header::run(member, sf, &lints, &mut diags);
                }
            }
            None => diags.push(Diagnostic::file_level(
                Lint::Config,
                &member.path,
                "member has no src/lib.rs or src/main.rs crate root",
            )),
        }
    }

    // Pass 4: golden coverage of registered config enums.
    let mut test_files: Vec<PathBuf> = Vec::new();
    for dir in &lints.golden_test_dirs {
        let mut found = Vec::new();
        workspace_walk(&root.join(dir), root, &mut found);
        test_files.extend(found);
    }
    for rel in &test_files {
        if !files.contains_key(rel) {
            if let Some(sf) = source::load(root, rel, &mut diags) {
                files.insert(rel.clone(), sf);
            }
        }
    }
    for spec in &lints.golden_enums {
        stats.enums += 1;
        let decl_rel = PathBuf::from(&spec.file);
        if !files.contains_key(&decl_rel) && root.join(&decl_rel).is_file() {
            if let Some(sf) = source::load(root, &decl_rel, &mut diags) {
                files.insert(decl_rel.clone(), sf);
            }
        }
        let mut mentions = std::collections::BTreeSet::new();
        for rel in &test_files {
            if let Some(sf) = files.get(rel) {
                passes::golden::qualified_mentions(sf, &spec.name, &mut mentions);
            }
        }
        passes::golden::check(
            spec,
            files.get(&decl_rel),
            &mentions,
            &lints.golden_test_dirs,
            &mut diags,
        );
    }

    // Pass 5: clippy.toml mirrors the ban table.
    passes::clippy_sync::run(root, &mut diags);

    // Escape-hatch hygiene: every allow must have suppressed something.
    for sf in files.values() {
        sf.report_unused_allows(&mut diags);
    }

    stats.files = files.len();
    diag::sort(&mut diags);
    Report {
        diagnostics: diags,
        stats,
    }
}

/// Extracted stream call sites for `--list-streams`.
pub fn list_streams(root: &Path) -> Vec<String> {
    let mut diags = Vec::new();
    let lints = match load_doc(root, "analysis/lints.toml", &mut diags) {
        Some(doc) => LintsConfig::parse(&doc, Path::new("analysis/lints.toml"), &mut diags),
        None => LintsConfig::default(),
    };
    let ws = Workspace::discover(root, &lints, &mut diags);
    let mut out = Vec::new();
    for member in ws.in_tiers(&[Tier::Deterministic, Tier::Harness]) {
        for rel in member.src_files.iter().chain(&member.test_files) {
            if let Some(sf) = source::load(root, rel, &mut diags) {
                for site in passes::streams::extract(&sf, &member.label) {
                    out.push(format!(
                        "{}:{}: {:?} [{}]",
                        site.file.display(),
                        site.line,
                        site.name,
                        site.subsystem
                    ));
                }
            }
        }
    }
    out
}

fn load_doc(root: &Path, rel: &str, diags: &mut Vec<Diagnostic>) -> Option<Document> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => match Document::parse(&text) {
            Ok(doc) => Some(doc),
            Err(e) => {
                diags.push(Diagnostic::file_level(
                    Lint::Config,
                    rel,
                    format!("cannot parse: {e}"),
                ));
                None
            }
        },
        Err(e) => {
            diags.push(Diagnostic::file_level(
                Lint::Config,
                rel,
                format!("required config is missing or unreadable: {e}"),
            ));
            None
        }
    }
}

/// Walks a golden test directory for `.rs` files (workspace-relative).
fn workspace_walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            if child.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            workspace_walk(&child, root, out);
        } else if child.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = child.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
