//! Loaded source files and the `sda-lint: allow(...)` escape hatch.
//!
//! An annotation is a comment of the form
//!
//! ```text
//! // sda-lint: allow(banned-api, reason = "bench measures wall time")
//! ```
//!
//! A *trailing* annotation (code before it on the line) suppresses
//! matching findings on its own line; an annotation that owns its line
//! suppresses findings on the next line that has any code. Every
//! annotation must name a known lint and a non-empty reason, and every
//! annotation must actually suppress something — unused allows are
//! themselves findings, so stale escape hatches cannot accumulate.

use std::cell::Cell;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Lint};
use crate::lexer::Lexed;

/// One parsed `sda-lint: allow(...)` annotation.
#[derive(Debug)]
pub struct Allow {
    /// The lint it suppresses.
    pub lint: Lint,
    /// The line whose findings it suppresses.
    pub target_line: u32,
    /// The line the annotation itself is on (for unused-allow reports).
    pub line: u32,
    /// Whether any finding was suppressed by this annotation.
    pub used: Cell<bool>,
}

/// A lexed source file plus its annotations.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: PathBuf,
    /// Token stream, comments and `#[cfg(test)]` mask.
    pub lexed: Lexed,
    /// Parsed allow-annotations.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lexes `text` (read from `rel`), collecting malformed annotations
    /// into `diags`.
    pub fn new(rel: PathBuf, text: &str, diags: &mut Vec<Diagnostic>) -> SourceFile {
        let lexed = Lexed::new(text);
        let mut allows = Vec::new();
        for comment in &lexed.comments {
            let Some(rest) = find_marker(&comment.text) else {
                continue;
            };
            match parse_allow(rest) {
                Ok(lint_name) => match Lint::from_name(&lint_name) {
                    Some(lint) => {
                        let target_line = if comment.owns_line {
                            lexed
                                .tokens
                                .iter()
                                .map(|t| t.line)
                                .find(|&l| l > comment.line)
                                .unwrap_or(comment.line)
                        } else {
                            comment.line
                        };
                        allows.push(Allow {
                            lint,
                            target_line,
                            line: comment.line,
                            used: Cell::new(false),
                        });
                    }
                    None => diags.push(Diagnostic::new(
                        Lint::Config,
                        rel.clone(),
                        comment.line,
                        1,
                        format!("sda-lint annotation names unknown lint `{lint_name}`"),
                    )),
                },
                Err(why) => diags.push(Diagnostic::new(
                    Lint::Config,
                    rel.clone(),
                    comment.line,
                    1,
                    format!("malformed sda-lint annotation: {why}"),
                )),
            }
        }
        SourceFile { rel, lexed, allows }
    }

    /// Whether a `lint` finding at `line` is suppressed; marks the
    /// annotation used.
    pub fn suppressed(&self, lint: Lint, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.lint == lint && a.target_line == line {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Reports annotations that suppressed nothing.
    pub fn report_unused_allows(&self, diags: &mut Vec<Diagnostic>) {
        for a in &self.allows {
            if !a.used.get() {
                diags.push(Diagnostic::new(
                    Lint::Config,
                    self.rel.clone(),
                    a.line,
                    1,
                    format!(
                        "unused sda-lint allow({}) — nothing to suppress here, remove it",
                        a.lint
                    ),
                ));
            }
        }
    }
}

/// Finds the annotation marker, returning the text after it.
///
/// Only plain `//` comments that *begin* with `sda-lint:` count: doc
/// comments (`///`, `//!` — their text starts with `/` or `!`) and
/// prose that merely mentions the marker mid-sentence are documentation
/// about the mechanism, not uses of it.
fn find_marker(text: &str) -> Option<&str> {
    if text.starts_with('/') || text.starts_with('!') {
        return None;
    }
    text.trim_start().strip_prefix("sda-lint:").map(str::trim)
}

/// Parses `allow(<lint>, reason = "...")`, returning the lint name.
fn parse_allow(rest: &str) -> Result<String, String> {
    let body = rest
        .strip_prefix("allow(")
        .ok_or("expected `allow(<lint>, reason = \"…\")`")?;
    let close = body.rfind(')').ok_or("missing closing `)`")?;
    let body = &body[..close];
    let (lint_name, tail) = match body.find(',') {
        Some(comma) => (body[..comma].trim(), body[comma + 1..].trim()),
        None => return Err("missing `, reason = \"…\"`".into()),
    };
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .ok_or("expected `reason = \"…\"`")?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("reason must be a quoted string")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok(lint_name.to_string())
}

/// Reads and lexes a file under `root`, or records a config diagnostic.
pub fn load(root: &Path, rel: &Path, diags: &mut Vec<Diagnostic>) -> Option<SourceFile> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => Some(SourceFile::new(rel.to_path_buf(), &text, diags)),
        Err(e) => {
            diags.push(Diagnostic::file_level(
                Lint::Config,
                rel,
                format!("cannot read file: {e}"),
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_and_owning_annotations_target_the_right_lines() {
        let src = "\
let a = Instant::now(); // sda-lint: allow(banned-api, reason = \"wall clock is the product\")
// sda-lint: allow(stream-registry, reason = \"dynamic by design\")
let b = f.stream(name);
";
        let mut diags = Vec::new();
        let sf = SourceFile::new(PathBuf::from("x.rs"), src, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(sf.allows.len(), 2);
        assert!(sf.suppressed(Lint::BannedApi, 1));
        assert!(sf.suppressed(Lint::StreamRegistry, 3));
        assert!(!sf.suppressed(Lint::BannedApi, 3));
        let mut unused = Vec::new();
        sf.report_unused_allows(&mut unused);
        assert!(unused.is_empty());
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let cases = [
            "// sda-lint: allow(banned-api)",
            "// sda-lint: allow(banned-api, reason = \"\")",
            "// sda-lint: allow(no-such-lint, reason = \"x\")",
            "// sda-lint: deny(banned-api, reason = \"x\")",
        ];
        for src in cases {
            let mut diags = Vec::new();
            SourceFile::new(PathBuf::from("x.rs"), src, &mut diags);
            assert_eq!(diags.len(), 1, "for {src}: {diags:?}");
        }
    }

    #[test]
    fn unused_allow_is_reported() {
        let mut diags = Vec::new();
        let sf = SourceFile::new(
            PathBuf::from("x.rs"),
            "// sda-lint: allow(banned-api, reason = \"left over\")\nlet x = 1;",
            &mut diags,
        );
        sf.report_unused_allows(&mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unused"));
    }
}
