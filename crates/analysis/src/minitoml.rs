//! A minimal TOML-subset reader for the linter's config files.
//!
//! Supports exactly what `analysis/lints.toml`, `analysis/streams.toml`,
//! `clippy.toml` and the `[workspace]` table of `Cargo.toml` need:
//!
//! * `[table]` and `[[array-of-tables]]` headers (dotted names allowed);
//! * `key = "string" | true | false | 123 | 1.5`;
//! * `key = [ …strings or inline tables… ]`, including multi-line arrays;
//! * inline tables `{ k = "v", … }` — string values are kept, other
//!   values (e.g. `features = ["derive"]` in a Cargo.toml dependency
//!   spec) are parsed and dropped;
//! * `#` comments and blank lines.
//!
//! Anything else is a hard error — config typos must fail loudly, not
//! silently relax a lint.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// Any number (integers are represented exactly up to 2^53).
    Num(f64),
    /// An array of values.
    Array(Vec<Value>),
    /// An inline table (string keys, string values only).
    Table(BTreeMap<String, String>),
}

/// A parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending text.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// One `[header]` section (or the implicit root section).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    /// The header name (`""` for the root section before any header).
    pub name: String,
    /// 1-based line of the header (0 for the root section).
    pub line: u32,
    /// Key → value pairs, in file order.
    pub entries: Vec<(String, Value)>,
}

impl Section {
    /// Looks up a key's value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a string value by key.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Looks up a bool value by key (absent ⇒ `false`).
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(self.get(key), Some(Value::Bool(true)))
    }

    /// Looks up an array of strings by key (absent ⇒ empty).
    pub fn get_str_array(&self, key: &str) -> Vec<String> {
        match self.get(key) {
            Some(Value::Array(items)) => items
                .iter()
                .filter_map(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// A parsed document: the flat list of sections in file order.
///
/// `[[name]]` array-of-tables headers produce one [`Section`] per
/// occurrence, all sharing the same name — callers iterate and filter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// All sections, in file order; index 0 is the implicit root.
    pub sections: Vec<Section>,
}

impl Document {
    /// Parses `src`.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its line number.
    pub fn parse(src: &str) -> Result<Document, TomlError> {
        let mut sections = vec![Section::default()];
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest.strip_suffix("]]").ok_or_else(|| TomlError {
                    line: lineno,
                    msg: "malformed [[header]]".into(),
                })?;
                sections.push(Section {
                    name: name.trim().to_string(),
                    line: lineno,
                    entries: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| TomlError {
                    line: lineno,
                    msg: "malformed [header]".into(),
                })?;
                sections.push(Section {
                    name: name.trim().to_string(),
                    line: lineno,
                    entries: Vec::new(),
                });
            } else {
                let eq = line.find('=').ok_or_else(|| TomlError {
                    line: lineno,
                    msg: format!("expected `key = value`, got `{line}`"),
                })?;
                let key = line[..eq].trim().to_string();
                let mut rhs = line[eq + 1..].trim().to_string();
                // Multi-line arrays: keep consuming lines until brackets
                // balance outside strings.
                while !balanced(&rhs) {
                    let (_, next) = lines.next().ok_or_else(|| TomlError {
                        line: lineno,
                        msg: format!("unterminated array for key `{key}`"),
                    })?;
                    rhs.push(' ');
                    rhs.push_str(strip_comment(next).trim());
                }
                let value = parse_value(rhs.trim(), lineno)?;
                sections
                    .last_mut()
                    .expect("root section always present")
                    .entries
                    .push((key, value));
            }
        }
        Ok(Document { sections })
    }

    /// All sections named `name` (for `[[array-of-tables]]`).
    pub fn sections_named<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Section> {
        let name = name.to_string();
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// The first section named `name`, if any.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections_named(name).next()
    }
}

/// Removes a `#`-comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Whether brackets/braces balance outside string literals.
fn balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    depth == 0 && !in_str
}

fn parse_value(s: &str, line: u32) -> Result<Value, TomlError> {
    if let Some(body) = s.strip_prefix('"') {
        let end = close_quote(body).ok_or_else(|| TomlError {
            line,
            msg: format!("unterminated string: {s}"),
        })?;
        if !body[end + 1..].trim().is_empty() {
            return Err(TomlError {
                line,
                msg: format!("trailing characters after string: {s}"),
            });
        }
        return Ok(Value::Str(unescape(&body[..end])));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('[') {
        return parse_array(s, line);
    }
    if s.starts_with('{') {
        return parse_inline_table(s, line);
    }
    if let Ok(n) = s.replace('_', "").parse::<f64>() {
        return Ok(Value::Num(n));
    }
    Err(TomlError {
        line,
        msg: format!("unsupported value: `{s}`"),
    })
}

/// Index of the closing quote in `body` (which starts *after* `"`).
fn close_quote(body: &str) -> Option<usize> {
    let mut prev_backslash = false;
    for (i, c) in body.char_indices() {
        if c == '"' && !prev_backslash {
            return Some(i);
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits `s` at top-level commas (outside strings/brackets/braces).
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' | '{' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

fn parse_array(s: &str, line: u32) -> Result<Value, TomlError> {
    let body = s
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| TomlError {
            line,
            msg: format!("malformed array: {s}"),
        })?;
    let mut items = Vec::new();
    for part in split_top_level(body) {
        items.push(parse_value(&part, line)?);
    }
    Ok(Value::Array(items))
}

fn parse_inline_table(s: &str, line: u32) -> Result<Value, TomlError> {
    let body = s
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| TomlError {
            line,
            msg: format!("malformed inline table: {s}"),
        })?;
    let mut map = BTreeMap::new();
    for part in split_top_level(body) {
        let eq = part.find('=').ok_or_else(|| TomlError {
            line,
            msg: format!("expected `k = \"v\"` in inline table, got `{part}`"),
        })?;
        let key = part[..eq].trim().to_string();
        // Keep string values; anything else (arrays, bools — seen in
        // Cargo.toml dependency specs) must still parse but is dropped.
        if let Value::Str(v) = parse_value(part[eq + 1..].trim(), line)? {
            map.insert(key, v);
        }
    }
    Ok(Value::Table(map))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_inline_tables() {
        let doc = Document::parse(
            r#"
# top comment
[tiers]
deterministic = ["crates/core", "crates/sim"] # trailing
exempt = []

[[stream]]
name = "workload.pex"
kind = "exact"
shared = true

[[stream]]
name = "system.failure"

disallowed-types = [
    { path = "std::collections::HashMap", reason = "iteration order" },
    { path = "std::time::Instant", reason = "wall clock" },
]
"#,
        )
        .unwrap();
        let tiers = doc.section("tiers").unwrap();
        assert_eq!(
            tiers.get_str_array("deterministic"),
            vec!["crates/core".to_string(), "crates/sim".to_string()]
        );
        assert_eq!(tiers.get_str_array("exempt"), Vec::<String>::new());
        let streams: Vec<_> = doc.sections_named("stream").collect();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].get_str("name"), Some("workload.pex"));
        assert!(streams[0].get_bool("shared"));
        assert!(!streams[1].get_bool("shared"));
        match streams[1].get("disallowed-types") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 2);
                match &items[0] {
                    Value::Table(t) => {
                        assert_eq!(
                            t.get("path").map(String::as_str),
                            Some("std::collections::HashMap")
                        );
                    }
                    other => panic!("expected inline table, got {other:?}"),
                }
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = Document::parse(r##"key = "a # b""##).unwrap();
        assert_eq!(doc.sections[0].get_str("key"), Some("a # b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Document::parse("ok = true\nbroken").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Document::parse("x = nope").unwrap_err();
        assert!(err.msg.contains("unsupported value"));
    }

    #[test]
    fn multiline_array_with_comments() {
        let doc = Document::parse("xs = [\n  \"a\", # one\n  \"b\",\n]\n").unwrap();
        assert_eq!(
            doc.sections[0].get_str_array("xs"),
            vec!["a".to_string(), "b".to_string()]
        );
    }
}
