//! Diagnostics: what a lint reports and how it prints.

use std::fmt;
use std::path::PathBuf;

/// The linter's passes / lint names, as used in `sda-lint: allow(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Wall-clock, iteration-order-hazard and ambient-state APIs in
    /// deterministic-tier crates.
    BannedApi,
    /// RNG stream names must be registered in `analysis/streams.toml`,
    /// collision-free and prefix-disjoint.
    StreamRegistry,
    /// Crate roots must pin `#![forbid(unsafe_code)]` and
    /// `#![deny(missing_docs)]`.
    LintHeader,
    /// Every public config-enum variant must be named by a golden or
    /// regression test.
    GoldenCoverage,
    /// `clippy.toml`'s disallowed lists must mirror the banned-API pass.
    ClippySync,
    /// Malformed configs, stale registry entries, unknown or unused
    /// `sda-lint:` annotations.
    Config,
}

impl Lint {
    /// The kebab-case name used in diagnostics and allow-annotations.
    pub fn name(self) -> &'static str {
        match self {
            Lint::BannedApi => "banned-api",
            Lint::StreamRegistry => "stream-registry",
            Lint::LintHeader => "lint-header",
            Lint::GoldenCoverage => "golden-coverage",
            Lint::ClippySync => "clippy-sync",
            Lint::Config => "config",
        }
    }

    /// Parses an annotation's lint name.
    pub fn from_name(name: &str) -> Option<Lint> {
        match name {
            "banned-api" => Some(Lint::BannedApi),
            "stream-registry" => Some(Lint::StreamRegistry),
            "lint-header" => Some(Lint::LintHeader),
            "golden-coverage" => Some(Lint::GoldenCoverage),
            "clippy-sync" => Some(Lint::ClippySync),
            "config" => Some(Lint::Config),
            _ => None,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, pointing at a workspace-relative location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path of the offending file (or config file).
    pub file: PathBuf,
    /// 1-based line (0 when the finding is file-level).
    pub line: u32,
    /// 1-based column (0 when unknown).
    pub col: u32,
    /// The finding, one sentence, actionable.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at a precise location.
    pub fn new(
        lint: Lint,
        file: impl Into<PathBuf>,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            lint,
            file: file.into(),
            line,
            col,
            message: message.into(),
        }
    }

    /// Builds a file-level diagnostic (no line).
    pub fn file_level(
        lint: Lint,
        file: impl Into<PathBuf>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(lint, file, 0, 0, message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}:{}: [{}] {}",
                self.file.display(),
                self.line,
                self.col.max(1),
                self.lint,
                self.message
            )
        } else {
            write!(
                f,
                "{}: [{}] {}",
                self.file.display(),
                self.lint,
                self.message
            )
        }
    }
}

/// Sorts diagnostics for stable output: by file, then line, then lint.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.lint, &a.message)
            .cmp(&(&b.file, b.line, b.col, b.lint, &b.message))
    });
}
