//! Workspace discovery: members, tiers and the files each pass scans.

use std::path::{Path, PathBuf};

use crate::config::{LintsConfig, Tier};
use crate::diag::{Diagnostic, Lint};
use crate::minitoml::Document;

/// One linted workspace member.
#[derive(Debug)]
pub struct Member {
    /// Member path as in `Cargo.toml` (`"."` for the root package).
    pub path: String,
    /// Short label: the last path component (`workload`), or `sda` for
    /// the root package. Stream-registry subsystems use these labels.
    pub label: String,
    /// Assigned policy tier.
    pub tier: Tier,
    /// Workspace-relative crate-root file (`src/lib.rs` or `src/main.rs`).
    pub root_file: Option<PathBuf>,
    /// All `.rs` files under the member's `src/`, sorted.
    pub src_files: Vec<PathBuf>,
    /// All `.rs` files under the member's `tests/` (and, for the root
    /// package, `examples/`), sorted.
    pub test_files: Vec<PathBuf>,
}

/// The resolved workspace: every member with its tier and files.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All members, root package first, then `Cargo.toml` order.
    pub members: Vec<Member>,
}

impl Workspace {
    /// Discovers the workspace at `root`: reads `Cargo.toml` members,
    /// checks each is assigned exactly one tier in `lints`, and walks
    /// the source trees of non-exempt members.
    pub fn discover(root: &Path, lints: &LintsConfig, diags: &mut Vec<Diagnostic>) -> Workspace {
        let mut members = Vec::new();
        let manifest = root.join("Cargo.toml");
        let mut paths = Vec::new();
        match std::fs::read_to_string(&manifest) {
            Ok(text) => match Document::parse(&text) {
                Ok(doc) => {
                    if let Some(ws) = doc.section("workspace") {
                        paths = ws.get_str_array("members");
                    }
                    if paths.is_empty() {
                        diags.push(Diagnostic::file_level(
                            Lint::Config,
                            "Cargo.toml",
                            "no [workspace] members found",
                        ));
                    }
                    // The root package itself, if the manifest declares one.
                    if doc.section("package").is_some() {
                        paths.insert(0, ".".to_string());
                    }
                }
                Err(e) => diags.push(Diagnostic::file_level(
                    Lint::Config,
                    "Cargo.toml",
                    format!("cannot parse manifest: {e}"),
                )),
            },
            Err(e) => diags.push(Diagnostic::file_level(
                Lint::Config,
                "Cargo.toml",
                format!("cannot read manifest: {e}"),
            )),
        }

        for path in &paths {
            let Some(tier) = lints.tier_of(path) else {
                diags.push(Diagnostic::file_level(
                    Lint::Config,
                    "analysis/lints.toml",
                    format!(
                        "workspace member `{path}` has no policy tier — add it to \
                         [tiers] deterministic, harness or exempt"
                    ),
                ));
                continue;
            };
            members.push(build_member(root, path, tier));
        }
        // Tier entries that name no member are stale config.
        for path in lints
            .deterministic
            .iter()
            .chain(&lints.harness)
            .chain(&lints.exempt)
        {
            if !paths.iter().any(|m| m == path) {
                diags.push(Diagnostic::file_level(
                    Lint::Config,
                    "analysis/lints.toml",
                    format!("tier entry `{path}` matches no workspace member"),
                ));
            }
        }
        Workspace {
            root: root.to_path_buf(),
            members,
        }
    }

    /// Members in the given tiers.
    pub fn in_tiers<'a>(&'a self, tiers: &'a [Tier]) -> impl Iterator<Item = &'a Member> {
        self.members.iter().filter(move |m| tiers.contains(&m.tier))
    }
}

fn build_member(root: &Path, path: &str, tier: Tier) -> Member {
    let label = if path == "." {
        "sda".to_string()
    } else {
        path.rsplit('/').next().unwrap_or(path).to_string()
    };
    let dir = if path == "." {
        root.to_path_buf()
    } else {
        root.join(path)
    };
    let mut src_files = Vec::new();
    let mut test_files = Vec::new();
    let mut root_file = None;
    if tier != Tier::Exempt {
        walk_rs(&dir.join("src"), root, &mut src_files);
        walk_rs(&dir.join("tests"), root, &mut test_files);
        if path == "." {
            walk_rs(&dir.join("examples"), root, &mut test_files);
        }
        src_files.sort();
        test_files.sort();
        let rel_dir = if path == "." {
            PathBuf::new()
        } else {
            PathBuf::from(path)
        };
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let rel = rel_dir.join(candidate);
            if root.join(&rel).is_file() {
                root_file = Some(rel);
                break;
            }
        }
    }
    Member {
        path: path.to_string(),
        label,
        tier,
        root_file,
        src_files,
        test_files,
    }
}

/// Recursively collects `.rs` files under `dir` as workspace-relative
/// paths (sorted by the caller).
fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            // `fixtures/` holds deliberately-violating lint corpora
            // (crates/analysis/tests/fixtures) — never scan it as code.
            if child.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs(&child, root, out);
        } else if child.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = child.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
