//! Pass 4 — golden coverage of public config enums.
//!
//! The golden fingerprints sample behavior; this pass makes sure no
//! *configuration surface* escapes the sample entirely: every variant of
//! the registered public config enums (`NetworkModel`, `ArrivalProcess`,
//! `FailureModel`, `GlobalShape`, …) must be *named* — as a qualified
//! `Enum::Variant` path — somewhere in the golden/regression test
//! directories. A new variant therefore cannot land unpinned: adding it
//! turns CI red until a seeded test exercises it by name.

use std::collections::BTreeSet;

use crate::config::GoldenEnum;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Extracts the variants of `pub enum <name>` from `file`, each with
/// the 1-based line of its declaration (so a coverage finding points at
/// the variant, not just the file).
///
/// Returns `None` when the enum is not declared in the file (a config
/// error the caller reports — a stale `[[golden.enum]]` entry must not
/// silently pass).
pub fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let tokens = &file.lexed.tokens;
    // Find `pub enum <name> … {`.
    let mut start = None;
    for i in 0..tokens.len() {
        if matches!(&tokens[i].kind, TokenKind::Ident(id) if id == "pub")
            && matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokenKind::Ident(id)) if id == "enum")
            && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokenKind::Ident(id)) if id == name)
        {
            start = Some(i + 3);
            break;
        }
    }
    let mut i = start?;
    // Skip generics/whatever until the opening brace.
    while i < tokens.len() && !matches!(tokens[i].kind, TokenKind::Punct('{')) {
        i += 1;
    }
    if i == tokens.len() {
        return None;
    }
    i += 1;
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut expect_variant = true;
    while i < tokens.len() && depth > 0 {
        match &tokens[i].kind {
            TokenKind::Punct('#') => {
                // Skip the attribute (`#[default]`, doc attrs, …).
                let mut d = 0usize;
                i += 1;
                while i < tokens.len() {
                    match tokens[i].kind {
                        TokenKind::Punct('[') => d += 1,
                        TokenKind::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            TokenKind::Punct('{') | TokenKind::Punct('(') => {
                depth += 1;
                expect_variant = false;
            }
            TokenKind::Punct('}') | TokenKind::Punct(')') => depth -= 1,
            TokenKind::Punct(',') if depth == 1 => expect_variant = true,
            TokenKind::Ident(id) if depth == 1 && expect_variant => {
                variants.push((id.clone(), tokens[i].line));
                expect_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// Collects every `Enum::Variant`-qualified name mentioned in a test file.
pub fn qualified_mentions(file: &SourceFile, enum_name: &str, out: &mut BTreeSet<String>) {
    let tokens = &file.lexed.tokens;
    for i in 0..tokens.len() {
        if matches!(&tokens[i].kind, TokenKind::Ident(id) if id == enum_name)
            && matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokenKind::Punct(':'))
            )
            && matches!(
                tokens.get(i + 2).map(|t| &t.kind),
                Some(TokenKind::Punct(':'))
            )
        {
            if let Some(TokenKind::Ident(variant)) = tokens.get(i + 3).map(|t| &t.kind) {
                out.insert(variant.clone());
            }
        }
    }
}

/// Checks one registered enum against the collected test mentions.
pub fn check(
    spec: &GoldenEnum,
    decl_file: Option<&SourceFile>,
    mentions: &BTreeSet<String>,
    test_dirs: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    let Some(decl) = decl_file else {
        diags.push(Diagnostic::file_level(
            Lint::Config,
            "analysis/lints.toml",
            format!(
                "[[golden.enum]] `{}` points at missing file `{}`",
                spec.name, spec.file
            ),
        ));
        return;
    };
    let Some(variants) = enum_variants(decl, &spec.name) else {
        diags.push(Diagnostic::file_level(
            Lint::Config,
            spec.file.clone(),
            format!(
                "registered golden enum `{}` is not declared in this file — fix \
                 analysis/lints.toml",
                spec.name
            ),
        ));
        return;
    };
    for (v, line) in variants {
        if !mentions.contains(&v) {
            diags.push(Diagnostic::new(
                Lint::GoldenCoverage,
                spec.file.clone(),
                line,
                1,
                format!(
                    "enum variant `{}::{v}` is not named in any golden/regression test \
                     under {:?} — pin it with a seeded test before it can ship",
                    spec.name, test_dirs
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sf(src: &str) -> SourceFile {
        let mut diags = Vec::new();
        let f = SourceFile::new(PathBuf::from("x.rs"), src, &mut diags);
        assert!(diags.is_empty());
        f
    }

    #[test]
    fn variants_of_data_enums_are_extracted() {
        let src = r#"
            /// Docs.
            #[derive(Debug, Clone, Default)]
            pub enum Net {
                /// Free.
                #[default]
                Zero,
                /// Fixed.
                Constant { delay: f64 },
                /// Tuple-ish.
                Pair(f64, f64),
                Matrix { delays: Vec<Vec<f64>> },
            }
        "#;
        let got = enum_variants(&sf(src), "Net").unwrap();
        let names: Vec<&str> = got.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Zero", "Constant", "Pair", "Matrix"]);
        // Lines point at the variant declarations themselves.
        assert_eq!(got[0].1, 7);
        assert_eq!(got[1].1, 9);
    }

    #[test]
    fn missing_enum_returns_none() {
        assert!(enum_variants(&sf("pub enum Other { A }"), "Net").is_none());
        // A private enum does not satisfy a *public* config-surface claim.
        assert!(enum_variants(&sf("enum Net { A }"), "Net").is_none());
    }

    #[test]
    fn qualified_mentions_are_collected() {
        let mut out = BTreeSet::new();
        qualified_mentions(
            &sf("cfg.net = Net::Constant { delay: 1.0 }; let z = Net::Zero;"),
            "Net",
            &mut out,
        );
        assert_eq!(
            out.into_iter().collect::<Vec<_>>(),
            vec!["Constant".to_string(), "Zero".to_string()]
        );
    }

    #[test]
    fn uncovered_variant_fires() {
        let decl = sf("pub enum Net { Zero, Constant { d: f64 } }");
        let mut mentions = BTreeSet::new();
        mentions.insert("Zero".to_string());
        let spec = GoldenEnum {
            name: "Net".into(),
            file: "x.rs".into(),
        };
        let mut diags = Vec::new();
        check(&spec, Some(&decl), &mentions, &["tests".into()], &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("Net::Constant"));
    }
}
