//! Pass 1 — banned APIs in deterministic-tier (and harness) code.
//!
//! A single wall-clock read, hash-order iteration or ambient-environment
//! lookup in the simulation path breaks bit-exact replay in ways the
//! golden fingerprints only catch *if they happen to sample it*. This
//! pass bans the whole API class at the call-site level:
//!
//! * `std::time::Instant` / `SystemTime` — wall clock;
//! * `std::collections::HashMap` / `HashSet` — iteration-order hazard
//!   (use `BTreeMap`/`BTreeSet`, slabs or sorted `Vec`s);
//! * `rand::thread_rng` / `rand::random` — seedless ambient RNG that
//!   bypasses the named-stream [`RngFactory`](https://docs.rs) registry;
//! * `std::env` — ambient process state.
//!
//! `#[cfg(test)]` items are skipped (tests may read `GOLDEN_DUMP` etc.).
//! Legitimate uses — the bench harness timing wall clock, the experiment
//! CLI reading argv — carry `// sda-lint: allow(banned-api, reason = …)`
//! and are counted, not silently exempted.

use crate::config::Tier;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One banned API: how it is matched and what mirrors it in
/// `clippy.toml` (kept in sync by the clippy-sync pass).
pub struct BannedApi {
    /// Short key used in messages.
    pub key: &'static str,
    /// Identifier tokens that match this API (any occurrence).
    pub idents: &'static [&'static str],
    /// `a::b` path sequences that match this API.
    pub paths: &'static [&'static [&'static str]],
    /// Mirrored `disallowed-types` paths in `clippy.toml`.
    pub clippy_types: &'static [&'static str],
    /// Mirrored `disallowed-methods` paths in `clippy.toml`.
    pub clippy_methods: &'static [&'static str],
    /// Why it is banned — shown in the diagnostic.
    pub why: &'static str,
}

/// The ban table. The clippy-sync pass asserts `clippy.toml` mirrors the
/// `clippy_types`/`clippy_methods` columns exactly.
pub const BANNED: &[BannedApi] = &[
    BannedApi {
        key: "std::time::Instant",
        idents: &["Instant"],
        paths: &[],
        clippy_types: &["std::time::Instant"],
        clippy_methods: &[],
        why: "wall-clock reads make replay timing-dependent",
    },
    BannedApi {
        key: "std::time::SystemTime",
        idents: &["SystemTime"],
        paths: &[],
        clippy_types: &["std::time::SystemTime"],
        clippy_methods: &[],
        why: "wall-clock reads make replay timing-dependent",
    },
    BannedApi {
        key: "std::collections::HashMap",
        idents: &["HashMap"],
        paths: &[],
        clippy_types: &["std::collections::HashMap"],
        clippy_methods: &[],
        why: "iteration order is seeded per process; use BTreeMap, a slab or a sorted Vec",
    },
    BannedApi {
        key: "std::collections::HashSet",
        idents: &["HashSet"],
        paths: &[],
        clippy_types: &["std::collections::HashSet"],
        clippy_methods: &[],
        why: "iteration order is seeded per process; use BTreeSet or a sorted Vec",
    },
    BannedApi {
        key: "rand::thread_rng",
        idents: &["thread_rng"],
        paths: &[],
        // The offline `rand` stub deliberately does not export
        // `thread_rng`/`random`, so there is no resolvable path for
        // clippy to disallow — this pass is the only guard.
        clippy_types: &[],
        clippy_methods: &[],
        why: "seedless ambient RNG bypasses the named-stream RngFactory",
    },
    BannedApi {
        key: "rand::random",
        idents: &[],
        paths: &[&["rand", "random"]],
        clippy_types: &[],
        clippy_methods: &[],
        why: "seedless ambient RNG bypasses the named-stream RngFactory",
    },
    BannedApi {
        key: "std::env",
        idents: &[],
        paths: &[&["std", "env"]],
        clippy_types: &[],
        clippy_methods: &[
            "std::env::var",
            "std::env::var_os",
            "std::env::args",
            "std::env::temp_dir",
        ],
        why: "ambient process state; configuration must flow through explicit config structs",
    },
];

/// Runs the pass over one source file of a member in `tier`.
pub fn run(file: &SourceFile, tier: Tier, diags: &mut Vec<Diagnostic>) {
    if tier == Tier::Exempt {
        return;
    }
    let tokens = &file.lexed.tokens;
    for (i, tok) in file.lexed.non_test_tokens() {
        let TokenKind::Ident(ident) = &tok.kind else {
            continue;
        };
        for api in BANNED {
            let ident_hit = api.idents.contains(&ident.as_str());
            let path_hit = api.paths.iter().any(|p| path_matches(tokens, i, p));
            if !(ident_hit || path_hit) {
                continue;
            }
            // For path bans, only report at the path head to avoid a
            // second hit on the tail identifier.
            if !ident_hit && !api.paths.iter().any(|p| p[0] == ident.as_str()) {
                continue;
            }
            if file.suppressed(Lint::BannedApi, tok.line) {
                continue;
            }
            diags.push(Diagnostic::new(
                Lint::BannedApi,
                file.rel.clone(),
                tok.line,
                tok.col,
                format!(
                    "use of banned API `{}` in a {}-tier crate: {}. \
                     If this use is genuinely deterministic-safe, add \
                     `// sda-lint: allow(banned-api, reason = \"…\")`",
                    api.key,
                    tier.name(),
                    api.why
                ),
            ));
        }
    }
}

/// Whether the `::`-separated path `segs` starts at token `i`.
fn path_matches(tokens: &[crate::lexer::Token], i: usize, segs: &[&str]) -> bool {
    let mut idx = i;
    for (n, seg) in segs.iter().enumerate() {
        match tokens.get(idx).map(|t| &t.kind) {
            Some(TokenKind::Ident(id)) if id == seg => {}
            _ => return false,
        }
        idx += 1;
        if n + 1 < segs.len() {
            let colons = matches!(
                tokens.get(idx).map(|t| &t.kind),
                Some(TokenKind::Punct(':'))
            ) && matches!(
                tokens.get(idx + 1).map(|t| &t.kind),
                Some(TokenKind::Punct(':'))
            );
            if !colons {
                return false;
            }
            idx += 2;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(src: &str, tier: Tier) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let sf = SourceFile::new(PathBuf::from("crates/det/src/lib.rs"), src, &mut diags);
        run(&sf, tier, &mut diags);
        sf.report_unused_allows(&mut diags);
        diags
    }

    #[test]
    fn each_banned_api_fires_once() {
        let cases = [
            ("use std::time::Instant;", "std::time::Instant"),
            ("let t = SystemTime::now();", "std::time::SystemTime"),
            ("let m: HashMap<u8, u8> = HashMap::default();", "HashMap"),
            ("use std::collections::HashSet;", "HashSet"),
            ("let r = thread_rng();", "rand::thread_rng"),
            ("let x: f64 = rand::random();", "rand::random"),
            ("let v = std::env::var(\"X\");", "std::env"),
        ];
        for (src, key) in cases {
            let diags = lint(src, Tier::Deterministic);
            assert!(
                diags.iter().any(|d| d.message.contains(key)),
                "{src}: {diags:?}"
            );
        }
    }

    #[test]
    fn strings_comments_and_tests_do_not_fire() {
        let src = r#"
            // HashMap here is fine
            const NAME: &str = "Instant";
            #[cfg(test)]
            mod tests {
                use std::collections::HashSet;
                fn f() { let _ = std::env::var("GOLDEN_DUMP"); }
            }
        "#;
        assert!(lint(src, Tier::Deterministic).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_and_is_used() {
        let src = "use std::time::Instant; // sda-lint: allow(banned-api, reason = \"wall time is the measurement\")";
        assert!(lint(src, Tier::Harness).is_empty());
    }

    #[test]
    fn exempt_tier_is_skipped() {
        assert!(lint("use std::time::Instant;", Tier::Exempt).is_empty());
    }

    #[test]
    fn diagnostic_has_exact_position() {
        let diags = lint("\n  let x = Instant::now();", Tier::Deterministic);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].line, diags[0].col), (2, 11));
    }
}
