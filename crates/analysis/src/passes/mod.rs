//! The linter's passes, one module per lint.

pub mod banned_api;
pub mod clippy_sync;
pub mod golden;
pub mod lint_header;
pub mod streams;
