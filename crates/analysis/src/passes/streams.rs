//! Pass 2 — the RNG stream-name registry.
//!
//! Streams derive from `(master seed, label)` only, so two call sites
//! that pick the same label silently share a random stream: their draws
//! become perfectly correlated, which destroys the independence
//! assumptions behind variance reduction and any external validation
//! (miss-rate bounds, probabilistic deadline guarantees) — without
//! failing a single test. This pass extracts every `stream(...)` /
//! `stream_indexed(...)` call site, resolves the static name or prefix,
//! and checks the result against the committed
//! `analysis/streams.toml` registry:
//!
//! * **unregistered** — a name not in the registry is an error: naming a
//!   stream is a cross-cutting decision, not a local one;
//! * **cross-subsystem collision** — a registered name used from a crate
//!   other than its owner needs `shared = true` plus a note;
//! * **undocumented reuse** — an exact name with more than one call site
//!   needs a `note` saying why the correlation is intentional (indexed
//!   families are exempt: distinct indices are distinct streams);
//! * **literal-vs-indexed overlap** — a literal like `"system.failure.3"`
//!   shadowing an indexed family `system.failure.{i}` is an error unless
//!   the family's `allow_literal` lists it;
//! * **stale entries** — registry entries with zero call sites are
//!   errors, so the registry cannot rot;
//! * **unresolvable sites** — a dynamically built name the linter cannot
//!   resolve must carry `sda-lint: allow(stream-registry, …)`.

use std::collections::BTreeMap;

use crate::config::{StreamKind, StreamRegistry};
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// How a call site names its stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteName {
    /// `stream("literal")`.
    Exact(String),
    /// `stream_indexed("family", i)` — the family name.
    Indexed(String),
    /// `stream(&format!("prefix{…}", …))` — the static prefix before the
    /// first `{`.
    FormatPrefix(String),
    /// Built from runtime values; not statically resolvable.
    Dynamic,
}

/// One extracted call site.
#[derive(Debug)]
pub struct Site {
    /// The resolved (or unresolvable) name.
    pub name: SiteName,
    /// Workspace-relative file.
    pub file: std::path::PathBuf,
    /// Subsystem label of the file's crate.
    pub subsystem: String,
    /// 1-based line / column of the `stream` identifier.
    pub line: u32,
    /// Column.
    pub col: u32,
}

/// Extracts all stream call sites from one file.
pub fn extract(file: &SourceFile, subsystem: &str) -> Vec<Site> {
    let tokens = &file.lexed.tokens;
    let mut sites = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let TokenKind::Ident(id) = &tok.kind else {
            continue;
        };
        let indexed = match id.as_str() {
            "stream" => false,
            "stream_indexed" => true,
            _ => continue,
        };
        // Method or associated call only: preceded by `.` or `::`, and
        // followed by `(` — `fn stream(` definitions and doc text don't
        // qualify.
        let preceded = i > 0
            && matches!(
                tokens[i - 1].kind,
                TokenKind::Punct('.') | TokenKind::Punct(':')
            );
        let called = matches!(
            tokens.get(i + 1).map(|t| &t.kind),
            Some(TokenKind::Punct('('))
        );
        if !preceded || !called {
            continue;
        }
        let name = resolve_first_arg(tokens, i + 2, indexed);
        sites.push(Site {
            name,
            file: file.rel.clone(),
            subsystem: subsystem.to_string(),
            line: tok.line,
            col: tok.col,
        });
    }
    sites
}

/// Resolves the first argument starting at token `j`.
fn resolve_first_arg(tokens: &[crate::lexer::Token], j: usize, indexed: bool) -> SiteName {
    match tokens.get(j).map(|t| &t.kind) {
        Some(TokenKind::Str(s)) => {
            if indexed {
                SiteName::Indexed(s.clone())
            } else {
                SiteName::Exact(s.clone())
            }
        }
        // `&format!("…", …)` (possibly without the `&`).
        Some(TokenKind::Punct('&')) => resolve_first_arg(tokens, j + 1, indexed),
        Some(TokenKind::Ident(id)) if id == "format" => {
            let bang = matches!(
                tokens.get(j + 1).map(|t| &t.kind),
                Some(TokenKind::Punct('!'))
            );
            let paren = matches!(
                tokens.get(j + 2).map(|t| &t.kind),
                Some(TokenKind::Punct('('))
            );
            if bang && paren {
                if let Some(TokenKind::Str(fmt)) = tokens.get(j + 3).map(|t| &t.kind) {
                    let prefix = fmt.split('{').next().unwrap_or("");
                    if prefix.is_empty() {
                        return SiteName::Dynamic;
                    }
                    return SiteName::FormatPrefix(prefix.to_string());
                }
            }
            SiteName::Dynamic
        }
        _ => SiteName::Dynamic,
    }
}

/// Checks all extracted sites against the registry.
pub fn check(
    sites: &[Site],
    registry: &StreamRegistry,
    files: &BTreeMap<std::path::PathBuf, &SourceFile>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut use_counts: BTreeMap<usize, Vec<&Site>> = BTreeMap::new();

    let suppressed = |site: &Site| {
        files
            .get(&site.file)
            .is_some_and(|f| f.suppressed(Lint::StreamRegistry, site.line))
    };

    for site in sites {
        match &site.name {
            SiteName::Dynamic => {
                if !suppressed(site) {
                    diags.push(Diagnostic::new(
                        Lint::StreamRegistry,
                        site.file.clone(),
                        site.line,
                        site.col,
                        "stream name is built dynamically and cannot be checked against \
                         analysis/streams.toml — use a literal, stream_indexed, or annotate \
                         with `// sda-lint: allow(stream-registry, reason = \"…\")`"
                            .to_string(),
                    ));
                }
            }
            SiteName::Exact(name) => {
                // Literal shadowing an indexed family?
                let shadow = registry.entries.iter().enumerate().find(|(_, e)| {
                    e.kind == StreamKind::Indexed
                        && name
                            .strip_prefix(&e.name)
                            .and_then(|r| r.strip_prefix('.'))
                            .is_some_and(|idx| {
                                !idx.is_empty() && idx.chars().all(|c| c.is_ascii_digit())
                            })
                });
                let exact = registry
                    .entries
                    .iter()
                    .enumerate()
                    .find(|(_, e)| e.kind == StreamKind::Exact && e.name == *name);
                match (exact, shadow) {
                    (Some((ei, entry)), None) => {
                        check_subsystem(site, entry, suppressed(site), diags);
                        use_counts.entry(ei).or_default().push(site);
                    }
                    (None, Some((si, entry))) => {
                        if entry.allow_literal.iter().any(|l| l == name) {
                            use_counts.entry(si).or_default().push(site);
                            check_subsystem(site, entry, suppressed(site), diags);
                        } else if !suppressed(site) {
                            diags.push(Diagnostic::new(
                                Lint::StreamRegistry,
                                site.file.clone(),
                                site.line,
                                site.col,
                                format!(
                                    "literal stream `{name}` shadows the indexed family \
                                     `{base}.{{index}}` — it would silently share draws with \
                                     that family's member; register it in the family's \
                                     `allow_literal` if the collision is the point",
                                    base = entry.name
                                ),
                            ));
                        }
                    }
                    (Some((ei, entry)), Some((_, family))) => {
                        // Registered both ways: the registry itself is
                        // inconsistent unless the family allows it.
                        if !family.allow_literal.iter().any(|l| l == name) && !suppressed(site) {
                            diags.push(Diagnostic::new(
                                Lint::StreamRegistry,
                                site.file.clone(),
                                site.line,
                                site.col,
                                format!(
                                    "stream `{name}` is registered exactly but also matches \
                                     indexed family `{}.{{index}}`; add it to that family's \
                                     `allow_literal` to document the overlap",
                                    family.name
                                ),
                            ));
                        }
                        check_subsystem(site, entry, suppressed(site), diags);
                        use_counts.entry(ei).or_default().push(site);
                    }
                    (None, None) => {
                        if !suppressed(site) {
                            diags.push(Diagnostic::new(
                                Lint::StreamRegistry,
                                site.file.clone(),
                                site.line,
                                site.col,
                                format!(
                                    "unregistered stream name `{name}` — add a [[stream]] entry \
                                     to analysis/streams.toml (subsystem `{}`)",
                                    site.subsystem
                                ),
                            ));
                        }
                    }
                }
            }
            SiteName::Indexed(name) => {
                match registry
                    .entries
                    .iter()
                    .enumerate()
                    .find(|(_, e)| e.kind == StreamKind::Indexed && e.name == *name)
                {
                    Some((ei, entry)) => {
                        check_subsystem(site, entry, suppressed(site), diags);
                        use_counts.entry(ei).or_default().push(site);
                    }
                    None => {
                        if !suppressed(site) {
                            diags.push(Diagnostic::new(
                                Lint::StreamRegistry,
                                site.file.clone(),
                                site.line,
                                site.col,
                                format!(
                                    "unregistered indexed stream family `{name}.{{index}}` — add \
                                     a [[stream]] entry with kind = \"indexed\" to \
                                     analysis/streams.toml (subsystem `{}`)",
                                    site.subsystem
                                ),
                            ));
                        }
                    }
                }
            }
            SiteName::FormatPrefix(prefix) => {
                // A format site matches an indexed family whose
                // `name.` equals the static prefix.
                match registry.entries.iter().enumerate().find(|(_, e)| {
                    e.kind == StreamKind::Indexed && format!("{}.", e.name) == *prefix
                }) {
                    Some((ei, entry)) => {
                        check_subsystem(site, entry, suppressed(site), diags);
                        use_counts.entry(ei).or_default().push(site);
                    }
                    None => {
                        if !suppressed(site) {
                            diags.push(Diagnostic::new(
                                Lint::StreamRegistry,
                                site.file.clone(),
                                site.line,
                                site.col,
                                format!(
                                    "format-string stream with prefix `{prefix}` matches no \
                                     indexed family in analysis/streams.toml — register \
                                     `{}` with kind = \"indexed\"",
                                    prefix.trim_end_matches('.')
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Registry-side checks: stale entries and undocumented reuse.
    for (ei, entry) in registry.entries.iter().enumerate() {
        let sites_for = use_counts.get(&ei).map_or(&[][..], |v| &v[..]);
        if sites_for.is_empty() {
            diags.push(Diagnostic::new(
                Lint::StreamRegistry,
                "analysis/streams.toml",
                entry.line,
                1,
                format!(
                    "stale registry entry `{}` — no call site uses it; remove it or fix the \
                     call sites",
                    entry.name
                ),
            ));
        } else if sites_for.len() > 1
            && entry.kind == StreamKind::Exact
            && entry.note.trim().is_empty()
        {
            diags.push(Diagnostic::new(
                Lint::StreamRegistry,
                "analysis/streams.toml",
                entry.line,
                1,
                format!(
                    "stream `{}` has {} call sites but no `note` — document why the shared \
                     draw sequence is intentional (or rename one site)",
                    entry.name,
                    sites_for.len()
                ),
            ));
        }
    }
}

fn check_subsystem(
    site: &Site,
    entry: &crate::config::StreamEntry,
    suppressed: bool,
    diags: &mut Vec<Diagnostic>,
) {
    if entry.subsystem != site.subsystem && !entry.shared && !suppressed {
        diags.push(Diagnostic::new(
            Lint::StreamRegistry,
            site.file.clone(),
            site.line,
            site.col,
            format!(
                "stream `{}` is owned by subsystem `{}` but used from `{}` — the two sites \
                 would draw from one correlated stream; mark the entry `shared = true` with a \
                 note if that is intentional",
                entry.name, entry.subsystem, site.subsystem
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minitoml::Document;
    use std::path::PathBuf;

    fn registry(toml: &str) -> StreamRegistry {
        let mut diags = Vec::new();
        let reg = StreamRegistry::parse(
            &Document::parse(toml).unwrap(),
            std::path::Path::new("analysis/streams.toml"),
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");
        reg
    }

    fn run_one(src: &str, subsystem: &str, toml: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let sf = SourceFile::new(PathBuf::from("crates/x/src/lib.rs"), src, &mut diags);
        let sites = extract(&sf, subsystem);
        let mut files = BTreeMap::new();
        files.insert(sf.rel.clone(), &sf);
        check(&sites, &registry(toml), &files, &mut diags);
        diags
    }

    const REG: &str = r#"
[[stream]]
name = "sys.net"
subsystem = "sys"

[[stream]]
name = "sys.fail"
kind = "indexed"
subsystem = "sys"
"#;

    #[test]
    fn registered_names_are_clean() {
        let src = r#"
            let a = rng.stream("sys.net");
            let b = rng.stream_indexed("sys.fail", i);
            let c = rng.stream(&format!("sys.fail.{i}"));
        "#;
        assert!(run_one(src, "sys", REG).is_empty());
    }

    #[test]
    fn unregistered_exact_indexed_and_format_names_fire() {
        for (src, what) in [
            (r#"rng.stream("nope");"#, "unregistered stream name `nope`"),
            (
                r#"rng.stream_indexed("nope", i);"#,
                "unregistered indexed stream family",
            ),
            (
                r#"rng.stream(&format!("nope.{i}"));"#,
                "matches no indexed family",
            ),
        ] {
            let diags: Vec<_> = run_one(src, "sys", REG)
                .into_iter()
                .filter(|d| !d.message.contains("stale registry entry"))
                .collect();
            assert_eq!(diags.len(), 1, "{src}: {diags:?}");
            assert!(diags[0].message.contains(what), "{src}: {diags:?}");
        }
    }

    #[test]
    fn literal_shadowing_an_indexed_family_fires() {
        let diags: Vec<_> = run_one(r#"rng.stream("sys.fail.3");"#, "sys", REG)
            .into_iter()
            .filter(|d| !d.message.contains("stale registry entry"))
            .collect();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("shadows the indexed family"));
        // …but allow_literal documents it away.
        let reg = r#"
[[stream]]
name = "sys.fail"
kind = "indexed"
subsystem = "sys"
allow_literal = ["sys.fail.3"]
"#;
        assert!(run_one(r#"rng.stream("sys.fail.3");"#, "sys", reg).is_empty());
    }

    #[test]
    fn cross_subsystem_use_fires_unless_shared() {
        let diags = run_one(
            r#"rng.stream("sys.net"); rng.stream_indexed("sys.fail", i);"#,
            "other",
            REG,
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("owned by subsystem `sys`"));
        let shared = r#"
[[stream]]
name = "sys.net"
subsystem = "sys"
shared = true
note = "common random numbers across subsystems, by design"
"#;
        assert!(run_one(r#"rng.stream("sys.net");"#, "other", shared).is_empty());
    }

    #[test]
    fn dynamic_sites_need_an_annotation() {
        let diags = run_one("rng.stream(name);", "sys", REG);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("built dynamically")));
        let ok = r#"
            // sda-lint: allow(stream-registry, reason = "joins label+index; every caller is checked")
            rng.stream(name);
        "#;
        let diags = run_one(ok, "sys", REG);
        assert!(
            diags
                .iter()
                .all(|d| !d.message.contains("built dynamically")),
            "{diags:?}"
        );
    }

    #[test]
    fn stale_entries_and_undocumented_reuse_fire() {
        let diags = run_one(
            r#"rng.stream("sys.net"); rng.stream("sys.net");"#,
            "sys",
            REG,
        );
        // sys.net reused without note + sys.fail stale.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("no `note`")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("stale registry entry `sys.fail`")));
    }

    #[test]
    fn fn_definitions_and_plain_calls_are_not_sites() {
        let src = r#"
            fn stream(seed: u64) -> Stream { RngFactory::new(seed).stream("sys.net") }
            let s = stream(1);
        "#;
        let mut diags = Vec::new();
        let sf = SourceFile::new(PathBuf::from("crates/x/src/lib.rs"), src, &mut diags);
        let sites = extract(&sf, "sys");
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].name, SiteName::Exact("sys.net".into()));
    }
}
