//! Pass 3 — crate-root lint headers.
//!
//! Every non-compat crate must pin `#![forbid(unsafe_code)]` (all
//! workspace crates are safe Rust; `forbid` means a future PR cannot
//! even `allow` its way around it) and `#![deny(missing_docs)]` (the
//! public surface is the reproduction's contract; an undocumented knob
//! is an unreviewable knob). A crate may be excused from the docs
//! requirement via `[lint_header] missing_docs_exempt` in
//! `analysis/lints.toml` — with a reason.

use crate::config::LintsConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Member;

/// Checks one member's crate-root file.
pub fn run(
    member: &Member,
    root_file: &SourceFile,
    lints: &LintsConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if !has_inner_attr(root_file, "forbid", "unsafe_code") {
        diags.push(Diagnostic::new(
            Lint::LintHeader,
            root_file.rel.clone(),
            1,
            1,
            format!(
                "crate `{}` must carry `#![forbid(unsafe_code)]` at the top of {}",
                member.label,
                root_file.rel.display()
            ),
        ));
    }
    let exempt = lints
        .missing_docs_exempt
        .iter()
        .any(|(path, _)| *path == member.path);
    if !exempt && !has_inner_attr(root_file, "deny", "missing_docs") {
        diags.push(Diagnostic::new(
            Lint::LintHeader,
            root_file.rel.clone(),
            1,
            1,
            format!(
                "crate `{}` must carry `#![deny(missing_docs)]` (or a \
                 missing_docs_exempt entry with a reason in analysis/lints.toml)",
                member.label
            ),
        ));
    }
}

/// Whether `#![level(lint)]` appears in the file.
fn has_inner_attr(file: &SourceFile, level: &str, lint: &str) -> bool {
    let tokens = &file.lexed.tokens;
    tokens.windows(6).any(|w| {
        matches!(&w[0].kind, TokenKind::Punct('#'))
            && matches!(&w[1].kind, TokenKind::Punct('!'))
            && matches!(&w[2].kind, TokenKind::Punct('['))
            && matches!(&w[3].kind, TokenKind::Ident(i) if i == level)
            && matches!(&w[4].kind, TokenKind::Punct('('))
            && matches!(&w[5].kind, TokenKind::Ident(i) if i == lint)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Tier;
    use std::path::PathBuf;

    fn member() -> Member {
        Member {
            path: "crates/det".into(),
            label: "det".into(),
            tier: Tier::Deterministic,
            root_file: Some(PathBuf::from("crates/det/src/lib.rs")),
            src_files: vec![],
            test_files: vec![],
        }
    }

    fn check(src: &str, lints: &LintsConfig) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let sf = SourceFile::new(PathBuf::from("crates/det/src/lib.rs"), src, &mut diags);
        run(&member(), &sf, lints, &mut diags);
        diags
    }

    #[test]
    fn both_attrs_present_is_clean() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";
        assert!(check(src, &LintsConfig::default()).is_empty());
    }

    #[test]
    fn missing_attrs_fire_individually() {
        let diags = check("#![deny(missing_docs)]", &LintsConfig::default());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("forbid(unsafe_code)"));
        let diags = check("#![forbid(unsafe_code)]", &LintsConfig::default());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("deny(missing_docs)"));
    }

    #[test]
    fn warn_is_not_deny() {
        let diags = check(
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n",
            &LintsConfig::default(),
        );
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn docs_exemption_is_honored() {
        let lints = LintsConfig {
            missing_docs_exempt: vec![("crates/det".into(), "generated code".into())],
            ..LintsConfig::default()
        };
        assert!(check("#![forbid(unsafe_code)]", &lints).is_empty());
    }
}
