//! Pass 5 — `clippy.toml` must mirror the banned-API pass.
//!
//! Clippy's `disallowed-types` / `disallowed-methods` are the *native*
//! backstop for the banned-API pass: they fire inside IDEs and under
//! `cargo clippy` where this linter may not run. Two lists that drift
//! are worse than one list — a developer who sees clippy stay silent
//! will assume the API is fine. This pass diffs `clippy.toml` against
//! the [`BANNED`] table and errors on any
//! path present on one side only.

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::{Diagnostic, Lint};
use crate::minitoml::{Document, Value};
use crate::passes::banned_api::BANNED;

/// Diffs `clippy.toml` (at the workspace root) against the ban table.
pub fn run(root: &Path, diags: &mut Vec<Diagnostic>) {
    let rel = Path::new("clippy.toml");
    let text = match std::fs::read_to_string(root.join(rel)) {
        Ok(t) => t,
        Err(e) => {
            diags.push(Diagnostic::file_level(
                Lint::ClippySync,
                rel,
                format!(
                    "clippy.toml is required as the native backstop for the banned-API pass \
                     but cannot be read: {e}"
                ),
            ));
            return;
        }
    };
    let doc = match Document::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            diags.push(Diagnostic::file_level(
                Lint::ClippySync,
                rel,
                format!("cannot parse clippy.toml: {e}"),
            ));
            return;
        }
    };
    check_list(&doc, "disallowed-types", expected_types(), rel, diags);
    check_list(&doc, "disallowed-methods", expected_methods(), rel, diags);
}

/// The `disallowed-types` paths the ban table mandates.
pub fn expected_types() -> BTreeSet<&'static str> {
    BANNED
        .iter()
        .flat_map(|b| b.clippy_types.iter().copied())
        .collect()
}

/// The `disallowed-methods` paths the ban table mandates.
pub fn expected_methods() -> BTreeSet<&'static str> {
    BANNED
        .iter()
        .flat_map(|b| b.clippy_methods.iter().copied())
        .collect()
}

fn check_list(
    doc: &Document,
    key: &str,
    expected: BTreeSet<&'static str>,
    rel: &Path,
    diags: &mut Vec<Diagnostic>,
) {
    let mut found = BTreeSet::new();
    if let Some(Value::Array(items)) = doc.sections[0].get(key) {
        for item in items {
            match item {
                Value::Table(t) => match t.get("path") {
                    Some(p) => {
                        if t.get("reason").is_none_or(|r| r.trim().is_empty()) {
                            diags.push(Diagnostic::file_level(
                                Lint::ClippySync,
                                rel,
                                format!("{key} entry `{p}` needs a non-empty `reason`"),
                            ));
                        }
                        found.insert(p.clone());
                    }
                    None => diags.push(Diagnostic::file_level(
                        Lint::ClippySync,
                        rel,
                        format!("{key} entry without a `path`"),
                    )),
                },
                Value::Str(p) => {
                    found.insert(p.clone());
                }
                other => diags.push(Diagnostic::file_level(
                    Lint::ClippySync,
                    rel,
                    format!("{key}: unsupported entry {other:?}"),
                )),
            }
        }
    }
    for miss in expected.iter().filter(|e| !found.contains(**e)) {
        diags.push(Diagnostic::file_level(
            Lint::ClippySync,
            rel,
            format!(
                "{key} is missing `{miss}` — the banned-API pass bans it, so clippy must \
                 disallow it too"
            ),
        ));
    }
    for extra in found.iter().filter(|f| !expected.contains(f.as_str())) {
        diags.push(Diagnostic::file_level(
            Lint::ClippySync,
            rel,
            format!(
                "{key} lists `{extra}` which the banned-API pass does not ban — add it to \
                 the BANNED table in sda-analysis or remove it here"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_sets_are_nonempty_and_disjointly_sourced() {
        assert!(expected_types().contains("std::collections::HashMap"));
        assert!(expected_methods().contains("std::env::var"));
        // rand bans have no clippy mirror (the offline stub exports
        // neither function), by documented design.
        assert!(!expected_methods().contains("rand::thread_rng"));
    }
}
