//! Models for `analysis/lints.toml` and `analysis/streams.toml`.

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::{Diagnostic, Lint};
use crate::minitoml::Document;

/// Policy tier of a workspace member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Simulation-semantics crates: all passes, full banned-API list.
    Deterministic,
    /// Measurement/tooling crates: same passes, but wall-clock and
    /// ambient-state uses are expected — and must each carry an inline
    /// `sda-lint: allow` with a reason.
    Harness,
    /// Offline dependency stubs (`crates/compat/*`): not linted.
    Exempt,
}

impl Tier {
    /// The name used in `lints.toml`.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Deterministic => "deterministic",
            Tier::Harness => "harness",
            Tier::Exempt => "exempt",
        }
    }
}

/// One `[[golden.enum]]` entry: a public config enum whose variants must
/// all be named by the golden/regression suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenEnum {
    /// The enum's Rust name (e.g. `NetworkModel`).
    pub name: String,
    /// Workspace-relative file declaring it.
    pub file: String,
}

/// Parsed `analysis/lints.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintsConfig {
    /// Member paths (`"."` = the root package) per tier.
    pub deterministic: Vec<String>,
    /// Harness-tier member paths.
    pub harness: Vec<String>,
    /// Exempt member paths.
    pub exempt: Vec<String>,
    /// Crates excused from `#![deny(missing_docs)]` (path, reason).
    pub missing_docs_exempt: Vec<(String, String)>,
    /// Directories (workspace-relative) whose `.rs` files count as
    /// golden/regression tests for the coverage pass.
    pub golden_test_dirs: Vec<String>,
    /// The enums the golden-coverage pass checks.
    pub golden_enums: Vec<GoldenEnum>,
}

impl LintsConfig {
    /// Parses the document, reporting structural problems as `config`
    /// diagnostics against `file`.
    pub fn parse(doc: &Document, file: &Path, diags: &mut Vec<Diagnostic>) -> LintsConfig {
        let mut cfg = LintsConfig::default();
        match doc.section("tiers") {
            Some(tiers) => {
                cfg.deterministic = tiers.get_str_array("deterministic");
                cfg.harness = tiers.get_str_array("harness");
                cfg.exempt = tiers.get_str_array("exempt");
            }
            None => diags.push(Diagnostic::file_level(
                Lint::Config,
                file,
                "missing [tiers] section: every workspace member must be assigned a policy tier",
            )),
        }
        if let Some(lh) = doc.section("lint_header") {
            for item in lh.get_str_array("missing_docs_exempt") {
                diags.push(Diagnostic::new(
                    Lint::Config,
                    file,
                    lh.line,
                    1,
                    format!(
                        "missing_docs_exempt entries must be inline tables \
                         {{ path = \"…\", reason = \"…\" }}, got bare string `{item}`"
                    ),
                ));
            }
            if let Some(crate::minitoml::Value::Array(items)) = lh.get("missing_docs_exempt") {
                for v in items {
                    if let crate::minitoml::Value::Table(t) = v {
                        match (t.get("path"), t.get("reason")) {
                            (Some(p), Some(r)) if !r.trim().is_empty() => {
                                cfg.missing_docs_exempt.push((p.clone(), r.clone()));
                            }
                            _ => diags.push(Diagnostic::new(
                                Lint::Config,
                                file,
                                lh.line,
                                1,
                                "missing_docs_exempt entry needs `path` and a non-empty `reason`",
                            )),
                        }
                    }
                }
            }
        }
        if let Some(golden) = doc.section("golden") {
            cfg.golden_test_dirs = golden.get_str_array("test_dirs");
        }
        for e in doc.sections_named("golden.enum") {
            match (e.get_str("name"), e.get_str("file")) {
                (Some(name), Some(path)) => cfg.golden_enums.push(GoldenEnum {
                    name: name.to_string(),
                    file: path.to_string(),
                }),
                _ => diags.push(Diagnostic::new(
                    Lint::Config,
                    file,
                    e.line,
                    1,
                    "[[golden.enum]] needs `name` and `file`",
                )),
            }
        }
        let mut seen = BTreeSet::new();
        for path in cfg
            .deterministic
            .iter()
            .chain(&cfg.harness)
            .chain(&cfg.exempt)
        {
            if !seen.insert(path.clone()) {
                diags.push(Diagnostic::file_level(
                    Lint::Config,
                    file,
                    format!("member `{path}` is assigned to more than one tier"),
                ));
            }
        }
        cfg
    }

    /// The tier of a member path, if assigned.
    pub fn tier_of(&self, member: &str) -> Option<Tier> {
        if self.deterministic.iter().any(|m| m == member) {
            Some(Tier::Deterministic)
        } else if self.harness.iter().any(|m| m == member) {
            Some(Tier::Harness)
        } else if self.exempt.iter().any(|m| m == member) {
            Some(Tier::Exempt)
        } else {
            None
        }
    }
}

/// Kind of a stream-registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StreamKind {
    /// A single literal name, e.g. `"system.network"`.
    Exact,
    /// A per-entity family `name.{index}`, used via `stream_indexed` or a
    /// format string with the `name.` prefix.
    Indexed,
}

/// One `[[stream]]` registry entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEntry {
    /// The stream name (for `Indexed`, the prefix before `.{index}`).
    pub name: String,
    /// Exact name or indexed family.
    pub kind: StreamKind,
    /// Owning subsystem: a crate label (`core`, `sim`, …, `sda`).
    pub subsystem: String,
    /// `"runtime"` or `"test"` — documentation of where the stream lives.
    pub scope: String,
    /// Why reuse/sharing is intentional. Required once a name has more
    /// than one call site.
    pub note: String,
    /// Whether call sites outside `subsystem` are intentional.
    pub shared: bool,
    /// Literal names that intentionally shadow this indexed family
    /// (e.g. a test pinning `stream_indexed("node", 3) == stream("node.3")`).
    pub allow_literal: Vec<String>,
    /// 1-based line of the entry in `streams.toml`.
    pub line: u32,
}

/// Parsed `analysis/streams.toml`.
#[derive(Debug, Clone, Default)]
pub struct StreamRegistry {
    /// All entries, in file order.
    pub entries: Vec<StreamEntry>,
}

impl StreamRegistry {
    /// Parses the document, reporting malformed entries against `file`.
    pub fn parse(doc: &Document, file: &Path, diags: &mut Vec<Diagnostic>) -> StreamRegistry {
        let mut reg = StreamRegistry::default();
        for s in doc.sections_named("stream") {
            let Some(name) = s.get_str("name") else {
                diags.push(Diagnostic::new(
                    Lint::Config,
                    file,
                    s.line,
                    1,
                    "[[stream]] entry without a `name`",
                ));
                continue;
            };
            let kind = match s.get_str("kind").unwrap_or("exact") {
                "exact" => StreamKind::Exact,
                "indexed" => StreamKind::Indexed,
                other => {
                    diags.push(Diagnostic::new(
                        Lint::Config,
                        file,
                        s.line,
                        1,
                        format!("stream `{name}`: unknown kind `{other}` (exact|indexed)"),
                    ));
                    StreamKind::Exact
                }
            };
            let Some(subsystem) = s.get_str("subsystem") else {
                diags.push(Diagnostic::new(
                    Lint::Config,
                    file,
                    s.line,
                    1,
                    format!("stream `{name}`: missing `subsystem`"),
                ));
                continue;
            };
            let scope = s.get_str("scope").unwrap_or("runtime").to_string();
            if scope != "runtime" && scope != "test" {
                diags.push(Diagnostic::new(
                    Lint::Config,
                    file,
                    s.line,
                    1,
                    format!("stream `{name}`: unknown scope `{scope}` (runtime|test)"),
                ));
            }
            reg.entries.push(StreamEntry {
                name: name.to_string(),
                kind,
                subsystem: subsystem.to_string(),
                scope,
                note: s.get_str("note").unwrap_or("").to_string(),
                shared: s.get_bool("shared"),
                allow_literal: s.get_str_array("allow_literal"),
                line: s.line,
            });
        }
        let mut seen = BTreeSet::new();
        for e in &reg.entries {
            if !seen.insert((e.name.clone(), e.kind)) {
                diags.push(Diagnostic::new(
                    Lint::Config,
                    file,
                    e.line,
                    1,
                    format!("duplicate [[stream]] entry for `{}`", e.name),
                ));
            }
        }
        reg
    }
}
