//! A comment/string-aware Rust lexer — just enough syntax to lint with.
//!
//! The linter must never mistake `"HashMap"` in a string, `Instant` in a
//! doc comment, or a banned name inside `#[cfg(test)]` code for a real
//! violation. Full parsing is overkill (and would drag in a dependency);
//! instead this module tokenizes source text into identifiers, string
//! literals and punctuation with exact line/column spans, collects
//! comments separately (they carry the `sda-lint:` escape hatches), and
//! marks the token ranges covered by `#[cfg(test)]`-gated items so passes
//! can skip test-only code.
//!
//! Handled Rust surface: line and (nested) block comments, string /
//! raw-string / byte-string / char literals, lifetimes, numbers. That is
//! every construct that could otherwise smuggle a banned name past a
//! text search or hide one from it.

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#type`, …).
    Ident(String),
    /// A string literal, with the raw (uncooked) contents.
    Str(String),
    /// A numeric literal (contents not interpreted).
    Num,
    /// A char literal or lifetime (contents irrelevant to the lints).
    CharOrLifetime,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct(char),
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// A comment (line or block), kept out-of-band from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text *without* the `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// True when no token precedes the comment on its starting line.
    pub owns_line: bool,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// `in_test[i]` — whether token `i` is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl Token {
    fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

impl Lexed {
    /// Tokenizes `src`. Never fails: unterminated constructs consume to
    /// end-of-file (the compiler, not the linter, reports those).
    pub fn new(src: &str) -> Lexed {
        let mut lx = Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
            line_has_token: false,
        };
        lx.run();
        let mut out = lx.out;
        out.in_test = mark_cfg_test(&out.tokens);
        out
    }

    /// Iterator over `(index, token)` pairs of non-test tokens only.
    pub fn non_test_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.in_test[*i])
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    line_has_token: bool,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_token = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
        self.line_has_token = true;
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    let s = self.cooked_string();
                    self.push(TokenKind::Str(s), line, col);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    let s = self.cooked_string();
                    self.push(TokenKind::Str(s), line, col);
                }
                'r' | 'b' if self.raw_string_ahead() => {
                    let s = self.raw_string();
                    self.push(TokenKind::Str(s), line, col);
                }
                '\'' => {
                    self.char_or_lifetime();
                    self.push(TokenKind::CharOrLifetime, line, col);
                }
                c if c.is_ascii_digit() => {
                    // Consume the whole numeric literal, including `.`,
                    // exponent signs and suffixes (`1.0e-3f64`).
                    self.bump();
                    while let Some(n) = self.peek(0) {
                        let exp_sign = (n == '+' || n == '-')
                            && matches!(self.chars.get(self.pos - 1), Some('e' | 'E'));
                        if n.is_ascii_alphanumeric() || n == '_' || n == '.' || exp_sign {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Num, line, col);
                }
                c if c == '_' || c.is_alphabetic() => {
                    let mut ident = String::new();
                    // Raw identifiers (`r#type`) lex as plain idents.
                    if c == 'r' && self.peek(1) == Some('#') {
                        if let Some(c2) = self.peek(2) {
                            if c2 == '_' || c2.is_alphabetic() {
                                self.bump();
                                self.bump();
                            }
                        }
                    }
                    while let Some(n) = self.peek(0) {
                        if n == '_' || n.is_alphanumeric() {
                            ident.push(n);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident(ident), line, col);
                }
                p => {
                    self.bump();
                    self.push(TokenKind::Punct(p), line, col);
                }
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        let owns_line = !self.line_has_token;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            owns_line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let owns_line = !self.line_has_token;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push('*');
                        text.push('/');
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            owns_line,
        });
    }

    /// Consumes a cooked string body (opening quote already consumed).
    fn cooked_string(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    self.bump();
                    break;
                }
                '\\' => {
                    // Keep escapes verbatim; the lints only need literal
                    // stream names, which never contain escapes.
                    s.push(c);
                    self.bump();
                    if let Some(esc) = self.peek(0) {
                        s.push(esc);
                        self.bump();
                    }
                }
                _ => {
                    s.push(c);
                    self.bump();
                }
            }
        }
        s
    }

    /// Whether `r"`, `r#"`, `br"`, `br#"`… starts at the cursor.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) -> String {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut s = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Close only on `"` followed by exactly `hashes` hashes.
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            s.push(c);
            self.bump();
        }
        s
    }

    /// Distinguishes `'a'` / `'\n'` (char literals) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape, then to the quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // 'x' — plain char literal.
                    self.bump();
                    self.bump();
                } else {
                    // 'ident — lifetime: consume the identifier only.
                    while let Some(n) = self.peek(0) {
                        if n == '_' || n.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' .
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item.
///
/// On seeing `#[cfg(...)]` whose argument tokens contain the bare ident
/// `test`, the following item — after any further attributes — is skipped
/// to its closing `;` or matching `}`. This covers `#[cfg(test)] mod`,
/// `#[cfg(test)] use …;` and `#[cfg(all(test, …))]` alike.
fn mark_cfg_test(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = cfg_test_attr(tokens, i) {
            let start = i;
            let mut j = attr_end;
            // Skip any further attributes on the same item.
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            // Consume the item: to `;` at depth 0, or balanced `{}`.
            let mut depth = 0usize;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    j += 1;
                    break;
                }
                j += 1;
            }
            for flag in &mut mask[start..j] {
                *flag = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// If a `#[cfg(… test …)]` attribute starts at `i`, returns the index
/// one past its closing `]`.
fn cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    if !tokens.get(i + 2)?.is_ident("cfg") || !tokens.get(i + 3)?.is_punct('(') {
        return None;
    }
    let mut j = i + 4;
    let mut depth = 1usize;
    let mut has_test = false;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.is_ident("test") {
            has_test = true;
        }
        j += 1;
    }
    if !has_test || !tokens.get(j)?.is_punct(']') {
        return None;
    }
    Some(j + 1)
}

/// Returns the index one past an attribute starting at `i` (`#` there).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    if j >= tokens.len() || !tokens[j].is_punct('[') {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        Lexed::new(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let c = 'I';
            let real = thread_rng;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn string_literal_values_are_captured() {
        let lx = Lexed::new(r#"f.stream("workload.pex")"#);
        let strs: Vec<_> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["workload.pex".to_string()]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn char_literals_do_not_unbalance() {
        let ids = idents("let q = '\\''; let b = '{'; after");
        assert!(ids.contains(&"after".to_string()));
        let lx = Lexed::new("let b = '{'; fn g() {}");
        let braces: i32 = lx
            .tokens
            .iter()
            .map(|t| match t.kind {
                TokenKind::Punct('{') => 1,
                TokenKind::Punct('}') => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0, "char-literal brace must not count");
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = r#"
            use std::collections::BTreeMap;
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn helper() { let m: HashMap<u8, u8> = HashMap::new(); }
            }
            fn live() { let x = Instant::now(); }
        "#;
        let lx = Lexed::new(src);
        let visible: Vec<String> = lx
            .non_test_tokens()
            .filter_map(|(_, t)| match &t.kind {
                TokenKind::Ident(i) => Some(i.clone()),
                _ => None,
            })
            .collect();
        assert!(visible.contains(&"Instant".to_string()));
        assert!(visible.contains(&"BTreeMap".to_string()));
        assert!(!visible.contains(&"HashMap".to_string()));
    }

    #[test]
    fn cfg_test_use_statement_masks_to_semicolon() {
        let src = "#[cfg(test)] use std::collections::HashSet; fn live() {}";
        let lx = Lexed::new(src);
        let visible: Vec<String> = lx
            .non_test_tokens()
            .filter_map(|(_, t)| match &t.kind {
                TokenKind::Ident(i) => Some(i.clone()),
                _ => None,
            })
            .collect();
        assert!(!visible.contains(&"HashSet".to_string()));
        assert!(visible.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_all_test_is_masked_but_cfg_feature_is_not() {
        let src = r#"
            #[cfg(all(test, feature = "x"))]
            fn a() { HashMap }
            #[cfg(feature = "y")]
            fn b() { HashSet }
        "#;
        let lx = Lexed::new(src);
        let visible: Vec<String> = lx
            .non_test_tokens()
            .filter_map(|(_, t)| match &t.kind {
                TokenKind::Ident(i) => Some(i.clone()),
                _ => None,
            })
            .collect();
        assert!(!visible.contains(&"HashMap".to_string()));
        assert!(visible.contains(&"HashSet".to_string()));
    }

    #[test]
    fn comment_ownership_and_positions() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lx = Lexed::new(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(!lx.comments[0].owns_line);
        assert_eq!(lx.comments[0].line, 1);
        assert!(lx.comments[1].owns_line);
        assert_eq!(lx.comments[1].line, 2);
        let y = lx
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(i) if i == "y"))
            .unwrap();
        assert_eq!((y.line, y.col), (3, 5));
    }
}
