//! CLI for the workspace determinism linter.
//!
//! ```text
//! cargo run -p sda-analysis                   # report findings, exit 0
//! cargo run -p sda-analysis -- --deny         # CI mode: findings exit 1
//! cargo run -p sda-analysis -- --list-streams # dump extracted call sites
//! cargo run -p sda-analysis -- --root PATH    # lint another tree
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

#[allow(clippy::disallowed_methods)] // argv parsing — see the sda-lint allow below
fn main() -> ExitCode {
    // sda-lint: allow(banned-api, reason = "CLI entry point: argv parsing happens before any simulation state exists")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-streams" => list = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown flag `{other}`");
                eprintln!("usage: sda-analysis [--root PATH] [--deny] [--list-streams]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    if list {
        for line in sda_analysis::list_streams(&root) {
            println!("{line}");
        }
        return ExitCode::SUCCESS;
    }

    let report = sda_analysis::analyze(&root);
    for d in &report.diagnostics {
        println!("{d}");
    }
    let s = report.stats;
    eprintln!(
        "sda-analysis: {} member(s), {} file(s), {} stream site(s) against {} registry \
         entr(y/ies), {} golden enum(s) — {} finding(s)",
        s.members,
        s.files,
        s.stream_sites,
        s.stream_entries,
        s.enums,
        report.diagnostics.len()
    );
    if deny && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::path::Path::new(".")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return PathBuf::from("."),
        }
    }
}
