//! Statistical-sanity property tests for the time-varying
//! [`ArrivalProcess`] family.
//!
//! Pins two contracts across randomized parameterizations:
//!
//! * **rate preservation** — the seeded long-run empirical rate of an
//!   MMPP or phased stream stays within tolerance of the configured
//!   mean (`load` is a *time-average* promise, whatever the arrival
//!   dynamics);
//! * **determinism** — the same seed yields a bit-identical interarrival
//!   sequence (the repo-wide reproducibility invariant extends to the
//!   new samplers).

use proptest::prelude::*;

use sda_sim::rng::RngFactory;
use sda_workload::{ArrivalProcess, ArrivalSampler, PhaseSegment, TaskFactory, WorkloadConfig};

fn mmpp_processes() -> impl Strategy<Value = ArrivalProcess> {
    (1.2f64..10.0, 20.0f64..300.0, 10.0f64..150.0).prop_map(
        |(burst_ratio, dwell_quiet, dwell_burst)| ArrivalProcess::Mmpp2 {
            burst_ratio,
            dwell_quiet,
            dwell_burst,
        },
    )
}

fn phased_processes() -> impl Strategy<Value = ArrivalProcess> {
    prop::collection::vec((5.0f64..200.0, 0.1f64..4.0), 1..5).prop_map(|segs| {
        ArrivalProcess::Phased {
            segments: segs
                .into_iter()
                .map(|(duration, rate_factor)| PhaseSegment::new(duration, rate_factor))
                .collect(),
        }
    })
}

/// Empirical rate of `n` draws from a fresh sampler.
fn empirical_rate(process: &ArrivalProcess, rate: f64, seed: u64, n: usize) -> f64 {
    let mut sampler = ArrivalSampler::new(process, rate).expect("positive rate");
    let mut rng = RngFactory::new(seed).stream("arrival-props");
    let total: f64 = (0..n).map(|_| sampler.sample_with(&mut rng)).sum();
    n as f64 / total
}

/// The gap sequence of `n` draws.
fn gap_sequence(process: &ArrivalProcess, rate: f64, seed: u64, n: usize) -> Vec<u64> {
    let mut sampler = ArrivalSampler::new(process, rate).expect("positive rate");
    let mut rng = RngFactory::new(seed).stream("arrival-props");
    (0..n)
        .map(|_| {
            let gap = sampler.sample_with(&mut rng);
            assert!(gap.is_finite() && gap >= 0.0, "gap {gap}");
            gap.to_bits()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MMPP streams preserve the configured mean rate in the long run.
    #[test]
    fn mmpp_empirical_rate_matches_mean(
        process in mmpp_processes(),
        rate in 0.2f64..2.0,
        seed in any::<u64>(),
    ) {
        prop_assert!(process.validate().is_ok());
        // 60k arrivals span hundreds of dwell cycles at these
        // parameters, enough for a 10% tolerance.
        let empirical = empirical_rate(&process, rate, seed, 60_000);
        prop_assert!(
            (empirical - rate).abs() / rate < 0.10,
            "MMPP empirical rate {} vs configured {} ({:?})",
            empirical, rate, process
        );
    }

    /// Phased streams preserve the configured mean rate in the long run.
    #[test]
    fn phased_empirical_rate_matches_mean(
        process in phased_processes(),
        rate in 0.2f64..2.0,
        seed in any::<u64>(),
    ) {
        prop_assert!(process.validate().is_ok());
        let empirical = empirical_rate(&process, rate, seed, 60_000);
        prop_assert!(
            (empirical - rate).abs() / rate < 0.10,
            "phased empirical rate {} vs configured {} ({:?})",
            empirical, rate, process
        );
    }

    /// Identical seed ⇒ bit-identical arrival sequence (and different
    /// seeds diverge), for both non-stationary samplers.
    #[test]
    fn same_seed_is_bit_identical(
        mmpp in mmpp_processes(),
        phased in phased_processes(),
        rate in 0.2f64..2.0,
        seed in any::<u64>(),
    ) {
        for process in [&mmpp, &phased] {
            let a = gap_sequence(process, rate, seed, 2_000);
            let b = gap_sequence(process, rate, seed, 2_000);
            prop_assert_eq!(&a, &b, "same seed must reproduce bit-exactly");
            let c = gap_sequence(process, rate, seed.wrapping_add(1), 2_000);
            prop_assert_ne!(&a, &c, "different seeds must diverge");
        }
    }

    /// The whole factory — per-node local streams plus the global
    /// stream — stays deterministic under time-varying arrivals.
    #[test]
    fn factory_streams_are_deterministic_under_mmpp(
        process in mmpp_processes(),
        seed in any::<u64>(),
    ) {
        use sda_core::NodeId;
        let cfg = WorkloadConfig {
            arrivals: process,
            ..WorkloadConfig::baseline()
        };
        let mut a = TaskFactory::new(cfg.clone(), &RngFactory::new(seed)).unwrap();
        let mut b = TaskFactory::new(cfg, &RngFactory::new(seed)).unwrap();
        for i in 0..200u32 {
            let node = NodeId::new(i % 6);
            prop_assert_eq!(
                a.next_local_interarrival(node).unwrap().to_bits(),
                b.next_local_interarrival(node).unwrap().to_bits()
            );
            prop_assert_eq!(
                a.next_global_interarrival().unwrap().to_bits(),
                b.next_global_interarrival().unwrap().to_bits()
            );
        }
    }
}
