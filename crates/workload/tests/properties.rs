//! Property-based tests: the load equation closes for arbitrary valid
//! configurations, and generated tasks respect their declared bounds.

use proptest::prelude::*;

use sda_sim::rng::RngFactory;
use sda_workload::{GlobalShape, SlackRange, TaskFactory, WorkloadConfig};

fn valid_configs() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..10,                 // nodes
        0.05f64..0.95,              // load
        0.0f64..1.0,                // frac_local
        0.1f64..3.0,                // mean_subtask_ex
        (0.0f64..2.0, 0.0f64..3.0), // slack (min, extra)
        0.1f64..4.0,                // rel_flex
        0usize..4,                  // shape selector
        1usize..6,                  // m-ish parameter
    )
        .prop_map(
            |(nodes, load, frac_local, mean_subtask_ex, (smin, extra), rel_flex, shape_sel, m)| {
                let shape = match shape_sel {
                    0 => GlobalShape::Serial { m },
                    1 => GlobalShape::Parallel { m: m.min(nodes) },
                    2 => GlobalShape::SerialRandomM { min_m: 1, max_m: m },
                    _ => GlobalShape::SerialParallel {
                        stages: m,
                        branches: 1 + (m % nodes.min(3)),
                    },
                };
                WorkloadConfig {
                    nodes,
                    load,
                    frac_local,
                    mean_local_ex: 1.0,
                    mean_subtask_ex,
                    slack: SlackRange::new(smin, smin + extra),
                    rel_flex,
                    shape,
                    pex: sda_workload::PexModel::Perfect,
                    service: sda_workload::ServiceVariability::Exponential,
                    local_weights: None,
                    node_speeds: None,
                    arrivals: sda_workload::ArrivalProcess::Poisson,
                }
            },
        )
        .prop_filter("fan must fit nodes", |cfg| cfg.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The derived rates reproduce the configured load exactly.
    #[test]
    fn load_equation_closes(cfg in valid_configs()) {
        let rates = cfg.rates().unwrap();
        prop_assert!((rates.load(cfg.nodes) - cfg.load).abs() < 1e-9);
        // frac_local is also recovered (when there is any work at all).
        let total = rates.local_work_rate + rates.global_work_rate;
        if total > 0.0 {
            prop_assert!((rates.local_work_rate / total - cfg.frac_local).abs() < 1e-9);
        }
    }

    /// Generated tasks: valid specs, deadlines after arrival, subtask
    /// counts consistent with the shape, and nodes within range.
    #[test]
    fn generated_tasks_respect_bounds(cfg in valid_configs(), seed in any::<u64>()) {
        let nodes = cfg.nodes;
        let shape = cfg.shape;
        let mut f = TaskFactory::new(cfg, &RngFactory::new(seed)).unwrap();
        for _ in 0..50 {
            let g = f.make_global(3.0);
            prop_assert!(g.spec.validate().is_ok());
            prop_assert!(g.deadline >= 3.0 + g.spec.critical_path_ex() - 1e-9);
            let count = g.spec.simple_count();
            match shape {
                GlobalShape::Serial { m } => prop_assert_eq!(count, m),
                GlobalShape::Parallel { m } => prop_assert_eq!(count, m),
                GlobalShape::SerialRandomM { min_m, max_m } => {
                    prop_assert!((min_m..=max_m).contains(&count))
                }
                GlobalShape::SerialParallel { stages, branches } => {
                    prop_assert_eq!(count, stages * branches)
                }
                // valid_configs() only generates tree shapes; DAG tasks
                // go through make_global_dag (covered in the generator's
                // unit tests), not make_global.
                GlobalShape::Dag { .. } => unreachable!(),
            }
            for s in g.spec.simple_subtasks() {
                prop_assert!(s.node.index() < nodes);
                prop_assert!(s.ex >= 0.0 && s.pex >= 0.0);
            }
        }
    }

    /// Interarrival gaps are positive and, on average, close to the
    /// configured rate (loose statistical bound).
    #[test]
    fn interarrival_means_track_rates(cfg in valid_configs(), seed in any::<u64>()) {
        let rates = cfg.rates().unwrap();
        let mut f = TaskFactory::new(cfg, &RngFactory::new(seed)).unwrap();
        if rates.lambda_global > 0.0 {
            let n = 3_000;
            let mean: f64 = (0..n)
                .map(|_| f.next_global_interarrival().unwrap())
                .sum::<f64>() / n as f64;
            let expect = 1.0 / rates.lambda_global;
            prop_assert!(
                (mean - expect).abs() / expect < 0.15,
                "global interarrival mean {mean} vs expected {expect}"
            );
        } else {
            prop_assert!(f.next_global_interarrival().is_none());
        }
    }
}
