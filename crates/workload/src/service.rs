//! Service-time distribution shapes (an extension axis beyond the
//! paper's exponential-only model).

use serde::{Deserialize, Serialize};

use sda_sim::dist::{Constant, Dist, DistError, Erlang, Exponential, LogNormal, Pareto, Sampler};

/// The distributional *shape* of execution times around a configured
/// mean. The paper uses exponential times throughout (CV² = 1); the
/// other variants probe how the deadline-assignment conclusions react to
/// lower or higher service variability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ServiceVariability {
    /// Exponential, CV² = 1 — the paper's baseline.
    #[default]
    Exponential,
    /// Deterministic, CV² = 0.
    Deterministic,
    /// Erlang with `stages` phases, CV² = 1/stages.
    Erlang {
        /// Number of phases (≥ 1).
        stages: u32,
    },
    /// Lognormal with the given CV² (> 0); moderately heavy tail.
    LogNormal {
        /// Squared coefficient of variation.
        cv2: f64,
    },
    /// Pareto with tail index `alpha` (> 1); genuinely heavy tail
    /// (infinite variance for `alpha ≤ 2`).
    Pareto {
        /// Tail index.
        alpha: f64,
    },
}

impl ServiceVariability {
    /// Builds a sampler with the given mean.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the underlying distribution.
    pub fn build(&self, mean: f64) -> Result<Box<dyn Dist + Send + Sync>, DistError> {
        Ok(Box::new(self.build_sampler(mean)?))
    }

    /// Builds a devirtualized [`Sampler`] with the given mean — the
    /// allocation-free counterpart of [`ServiceVariability::build`],
    /// drawing the exact same variate sequence.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the underlying distribution.
    pub fn build_sampler(&self, mean: f64) -> Result<Sampler, DistError> {
        Ok(match *self {
            ServiceVariability::Exponential => Sampler::Exponential(Exponential::with_mean(mean)?),
            ServiceVariability::Deterministic => Sampler::Constant(Constant::new(mean)?),
            ServiceVariability::Erlang { stages } => {
                Sampler::Erlang(Erlang::new(stages, mean / f64::from(stages.max(1)))?)
            }
            ServiceVariability::LogNormal { cv2 } => {
                Sampler::LogNormal(LogNormal::with_mean_cv2(mean, cv2)?)
            }
            ServiceVariability::Pareto { alpha } => {
                Sampler::Pareto(Pareto::with_mean(mean, alpha)?)
            }
        })
    }

    /// The squared coefficient of variation this shape implies
    /// (`None` for Pareto with `alpha ≤ 2`, where the variance is
    /// infinite).
    pub fn cv2(&self) -> Option<f64> {
        match *self {
            ServiceVariability::Exponential => Some(1.0),
            ServiceVariability::Deterministic => Some(0.0),
            ServiceVariability::Erlang { stages } => Some(1.0 / f64::from(stages.max(1))),
            ServiceVariability::LogNormal { cv2 } => Some(cv2),
            ServiceVariability::Pareto { alpha } => {
                if alpha > 2.0 {
                    Some(1.0 / (alpha * (alpha - 2.0)))
                } else {
                    None
                }
            }
        }
    }

    /// The third raw moment `E[S³]` of this shape at the given mean
    /// (`None` for Pareto with `alpha ≤ 3`, where it is infinite).
    ///
    /// Per-shape normalized values `E[S³]/mean³`: exponential 6,
    /// deterministic 1, Erlang-k `(k+1)(k+2)/k²`, lognormal
    /// `(1+cv²)³`, Pareto `(α−1)³ / (α² (α−3))`.
    pub fn third_moment(&self, mean: f64) -> Option<f64> {
        let ratio = match *self {
            ServiceVariability::Exponential => 6.0,
            ServiceVariability::Deterministic => 1.0,
            ServiceVariability::Erlang { stages } => {
                let k = f64::from(stages.max(1));
                (k + 1.0) * (k + 2.0) / (k * k)
            }
            ServiceVariability::LogNormal { cv2 } => {
                let b = 1.0 + cv2;
                b * b * b
            }
            ServiceVariability::Pareto { alpha } => {
                if alpha > 3.0 {
                    let a1 = alpha - 1.0;
                    a1 * a1 * a1 / (alpha * alpha * (alpha - 3.0))
                } else {
                    return None;
                }
            }
        };
        Some(ratio * mean * mean * mean)
    }

    /// Picks the natural shape for a target CV²: deterministic at 0,
    /// Erlang below 1, exponential at 1, lognormal above 1.
    pub fn from_cv2(cv2: f64) -> ServiceVariability {
        if cv2 <= 0.0 {
            ServiceVariability::Deterministic
        } else if cv2 < 1.0 {
            ServiceVariability::Erlang {
                stages: (1.0 / cv2).round().max(1.0) as u32,
            }
        } else if (cv2 - 1.0).abs() < 1e-9 {
            ServiceVariability::Exponential
        } else {
            ServiceVariability::LogNormal { cv2 }
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match *self {
            ServiceVariability::Exponential => "exp".to_string(),
            ServiceVariability::Deterministic => "det".to_string(),
            ServiceVariability::Erlang { stages } => format!("erlang-{stages}"),
            ServiceVariability::LogNormal { cv2 } => format!("lognormal(cv2={cv2})"),
            ServiceVariability::Pareto { alpha } => format!("pareto(α={alpha})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_sim::rng::RngFactory;

    #[test]
    fn builders_match_requested_mean() {
        let mut rng = RngFactory::new(7).stream("svc");
        for shape in [
            ServiceVariability::Exponential,
            ServiceVariability::Deterministic,
            ServiceVariability::Erlang { stages: 4 },
            ServiceVariability::LogNormal { cv2: 4.0 },
            ServiceVariability::Pareto { alpha: 2.5 },
        ] {
            let d = shape.build(2.0).unwrap();
            assert!((d.mean() - 2.0).abs() < 1e-9, "{shape:?}");
            let n = 200_000;
            let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((m - 2.0).abs() < 0.15, "{shape:?} sample mean {m}");
        }
    }

    #[test]
    fn cv2_values() {
        assert_eq!(ServiceVariability::Exponential.cv2(), Some(1.0));
        assert_eq!(ServiceVariability::Deterministic.cv2(), Some(0.0));
        assert_eq!(ServiceVariability::Erlang { stages: 4 }.cv2(), Some(0.25));
        assert_eq!(ServiceVariability::LogNormal { cv2: 9.0 }.cv2(), Some(9.0));
        assert_eq!(ServiceVariability::Pareto { alpha: 1.5 }.cv2(), None);
    }

    #[test]
    fn third_moment_values() {
        assert_eq!(ServiceVariability::Exponential.third_moment(1.0), Some(6.0));
        assert_eq!(
            ServiceVariability::Deterministic.third_moment(2.0),
            Some(8.0)
        );
        // Erlang-2: (3·4)/4 = 3.
        assert_eq!(
            ServiceVariability::Erlang { stages: 2 }.third_moment(1.0),
            Some(3.0)
        );
        // Lognormal: (1+cv²)³.
        assert_eq!(
            ServiceVariability::LogNormal { cv2: 1.0 }.third_moment(1.0),
            Some(8.0)
        );
        // Pareto: finite only above alpha = 3.
        assert_eq!(
            ServiceVariability::Pareto { alpha: 2.5 }.third_moment(1.0),
            None
        );
        assert_eq!(
            ServiceVariability::Pareto { alpha: 3.0 }.third_moment(1.0),
            None
        );
        let p4 = ServiceVariability::Pareto { alpha: 4.0 }
            .third_moment(1.0)
            .unwrap();
        // (α−1)³/(α²(α−3)) = 27/16 at α = 4.
        assert!((p4 - 27.0 / 16.0).abs() < 1e-12);
        // Erlang-1 is exponential.
        assert_eq!(
            ServiceVariability::Erlang { stages: 1 }.third_moment(3.0),
            ServiceVariability::Exponential.third_moment(3.0)
        );
    }

    #[test]
    fn from_cv2_picks_natural_shapes() {
        assert_eq!(
            ServiceVariability::from_cv2(0.0),
            ServiceVariability::Deterministic
        );
        assert_eq!(
            ServiceVariability::from_cv2(0.25),
            ServiceVariability::Erlang { stages: 4 }
        );
        assert_eq!(
            ServiceVariability::from_cv2(1.0),
            ServiceVariability::Exponential
        );
        assert_eq!(
            ServiceVariability::from_cv2(4.0),
            ServiceVariability::LogNormal { cv2: 4.0 }
        );
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(ServiceVariability::LogNormal { cv2: -1.0 }
            .build(1.0)
            .is_err());
        assert!(ServiceVariability::Pareto { alpha: 1.0 }
            .build(1.0)
            .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(ServiceVariability::Exponential.label(), "exp");
        assert_eq!(ServiceVariability::Erlang { stages: 2 }.label(), "erlang-2");
        assert_eq!(
            ServiceVariability::default(),
            ServiceVariability::Exponential
        );
    }
}
