//! Execution-time prediction models (§4.3: "error in the execution time
//! predictions").

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// How the predicted execution time `pex` relates to the real `ex`.
///
/// The baseline assumes perfect prediction (`pex = ex`, Table 1 row
/// `pex(X)/ex(X) = 1.0`). The extension studies multiply by random or
/// systematic factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PexModel {
    /// `pex = ex` — Table 1 baseline.
    #[default]
    Perfect,
    /// `pex = ex · U[1 − e, 1 + e]`, unbiased multiplicative noise with
    /// relative half-width `e ∈ [0, 1]`.
    Noisy {
        /// Relative error half-width.
        error: f64,
    },
    /// `pex = ex · factor` — systematic over/under-estimation.
    Biased {
        /// Constant multiplier.
        factor: f64,
    },
    /// `pex = E[ex]` — the strategy only knows the distribution mean, not
    /// per-task values (the weakest informative predictor).
    MeanOnly {
        /// The distribution mean used as every prediction.
        mean: f64,
    },
}

impl PexModel {
    /// Applies the model: derives a prediction for a subtask whose real
    /// execution time is `ex`. Generic over the RNG so the hot path pays
    /// no trait-object dispatch per prediction.
    pub fn predict<R: RngCore + ?Sized>(&self, ex: f64, rng: &mut R) -> f64 {
        match *self {
            PexModel::Perfect => ex,
            PexModel::Noisy { error } => {
                let u: f64 = rng.gen();
                let factor = 1.0 - error + 2.0 * error * u;
                (ex * factor).max(0.0)
            }
            PexModel::Biased { factor } => ex * factor,
            PexModel::MeanOnly { mean } => mean,
        }
    }

    /// Whether the model is deterministic given `ex`.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, PexModel::Noisy { .. })
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match *self {
            PexModel::Perfect => "perfect".to_string(),
            PexModel::Noisy { error } => format!("noisy±{error}"),
            PexModel::Biased { factor } => format!("biased×{factor}"),
            PexModel::MeanOnly { mean } => format!("mean={mean}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_sim::rng::RngFactory;

    #[test]
    fn perfect_is_identity() {
        let mut rng = RngFactory::new(1).stream("pex");
        assert_eq!(PexModel::Perfect.predict(2.5, &mut rng), 2.5);
        assert!(PexModel::Perfect.is_deterministic());
    }

    #[test]
    fn noisy_is_unbiased_and_bounded() {
        let model = PexModel::Noisy { error: 0.5 };
        let mut rng = RngFactory::new(2).stream("pex");
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let p = model.predict(2.0, &mut rng);
            assert!((1.0..=3.0).contains(&p), "prediction {p} outside ±50%");
            sum += p;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean {mean}");
        assert!(!model.is_deterministic());
    }

    #[test]
    fn biased_scales() {
        let mut rng = RngFactory::new(3).stream("pex");
        assert_eq!(PexModel::Biased { factor: 2.0 }.predict(1.5, &mut rng), 3.0);
    }

    #[test]
    fn mean_only_ignores_ex() {
        let mut rng = RngFactory::new(4).stream("pex");
        let m = PexModel::MeanOnly { mean: 1.0 };
        assert_eq!(m.predict(100.0, &mut rng), 1.0);
        assert_eq!(m.predict(0.001, &mut rng), 1.0);
    }

    #[test]
    fn labels() {
        assert_eq!(PexModel::Perfect.label(), "perfect");
        assert_eq!(PexModel::Noisy { error: 0.5 }.label(), "noisy±0.5");
        assert_eq!(PexModel::default(), PexModel::Perfect);
    }
}
